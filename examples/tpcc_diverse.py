"""TPC-C-style load through diverse configurations (Section 7).

Runs the same deterministic transaction stream against:

* each single server product,
* a 2-version diverse pair with full comparison,
* the same pair with the read-split optimisation of reference [9],
* a 3-version majority configuration,

and prints throughput plus dependability counters — the performance /
dependability trade-off the paper says users should tune "on an ongoing
basis".

Run:  python examples/tpcc_diverse.py
"""

from repro.middleware import DiverseServer
from repro.servers import make_server
from repro.workload import TpccGenerator, WorkloadRunner

TRANSACTIONS = 120


def measure(label, endpoint):
    runner = WorkloadRunner(endpoint, seed=21)
    runner.setup()
    metrics = runner.run(TRANSACTIONS, generator=TpccGenerator(seed=21))
    state = "clean" if metrics.failure_free else (
        f"errors={metrics.sql_errors} disagreements={metrics.detected_disagreements}"
    )
    print(f"{label:<28} {metrics.statements_per_second:>9.0f} stmt/s   {state}")
    return metrics


def main() -> None:
    print(f"{'configuration':<28} {'throughput':>16}   outcome")
    print("-" * 64)
    for key in ("IB", "PG", "OR", "MS"):
        measure(f"1v {key}", make_server(key))
    measure(
        "2v IB+OR (full compare)",
        DiverseServer([make_server("IB"), make_server("OR")], adjudication="compare"),
    )
    measure(
        "2v IB+OR (read-split)",
        DiverseServer(
            [make_server("IB"), make_server("OR")],
            adjudication="majority",
            read_split=True,
        ),
    )
    measure(
        "3v IB+OR+MS (majority)",
        DiverseServer(
            [make_server("IB"), make_server("OR"), make_server("MS")],
            adjudication="majority",
        ),
    )
    print(
        "\nAs the paper reports for its TPC-C runs: no failures observed on"
        "\nfault-free catalogs; comparison costs throughput, read-splitting"
        "\nrecovers much of it at the price of uncompared reads."
    )


if __name__ == "__main__":
    main()
