"""TPC-C-style load through diverse configurations (Section 7).

Runs the same deterministic transaction stream against:

* each single server product,
* a 2-version diverse pair with full comparison,
* the same pair with the read-split optimisation of reference [9],
* a 3-version majority configuration,
* the 3-version configuration again with prepared statements
  (templates parsed/translated/analyzed once, values bound per call),

and prints throughput plus dependability counters — the performance /
dependability trade-off the paper says users should tune "on an ongoing
basis".

Run:  python examples/tpcc_diverse.py
"""

from repro.middleware import DiverseServer, ServerConfig
from repro.servers import make_server
from repro.workload import TpccGenerator, WorkloadRunner

TRANSACTIONS = 120


def measure(label, endpoint, *, use_prepared=False):
    runner = WorkloadRunner(endpoint, seed=21, use_prepared=use_prepared)
    runner.setup()
    metrics = runner.run(TRANSACTIONS, generator=TpccGenerator(seed=21))
    state = "clean" if metrics.failure_free else (
        f"errors={metrics.sql_errors} disagreements={metrics.detected_disagreements}"
    )
    print(f"{label:<28} {metrics.statements_per_second:>9.0f} stmt/s   {state}")
    return metrics


def main() -> None:
    print(f"{'configuration':<28} {'throughput':>16}   outcome")
    print("-" * 64)
    for key in ("IB", "PG", "OR", "MS"):
        measure(f"1v {key}", make_server(key))
    measure(
        "2v IB+OR (full compare)",
        DiverseServer(
            [make_server("IB"), make_server("OR")],
            config=ServerConfig(adjudication="compare"),
        ),
    )
    measure(
        "2v IB+OR (read-split)",
        DiverseServer(
            [make_server("IB"), make_server("OR")],
            config=ServerConfig(adjudication="majority", read_split=True),
        ),
    )
    measure(
        "3v IB+OR+MS (majority)",
        DiverseServer(
            [make_server("IB"), make_server("OR"), make_server("MS")],
            config=ServerConfig(adjudication="majority"),
        ),
    )
    prepared_server = DiverseServer(
        [make_server("IB"), make_server("OR"), make_server("MS")],
        config=ServerConfig(adjudication="majority"),
    )
    measure("3v IB+OR+MS (prepared)", prepared_server, use_prepared=True)
    stats = prepared_server.pipeline.stats
    print(
        f"\nprepared front-end cache: {stats.hits} hits / {stats.misses} misses"
        f" (parse+translate+analyze ran once per template)"
    )
    print(
        "\nAs the paper reports for its TPC-C runs: no failures observed on"
        "\nfault-free catalogs; comparison costs throughput, read-splitting"
        "\nrecovers much of it at the price of uncompared reads; prepared"
        "\nexecution claws back the front-end share of the comparison cost."
    )


if __name__ == "__main__":
    main()
