"""Quickstart: a fault-tolerant SQL server from diverse OTS products.

Builds the middleware the paper motivates — two diverse simulated
server products behind a comparison layer — and shows the three
behaviours that matter:

1. ordinary SQL works, with every answer cross-checked;
2. a seeded fault in one replica is *detected* by the comparison
   (a 2-version configuration fails safe instead of answering wrongly);
3. with three diverse replicas the same fault is *masked* — the client
   gets the right answer while the faulty replica is repaired by
   log replay.

Run:  python examples/quickstart.py
"""

from decimal import Decimal

from repro.errors import AdjudicationFailure
from repro.faults import FaultSpec, RelationTrigger, RowDropEffect
from repro.middleware import DiverseServer, ServerConfig
from repro.servers import make_interbase, make_mssql, make_oracle

ACCOUNT_ROWS = [
    (1, "ann", Decimal("120.00")),
    (2, "bob", Decimal("80.00")),
    (3, "cat", Decimal("310.00")),
]


def wrong_rows_fault() -> FaultSpec:
    """A seeded Interbase bug: queries on 'accounts' silently lose rows."""
    return FaultSpec(
        fault_id="DEMO-1",
        description="silently drops rows from accounts queries",
        trigger=RelationTrigger(["accounts"], kind="select"),
        effect=RowDropEffect(keep_one_in=2),
    )


def main() -> None:
    # -- 1. a healthy diverse pair ---------------------------------------
    server = DiverseServer(
        [make_interbase(), make_oracle()],
        config=ServerConfig(adjudication="compare"),
    )
    server.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR(20), "
        "balance NUMERIC(10,2))"
    )
    # Prepared once (parsed/translated/analyzed for both products), then
    # executed per row with bound parameters — one adjudicated vote each.
    insert = server.prepare("INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)")
    insert.executemany(ACCOUNT_ROWS)
    result = server.execute("SELECT owner, balance FROM accounts ORDER BY balance DESC")
    print("healthy pair answers (cross-checked on both products):")
    for row in result.rows:
        print("  ", row)
    print(f"statements compared so far: {server.stats.unanimous}\n")

    # -- 2. detection: one replica goes wrong ---------------------------------
    faulty_pair = DiverseServer(
        [make_interbase([wrong_rows_fault()]), make_oracle()],
        config=ServerConfig(adjudication="compare", auto_recover=False),
    )
    faulty_pair.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR(20), "
        "balance NUMERIC(10,2))"
    )
    faulty_pair.prepare(
        "INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)"
    ).executemany(ACCOUNT_ROWS)
    try:
        faulty_pair.execute("SELECT owner FROM accounts ORDER BY id")
    except AdjudicationFailure as failure:
        print("2-version pair DETECTED the wrong answer instead of returning it:")
        print("  ", failure, "\n")

    # -- 3. masking: a third diverse opinion -------------------------------------
    triple = DiverseServer(
        [make_interbase([wrong_rows_fault()]), make_oracle(), make_mssql()],
        config=ServerConfig(adjudication="majority"),
    )
    triple.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR(20), "
        "balance NUMERIC(10,2))"
    )
    triple.prepare(
        "INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)"
    ).executemany(ACCOUNT_ROWS)
    result = triple.execute("SELECT owner FROM accounts ORDER BY id")
    print("3-version majority MASKED the same fault; the client saw:")
    for row in result.rows:
        print("  ", row)
    if result.warnings:
        print("  middleware warnings:", "; ".join(result.warnings))
    print(f"failures masked: {triple.stats.failures_masked}, "
          f"replica recoveries: {triple.stats.recoveries}")


if __name__ == "__main__":
    main()
