"""Reproduce the paper's study end to end and print Tables 1-4.

Builds the 181-report corpus, runs every bug script on every server it
can be translated to (against a pristine oracle of the same dialect),
classifies the outcomes, and prints the four tables plus the Section-7
statistics, annotated with the published values.

Run:  python examples/bug_study.py
"""

from repro.bugs import build_corpus
from repro.study import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    failure_type_shares,
    run_study,
)
from repro.study.tables import (
    heisenbug_extras,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


def main() -> None:
    corpus = build_corpus()
    print(f"corpus: {len(corpus)} bug reports "
          f"(IB 55, PG 57, OR 18, MS 51) — running the study...\n")
    study = run_study(corpus)

    print("=" * 72)
    print("Table 1 — results of running the bug scripts on all four servers")
    print("=" * 72)
    print(render_table1(build_table1(study)))

    print("=" * 72)
    print("Table 2 — bug scripts per server combination")
    print("  (PO / I-only / P-only rows deviate by one bug each from the")
    print("   published table; Tables 1 and 2 of the paper are mutually")
    print("   inconsistent by one bug — see EXPERIMENTS.md)")
    print("=" * 72)
    print(render_table2(build_table2(study)))

    print()
    print("=" * 72)
    print("Table 3 — the six 2-version pairs")
    print("=" * 72)
    print(render_table3(build_table3(study)))

    print()
    print("=" * 72)
    print("Table 4 — coincident failures (reported row, fails-in column)")
    print("=" * 72)
    print(render_table4(build_table4(study)))
    extras = heisenbug_extras(study)
    print(f"\nplus {len(extras)} home-Heisenbug failing elsewhere: "
          f"{', '.join(f'{bug} -> {sorted(failed)}' for bug, failed in extras)}")

    shares = failure_type_shares(study)
    print()
    print("Section 7 statistics:")
    print(f"  incorrect-result failures: {100 * shares.incorrect_fraction:.1f}% "
          f"(paper: 64.5%)")
    print(f"  engine crashes:            {100 * shares.crash_fraction:.1f}% "
          f"(paper: 17.1%)")


if __name__ == "__main__":
    main()
