"""The non-diverse alternative: query rephrasing on a single server.

Section 7 of the paper suggests "wrappers rephrasing queries into
alternative, logically equivalent sets of statements" as a cheaper kind
of fault tolerance.  This example runs the study's *actual* PostgreSQL
bug 43 — a parse error on a NOT IN over a nested UNION — behind the
rephrasing wrapper: the wrapper rewrites the query by distributing the
UNION, dodges the bug, and returns the correct answer the plain server
refuses to produce.  It then shows the technique's limit on a
data-shaped bug that only diversity catches.

Run:  python examples/rephrasing_wrapper.py
"""

from repro.bugs import build_corpus
from repro.errors import SqlError
from repro.middleware.rephrase import QueryRephraser, RephrasingWrapper
from repro.servers import make_server
from repro.study.runner import split_statements


def main() -> None:
    corpus = build_corpus()
    report = corpus.get("PG-43")
    statements = split_statements(report.script)

    # -- the bug, plain ----------------------------------------------------
    plain = make_server("PG", corpus.faults_for("PG"))
    for statement in statements[:-1]:
        plain.execute(statement)
    try:
        plain.execute(statements[-1])
    except SqlError as error:
        print("plain PostgreSQL on its bug 43:")
        print(f"  {error}\n")

    # -- the same bug behind the wrapper ---------------------------------------
    wrapped_server = make_server("PG", corpus.faults_for("PG"))
    wrapper = RephrasingWrapper(wrapped_server)
    for statement in statements[:-1]:
        wrapper.execute(statement)
    rephrased = QueryRephraser().rephrase_sql(statements[-1])
    print("the wrapper's rephrased spelling (UNION distributed):")
    print(f"  {rephrased[:110]}...\n")
    result = wrapper.execute(statements[-1])
    print(f"wrapper answer: {result.rows}  "
          f"(masked spurious errors: {wrapper.stats.masked_errors})\n")

    # -- the limit: a data-shaped bug ------------------------------------------------
    report = corpus.get("MS-58544")  # wrong rows from a LEFT JOIN on a view
    ms = make_server("MS", corpus.faults_for("MS"))
    limited = RephrasingWrapper(ms)
    for statement in split_statements(report.script):
        final = limited.execute(statement)
    print("MSSQL bug 58544 behind the same wrapper: "
          f"{len(final.rows)} rows returned (should be 4), "
          f"disagreements noticed: {limited.stats.disagreements}")
    print("Both spellings hit the same fault: this failure region is shaped")
    print("by the data touched, not the SQL text — only diversity helps here.")


if __name__ == "__main__":
    main()
