"""Section 6 in code: from bug counts to reliability predictions.

Computes the naive mAB/mA ratios from the executed study, propagates
the paper's stated uncertainties (per-bug failure-rate variation,
under-reporting of subtle failures), and runs the Monte Carlo failure
process over single / pair / triple configurations and several usage
profiles.

Run:  python examples/reliability_model.py
"""

from repro.reliability import (
    FailureProcessSimulator,
    pair_gains_from_study,
    profile_sensitivity,
)
from repro.reliability.model import gain_with_uncertainty
from repro.reliability.simulate import bug_profiles_from_study
from repro.study import run_study


def main() -> None:
    print("running the study once to extract the bug evidence...\n")
    study = run_study()

    print("naive failure-rate ratios mAB/mA (Section 6's first estimate):")
    gains = pair_gains_from_study(study)
    for (a, b), gain in sorted(gains.items()):
        print(f"  {a} -> {a}+{b}: {gain.m_ab}/{gain.m_a} = {gain.ratio:.3f}")

    print("\nwith per-bug rate variation (lognormal sigma=1.5) and subtle-failure")
    print("under-reporting (5x), ratio mean [p5, p95]:")
    for a, b in [("IB", "PG"), ("MS", "PG"), ("IB", "MS")]:
        mean, low, high = gain_with_uncertainty(
            study, a, b, rate_dispersion=1.5, subtle_underreporting=5.0,
            samples=1000, seed=2,
        )
        print(f"  {a}+{b}: {mean:.3f} [{low:.3f}, {high:.3f}]")

    print("\nMonte Carlo failure process (8000 demands, rates from the study):")
    profiles = bug_profiles_from_study(study, base_rate=1e-3, seed=5)
    simulator = FailureProcessSimulator(profiles, seed=5)
    for name, outcome in simulator.compare_configurations(8000).items():
        print(
            f"  {name:<13} undetected {outcome.undetected_rate:.5f}  "
            f"detected {outcome.detected:>4}  masked {outcome.masked:>4}"
        )

    print("\nusage-profile sensitivity (single IB server, undetected rate):")
    base = bug_profiles_from_study(study, base_rate=1e-3, rate_dispersion=0.0, seed=6)
    for name, rate in profile_sensitivity(study, base, ["IB"], demands=5000, seed=6).items():
        print(f"  {name:<14} {rate:.5f}")
    print("\nSame bugs, different installations, different gains — the paper's")
    print("point that deployment decisions need per-installation evidence.")

    print("\navailability (Section 2.1, analytic; each replica 99.9% available):")
    from repro.reliability.availability import ReplicaAvailability, improvement_summary, nines

    replica = ReplicaAvailability(failure_rate=1.0, repair_rate=999.0)
    for policy, value in improvement_summary(replica, [replica, replica]).items():
        print(f"  {policy:<18} {value:.6f}  ({nines(value):.1f} nines)")


if __name__ == "__main__":
    main()
