"""Fault injection walkthrough: seed the paper's bug classes into a
server product and watch the study classifier at work.

Seeds one fault of each failure class (engine crash, incorrect result
self-evident and non-self-evident, performance, "other") into an
Interbase-like product, runs the same script on the faulty server and
on a pristine oracle, and prints how each (statement, behaviour) pair
classifies in the paper's taxonomy.

Run:  python examples/fault_injection_demo.py
"""

from repro.faults import (
    CrashEffect,
    ErrorEffect,
    FaultSpec,
    PerformanceEffect,
    RelationTrigger,
    RowcountSkewEffect,
    RowDropEffect,
)
from repro.faults.spec import Detectability, FailureKind
from repro.servers import make_interbase
from repro.study.classify import classify_run
from repro.study.runner import run_script

SCRIPT = """
CREATE TABLE ledger (id INTEGER PRIMARY KEY, amount NUMERIC(8,2));
INSERT INTO ledger (id, amount) VALUES (1, 10.00);
INSERT INTO ledger (id, amount) VALUES (2, 20.00);
INSERT INTO ledger (id, amount) VALUES (3, 30.00);
SELECT id, amount FROM ledger ORDER BY id;
UPDATE ledger SET amount = amount + 1 WHERE id > 0;
"""

DEMO_FAULTS = {
    "engine crash": FaultSpec(
        "DEMO-CRASH", "crashes on ledger queries",
        RelationTrigger(["ledger"], kind="select"), CrashEffect(),
        kind=FailureKind.ENGINE_CRASH, detectability=Detectability.SELF_EVIDENT,
    ),
    "incorrect result (self-evident)": FaultSpec(
        "DEMO-ERR", "rejects a valid query",
        RelationTrigger(["ledger"], kind="select"),
        ErrorEffect("spurious: unknown expression type"),
        kind=FailureKind.INCORRECT_RESULT, detectability=Detectability.SELF_EVIDENT,
    ),
    "incorrect result (non-self-evident)": FaultSpec(
        "DEMO-DROP", "silently loses rows",
        RelationTrigger(["ledger"], kind="select"), RowDropEffect(keep_one_in=2),
        kind=FailureKind.INCORRECT_RESULT,
        detectability=Detectability.NON_SELF_EVIDENT,
    ),
    "performance": FaultSpec(
        "DEMO-SLOW", "pathological plan",
        RelationTrigger(["ledger"], kind="select"), PerformanceEffect(factor=800),
        kind=FailureKind.PERFORMANCE, detectability=Detectability.SELF_EVIDENT,
    ),
    "other (wrong rowcount)": FaultSpec(
        "DEMO-COUNT", "reports a wrong affected-row count",
        RelationTrigger(["ledger"], kind="update"), RowcountSkewEffect(delta=2),
        kind=FailureKind.OTHER, detectability=Detectability.NON_SELF_EVIDENT,
    ),
}


def main() -> None:
    oracle_outcome = run_script(make_interbase(), SCRIPT)
    print(f"{'seeded fault class':<38} {'observed classification':<42}")
    print("-" * 80)
    for label, fault in DEMO_FAULTS.items():
        server = make_interbase([fault])
        faulty_outcome = run_script(server, SCRIPT)
        cell = classify_run(
            faulty_outcome,
            oracle_outcome,
            fired=server.fired_faults(),
            fault_specs={fault.fault_id: fault},
        )
        if cell.failed:
            summary = (
                f"{cell.failure_kind.value}, "
                f"{'self-evident' if cell.self_evident else 'non-self-evident'}"
            )
        else:
            summary = cell.kind.value
        print(f"{label:<38} {summary:<42}")

    # A Heisenbug: invisible on re-run, visible under stress.
    heisen = FaultSpec(
        "DEMO-HEISEN", "intermittent wrong rows",
        RelationTrigger(["ledger"], kind="select"), RowDropEffect(keep_one_in=2),
        heisenbug=True, stress_activation=0.5,
    )
    normal = make_interbase([heisen])
    failures = sum(
        1 for _ in range(10)
        if len(run_script(normal, SCRIPT).statements[4].rows) != 3
    )
    print(f"\nHeisenbug over 10 normal re-runs:  {failures} failures (Gray's point)")
    stressed = make_interbase([heisen], stress_mode=True, seed=3)
    failures = 0
    for _ in range(10):
        stressed.reset()
        outcome = run_script(stressed, SCRIPT)
        if len(outcome.statements[4].rows) != 3:
            failures += 1
    print(f"Heisenbug over 10 stressed runs:   {failures} failures")


if __name__ == "__main__":
    main()
