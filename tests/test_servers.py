"""Server-product tests: dialect wiring, lifecycle, fault seeding."""

import pytest

from repro.errors import EngineCrash, FeatureNotSupported
from repro.faults import CrashEffect, FaultSpec, RelationTrigger
from repro.servers import make_server
from repro.servers.product import clone_pristine


class TestConstruction:
    def test_all_four(self, servers):
        assert set(servers) == {"IB", "PG", "OR", "MS"}
        for key, server in servers.items():
            assert server.key == key

    def test_metadata(self):
        ib = make_server("IB")
        assert ib.product == "Interbase"
        assert ib.version == "6.0"

    def test_engines_are_independent(self, servers):
        servers["IB"].execute("CREATE TABLE only_ib (a INTEGER)")
        with pytest.raises(Exception):
            servers["PG"].execute("SELECT 1 FROM only_ib")


class TestDialectEnforcement:
    def test_server_rejects_foreign_features(self, servers):
        servers["PG"].execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(FeatureNotSupported):
            servers["PG"].execute("SELECT 1 FROM t x LEFT OUTER JOIN t y ON 1=1")

    def test_server_accepts_own_extensions(self, servers):
        servers["MS"].execute("CREATE TABLE t (a INTEGER)")
        servers["MS"].execute("INSERT INTO t VALUES (1)")
        assert servers["MS"].execute("SELECT GETDATE() FROM t").rows

    def test_oracle_native_types(self, servers):
        servers["OR"].execute("CREATE TABLE t (a VARCHAR2(10), b NUMBER(8,2))")
        servers["OR"].execute("INSERT INTO t VALUES ('x', 1.50)")


class TestLifecycle:
    def _crashy(self):
        spec = FaultSpec(
            "F-CRASH",
            "crash on select",
            RelationTrigger(["t"], kind="select"),
            CrashEffect(),
        )
        server = make_server("IB", [spec])
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1)")
        return server

    def test_crash_and_restart_keeps_data(self):
        server = self._crashy()
        with pytest.raises(EngineCrash):
            server.execute("SELECT a FROM t")
        assert server.crashed
        server.restart()
        server.injector.disable("F-CRASH")
        assert server.execute("SELECT a FROM t").rows == [(1,)]

    def test_reset_wipes_everything(self):
        server = self._crashy()
        server.reset()
        assert not server.crashed
        with pytest.raises(Exception):
            server.execute("SELECT a FROM t")

    def test_connection_interface(self):
        server = make_server("PG")
        conn = server.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        conn.execute("SELECT a FROM t ORDER BY a")
        assert conn.fetchall() == [(1,), (2,)]
        assert conn.fetchone() == (1,)
        assert [d[0] for d in conn.description] == ["a"]
        conn.close()
        with pytest.raises(Exception):
            conn.execute("SELECT 1")

    def test_clone_pristine_has_no_faults(self):
        server = self._crashy()
        pristine = clone_pristine(server)
        pristine.execute("CREATE TABLE t (a INTEGER)")
        pristine.execute("INSERT INTO t VALUES (1)")
        assert pristine.execute("SELECT a FROM t").rows == [(1,)]

    def test_seed_fault_after_construction(self):
        server = make_server("OR")
        server.execute("CREATE TABLE t (a INTEGER)")
        server.seed_fault(
            FaultSpec("LATE", "late fault", RelationTrigger(["t"], kind="select"), CrashEffect())
        )
        with pytest.raises(EngineCrash):
            server.execute("SELECT a FROM t")
        assert "LATE" in server.fired_faults()
