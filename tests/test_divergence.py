"""Dialect-divergence analysis: profiles, atoms, verdicts, comparator
triage, and agreement with the dynamic result normalizer."""

import datetime
from decimal import Decimal

import pytest

from repro.analysis import PROFILES, analyze_divergence
from repro.analysis.divergence import (
    _NORMALIZER_FOLDED,
    _RULE_NOTES,
    RULE_FIELDS,
    DivergenceAtom,
    DivergenceKind,
)
from repro.analysis.schema import ScriptSchema
from repro.faults import (
    DialectRenderEffect,
    FaultSpec,
    RelationTrigger,
    RowDropEffect,
)
from repro.middleware import DiverseServer
from repro.middleware.normalizer import normalize_value
from repro.servers import make_server
from repro.sqlengine.parser import parse_statement


@pytest.fixture(scope="module")
def schema():
    built = ScriptSchema()
    built.observe(
        parse_statement(
            "CREATE TABLE t (id INTEGER NOT NULL, n INTEGER, "
            "amount NUMERIC(8,2), tag CHAR(8), name VARCHAR(20), booked DATE)"
        )
    )
    return built


def analyze(sql, schema):
    return analyze_divergence(parse_statement(sql), schema)


class TestProfileRegressions:
    """Pin the per-product semantics the translator/normalizer embody.

    A profile drift would silently change which disagreements the
    comparator forgives, so every field is pinned explicitly.
    """

    def test_division(self):
        assert PROFILES["OR"].integer_division == "exact"
        for key in ("IB", "PG", "MS"):
            assert PROFILES[key].integer_division == "truncate", key

    def test_null_order(self):
        assert PROFILES["MS"].null_sort == "first"
        for key in ("IB", "PG", "OR"):
            assert PROFILES[key].null_sort == "last", key

    def test_null_concat(self):
        assert PROFILES["OR"].null_concat == "empty"
        for key in ("IB", "PG", "MS"):
            assert PROFILES[key].null_concat == "propagate", key

    def test_trailing_blanks(self):
        assert PROFILES["MS"].char_pad is False
        assert PROFILES["MS"].trailing_blank_compare is False
        for key in ("IB", "PG", "OR"):
            assert PROFILES[key].char_pad is True, key
            assert PROFILES[key].trailing_blank_compare is True, key

    def test_date_midnight_fold(self):
        assert PROFILES["PG"].date_has_time is False
        for key in ("IB", "OR", "MS"):
            assert PROFILES[key].date_has_time is True, key

    def test_decimal_scale(self):
        assert PROFILES["OR"].decimal_scale == "normalize"
        for key in ("IB", "PG", "MS"):
            assert PROFILES[key].decimal_scale == "preserve", key


class TestAtomCollection:
    def test_integer_division(self, schema):
        result = analyze("SELECT id / 2 FROM t", schema)
        assert any(a.rule == "integer-division" for a in result.atoms)
        assert result.verdict("IB", "OR").kind is DivergenceKind.BENIGN_DIALECT
        assert result.verdict("IB", "PG").kind is DivergenceKind.AGREE_PROVEN

    def test_decimal_division_is_not_dialect_sensitive(self, schema):
        result = analyze("SELECT amount / 2 FROM t WHERE id = 1", schema)
        assert not any(a.rule == "integer-division" for a in result.atoms)

    def test_nullable_concat(self, schema):
        result = analyze("SELECT name || 'x' FROM t WHERE id = 1", schema)
        assert any(a.rule == "null-concat" for a in result.atoms)
        assert result.verdict("IB", "OR").kind is DivergenceKind.BENIGN_DIALECT
        assert result.verdict("PG", "MS").kind is DivergenceKind.AGREE_PROVEN

    def test_not_null_concat_is_safe(self, schema):
        # id is NOT NULL and the literal cannot be NULL: concat cannot
        # hit the NULL rule, so OR vs PG agreement is proven.
        result = analyze(
            "SELECT CAST(id AS VARCHAR(4)) || 'x' FROM t WHERE id = 1", schema
        )
        assert result.verdict("PG", "OR").kind in (
            DivergenceKind.AGREE_PROVEN,
            DivergenceKind.UNKNOWN,
        )
        assert not any(a.rule == "null-concat" for a in result.atoms)

    def test_order_by_nullable_key(self, schema):
        result = analyze("SELECT id FROM t ORDER BY n", schema)
        assert any(a.rule == "null-sort-position" for a in result.atoms)
        assert result.verdict("IB", "MS").kind is DivergenceKind.BENIGN_DIALECT
        assert result.verdict("IB", "PG").kind is DivergenceKind.AGREE_PROVEN

    def test_order_by_not_null_key_is_safe(self, schema):
        result = analyze("SELECT id FROM t ORDER BY id", schema)
        assert not any(a.rule == "null-sort-position" for a in result.atoms)
        assert result.verdict("IB", "MS").kind is DivergenceKind.AGREE_PROVEN

    def test_char_comparison(self, schema):
        result = analyze("SELECT id FROM t WHERE tag = 'a'", schema)
        assert any(a.rule == "trailing-blank-comparison" for a in result.atoms)
        assert result.verdict("IB", "MS").kind is DivergenceKind.BENIGN_DIALECT

    def test_char_rendering(self, schema):
        result = analyze("SELECT tag FROM t WHERE id = 1", schema)
        atoms = [a for a in result.atoms if a.rule == "char-padding"]
        assert atoms and atoms[0].normalizer_folds
        # Raw comparator: IB pads, MS does not — benign.
        raw = result.verdict("IB", "MS", normalized=False)
        assert raw.kind is DivergenceKind.BENIGN_DIALECT
        # Normalizing comparator already folded padding away: any
        # disagreement that survives is fault-indicating.
        folded = result.verdict("IB", "MS", normalized=True)
        assert folded.kind is DivergenceKind.AGREE_PROVEN

    def test_date_rendering(self, schema):
        result = analyze("SELECT booked FROM t WHERE id = 1", schema)
        assert any(a.rule == "date-midnight-fold" for a in result.atoms)
        assert result.verdict("IB", "PG").kind is DivergenceKind.BENIGN_DIALECT
        assert (
            result.verdict("IB", "PG", normalized=True).kind
            is DivergenceKind.AGREE_PROVEN
        )

    def test_numeric_scale_rendering(self, schema):
        result = analyze("SELECT amount FROM t WHERE id = 1", schema)
        assert any(a.rule == "numeric-scale" for a in result.atoms)
        assert result.verdict("PG", "OR").kind is DivergenceKind.BENIGN_DIALECT
        assert (
            result.verdict("PG", "OR", normalized=True).kind
            is DivergenceKind.AGREE_PROVEN
        )

    def test_volatile_function_defeats_analysis(self, schema):
        result = analyze("SELECT GETDATE() FROM t", schema)
        assert result.unknowns
        assert result.verdict("IB", "PG").kind is DivergenceKind.UNKNOWN

    def test_ddl_has_no_atoms(self, schema):
        result = analyze("CREATE TABLE u (id INTEGER)", schema)
        assert not result.atoms and not result.unknowns
        assert result.verdict("IB", "MS").kind is DivergenceKind.AGREE_PROVEN

    def test_verdict_describe_names_operator_and_rule(self, schema):
        verdict = analyze("SELECT id / 2 FROM t", schema).verdict("IB", "OR")
        text = verdict.describe()
        assert "integer-division" in text and "/" in text


class TestNormalizerAgreement:
    """The static fold claims must match what the normalizer does.

    Each rule either declares ``normalizer_folds`` and the dynamic
    :func:`normalize_value` really reconciles its two renderings, or it
    carries a note explaining why folding is impossible.
    """

    def test_every_rule_is_classified(self):
        assert set(RULE_FIELDS) == set(_RULE_NOTES)
        assert _NORMALIZER_FOLDED <= set(RULE_FIELDS)
        for rule in RULE_FIELDS:
            atom = DivergenceAtom.make("op", rule)
            assert atom.note
            assert atom.normalizer_folds == (rule in _NORMALIZER_FOLDED)

    def test_char_padding_folds(self):
        assert "char-padding" in _NORMALIZER_FOLDED
        assert normalize_value("ab      ") == normalize_value("ab")

    def test_date_midnight_folds(self):
        assert "date-midnight-fold" in _NORMALIZER_FOLDED
        assert normalize_value(datetime.date(2004, 6, 1)) == normalize_value(
            datetime.datetime(2004, 6, 1, 0, 0, 0)
        )
        # A real time-of-day still disagrees.
        assert normalize_value(datetime.date(2004, 6, 1)) != normalize_value(
            datetime.datetime(2004, 6, 1, 9, 30, 0)
        )

    def test_numeric_scale_folds(self):
        assert "numeric-scale" in _NORMALIZER_FOLDED
        assert normalize_value(Decimal("10.00")) == normalize_value(Decimal("10"))

    def test_integer_division_cannot_fold(self):
        assert "integer-division" not in _NORMALIZER_FOLDED
        assert normalize_value(1) != normalize_value(Decimal("1.5"))

    def test_null_concat_cannot_fold(self):
        assert "null-concat" not in _NORMALIZER_FOLDED
        assert normalize_value(None) != normalize_value("x")


def seeded_diverse(static_analysis, faults_by_server, *, normalize):
    server = DiverseServer(
        [
            make_server(key, faults_by_server.get(key, []))
            for key in ("IB", "PG", "OR", "MS")
        ],
        adjudication="majority",
        static_analysis=static_analysis,
        normalize=normalize,
    )
    server.execute("CREATE TABLE ledger (id INTEGER PRIMARY KEY, tag CHAR(8))")
    for index in range(4):
        server.execute(f"INSERT INTO ledger (id, tag) VALUES ({index}, 't{index}')")
    return server


MS_NOPAD = FaultSpec(
    "T-NOPAD",
    "renders CHAR without trailing blanks (MS semantics)",
    RelationTrigger(["ledger"], kind="select"),
    DialectRenderEffect("rstrip"),
)


class TestComparatorTriage:
    def test_benign_rendering_is_forgiven(self):
        server = seeded_diverse(True, {"MS": [MS_NOPAD]}, normalize=False)
        for _ in range(3):
            server.execute("SELECT tag FROM ledger WHERE id < 3 ORDER BY id")
        stats = server.stats
        assert stats.disagreements_detected > 0
        assert stats.benign_dialect_divergences > 0
        assert stats.fault_indicating_divergences == 0
        assert stats.quarantines == 0

    def test_ablation_suspects_correct_replica(self):
        server = seeded_diverse(False, {"MS": [MS_NOPAD]}, normalize=False)
        for _ in range(3):
            server.execute("SELECT tag FROM ledger WHERE id < 3 ORDER BY id")
        stats = server.stats
        assert stats.fault_indicating_divergences > 0
        assert stats.benign_dialect_divergences == 0

    def test_genuine_fault_still_indicts(self):
        drop = FaultSpec(
            "T-ROWDROP",
            "silently drops rows from ledger scans",
            RelationTrigger(["ledger"], kind="select"),
            RowDropEffect(),
        )
        server = seeded_diverse(True, {"IB": [drop]}, normalize=True)
        for _ in range(3):
            server.execute("SELECT id, tag FROM ledger ORDER BY id")
        stats = server.stats
        assert stats.fault_indicating_divergences > 0
        assert stats.benign_dialect_divergences == 0
