"""Catalog and storage unit tests (below the engine facade)."""

import pytest

from repro.errors import CatalogError
from repro.sqlengine.catalog import Catalog, ColumnDef, IndexDef, TableSchema, ViewDef
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.storage import Storage, TableData
from repro.sqlengine.types import INTEGER


def schema(name="t", columns=("a", "b")):
    return TableSchema(
        name=name,
        columns=[ColumnDef(c, INTEGER) for c in columns],
    )


class TestCatalog:
    def test_case_insensitive_lookup(self):
        catalog = Catalog()
        catalog.add_table(schema("MyTable"))
        assert catalog.has_table("mytable")
        assert catalog.table("MYTABLE").name == "MyTable"

    def test_column_index_case_insensitive(self):
        table = schema(columns=("Alpha", "Beta"))
        assert table.column_index("alpha") == 0
        assert table.column_index("BETA") == 1
        with pytest.raises(CatalogError):
            table.column_index("gamma")

    def test_view_table_cross_errors(self):
        catalog = Catalog()
        catalog.add_table(schema("t"))
        view = ViewDef("v", parse_statement("SELECT 1"))
        catalog.add_view(view)
        with pytest.raises(CatalogError, match="is a view"):
            catalog.table("v")
        with pytest.raises(CatalogError, match="use DROP VIEW"):
            catalog.drop_table("v")
        with pytest.raises(CatalogError, match="use DROP TABLE"):
            catalog.drop_view("t")

    def test_drop_table_on_view_with_override(self):
        # The bug-223512 escape hatch, used via the behaviour flag.
        catalog = Catalog()
        catalog.add_view(ViewDef("v", parse_statement("SELECT 1")))
        assert catalog.drop_table("v", allow_view=True) == "view"
        assert not catalog.has_view("v")

    def test_drop_table_cascades_indexes(self):
        catalog = Catalog()
        catalog.add_table(schema("t"))
        catalog.add_index(IndexDef("ix", "t", ["a"]))
        catalog.drop_table("t")
        with pytest.raises(CatalogError):
            catalog.index("ix")

    def test_index_requires_existing_columns(self):
        catalog = Catalog()
        catalog.add_table(schema("t"))
        with pytest.raises(CatalogError):
            catalog.add_index(IndexDef("ix", "t", ["ghost"]))

    def test_indexes_on_filters_by_table(self):
        catalog = Catalog()
        catalog.add_table(schema("t1"))
        catalog.add_table(schema("t2"))
        catalog.add_index(IndexDef("ix1", "t1", ["a"]))
        catalog.add_index(IndexDef("ix2", "t2", ["a"]))
        assert [ix.name for ix in catalog.indexes_on("t1")] == ["ix1"]

    def test_clear(self):
        catalog = Catalog()
        catalog.add_table(schema("t"))
        catalog.clear()
        assert not catalog.tables()

    def test_view_has_distinct_detection(self):
        plain = ViewDef("v1", parse_statement("SELECT a FROM t"))
        distinct = ViewDef("v2", parse_statement("SELECT DISTINCT a FROM t"))
        union_distinct = ViewDef(
            "v3", parse_statement("SELECT a FROM t UNION ALL SELECT DISTINCT b FROM u")
        )
        assert not plain.has_distinct
        assert distinct.has_distinct
        assert union_distinct.has_distinct


class TestTableData:
    def test_insert_and_len(self):
        data = TableData("t", 2)
        data.insert([1, "x"])
        assert len(data) == 1

    def test_width_enforced(self):
        data = TableData("t", 2)
        with pytest.raises(ValueError):
            data.insert([1])

    def test_delete_returns_positions(self):
        data = TableData("t", 1)
        for value in range(5):
            data.insert([value])
        removed = data.delete_rows(lambda row: row[0] % 2 == 0)
        assert [position for position, _ in removed] == [0, 2, 4]
        assert len(data) == 2

    def test_restore_rows_reinserts_in_place(self):
        data = TableData("t", 1)
        for value in range(5):
            data.insert([value])
        removed = data.delete_rows(lambda row: row[0] in (1, 3))
        data.restore_rows(removed)
        assert [row[0] for row in data.rows()] == [0, 1, 2, 3, 4]

    def test_remove_row_by_identity(self):
        data = TableData("t", 1)
        row = data.insert([7])
        data.insert([7])  # equal but distinct object
        data.remove_row(row)
        assert len(data) == 1

    def test_add_column_backfills(self):
        data = TableData("t", 1)
        data.insert([1])
        data.add_column("fill")
        assert data.rows()[0] == [1, "fill"]
        assert data.column_count == 2

    def test_snapshot_is_immutable_copy(self):
        data = TableData("t", 1)
        data.insert([1])
        snap = data.snapshot()
        data.rows()[0][0] = 99
        assert snap == [(1,)]


class TestStorage:
    def test_create_get_drop(self):
        storage = Storage()
        storage.create("t", 2)
        assert storage.get("T").name == "t"
        assert storage.drop("t") is not None
        assert storage.get_optional("t") is None

    def test_duplicate_create_rejected(self):
        storage = Storage()
        storage.create("t", 1)
        with pytest.raises(ValueError):
            storage.create("T", 1)
