"""Property-based equivalence tests for the query rephraser: for
randomly generated predicates over a fixed table (including NULLs), the
rephrased query must return exactly the same rows."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.middleware.rephrase import QueryRephraser
from repro.sqlengine import Engine

COLUMNS = ("a", "b")


def make_engine():
    engine = Engine("prop")
    engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)")
    values = [0, 1, 2, 3, None]
    for index, (a, b) in enumerate(itertools.product(values, values)):
        a_sql = "NULL" if a is None else str(a)
        b_sql = "NULL" if b is None else str(b)
        engine.execute(f"INSERT INTO t (id, a, b) VALUES ({index}, {a_sql}, {b_sql})")
    return engine


ENGINE = make_engine()

# -- predicate grammar --------------------------------------------------------

comparisons = st.builds(
    lambda column, op, value: f"{column} {op} {value}",
    st.sampled_from(COLUMNS),
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.integers(min_value=-1, max_value=4),
)

in_lists = st.builds(
    lambda column, values, negated: (
        f"{column} {'NOT ' if negated else ''}IN ({', '.join(map(str, values))})"
    ),
    st.sampled_from(COLUMNS),
    st.lists(st.integers(min_value=-1, max_value=4), min_size=1, max_size=4),
    st.booleans(),
)

betweens = st.builds(
    lambda column, low, high, negated: (
        f"{column} {'NOT ' if negated else ''}BETWEEN {low} AND {high}"
    ),
    st.sampled_from(COLUMNS),
    st.integers(min_value=-1, max_value=2),
    st.integers(min_value=1, max_value=4),
    st.booleans(),
)

null_checks = st.builds(
    lambda column, negated: f"{column} IS {'NOT ' if negated else ''}NULL",
    st.sampled_from(COLUMNS),
    st.booleans(),
)

atoms = st.one_of(comparisons, in_lists, betweens, null_checks)


def combine(left, op, right):
    return f"({left}) {op} ({right})"


predicates = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.builds(combine, inner, st.sampled_from(["AND", "OR"]), inner),
        st.builds(lambda p: f"NOT ({p})", inner),
    ),
    max_leaves=6,
)


class TestRephraseEquivalenceProperty:
    @settings(max_examples=120, deadline=None)
    @given(predicate=predicates)
    def test_rephrased_predicate_selects_same_rows(self, predicate):
        sql = f"SELECT id FROM t WHERE {predicate} ORDER BY id"
        rephrased = QueryRephraser().rephrase_sql(sql)
        assert ENGINE.execute(sql).rows == ENGINE.execute(rephrased).rows, rephrased

    @settings(max_examples=60, deadline=None)
    @given(predicate=predicates)
    def test_double_rephrasing_still_equivalent(self, predicate):
        sql = f"SELECT id FROM t WHERE {predicate} ORDER BY id"
        once = QueryRephraser().rephrase_sql(sql)
        twice = QueryRephraser().rephrase_sql(once)
        assert ENGINE.execute(sql).rows == ENGINE.execute(twice).rows

    @settings(max_examples=60, deadline=None)
    @given(
        threshold=st.integers(min_value=-1, max_value=4),
        negated=st.booleans(),
    )
    def test_union_subquery_distribution(self, threshold, negated):
        keyword = "NOT IN" if negated else "IN"
        sql = (
            f"SELECT id FROM t WHERE a {keyword} "
            f"((SELECT a FROM t WHERE b > {threshold}) UNION "
            f"(SELECT b FROM t WHERE a <= {threshold})) ORDER BY id"
        )
        rephrased = QueryRephraser().rephrase_sql(sql)
        assert ENGINE.execute(sql).rows == ENGINE.execute(rephrased).rows, rephrased
