"""MiddlewareStats reset/merge/as_dict audit.

The stats dataclass grows a few counters every time the middleware
grows a subsystem (supervision, deadlines, durability, rebuild...).
``reset``, ``merge``, and ``as_dict`` are written field-generically via
``dataclasses.fields`` so a new counter can never be silently dropped
— this test is the enforcement: it enumerates the fields itself and
checks every one takes part in every operation, so the only way to
break the invariant is to stop using a dataclass field at all.
"""

import dataclasses

from repro.middleware import MiddlewareStats


def stat_fields():
    return dataclasses.fields(MiddlewareStats)


def populated(start=1):
    """A stats object with a distinct nonzero value in every field."""
    stats = MiddlewareStats()
    for offset, field in enumerate(stat_fields()):
        setattr(stats, field.name, start + offset)
    return stats


def test_every_field_is_an_int_counter_defaulting_to_zero():
    fresh = MiddlewareStats()
    for field in stat_fields():
        assert field.type in ("int", int), field.name
        assert field.default == 0, field.name
        assert getattr(fresh, field.name) == 0, field.name


def test_reset_zeroes_every_field():
    stats = populated()
    stats.reset()
    for field in stat_fields():
        assert getattr(stats, field.name) == 0, field.name


def test_merge_sums_every_field_without_mutating_inputs():
    a = populated(start=1)
    b = populated(start=1000)
    merged = a.merge(b)
    for offset, field in enumerate(stat_fields()):
        assert getattr(merged, field.name) == 1001 + 2 * offset, field.name
        assert getattr(a, field.name) == 1 + offset, field.name
        assert getattr(b, field.name) == 1000 + offset, field.name


def test_merge_identity_is_a_fresh_stats():
    a = populated()
    merged = a.merge(MiddlewareStats())
    for field in stat_fields():
        assert getattr(merged, field.name) == getattr(a, field.name), field.name


def test_as_dict_covers_exactly_the_fields():
    stats = populated()
    as_dict = stats.as_dict()
    assert set(as_dict) == {field.name for field in stat_fields()}
    for field in stat_fields():
        assert as_dict[field.name] == getattr(stats, field.name), field.name


def test_durability_counters_present():
    """The PR-6 counters exist (guards against a rename breaking the
    telemetry consumers in the CLI drills and benchmarks)."""
    names = {field.name for field in stat_fields()}
    assert {
        "rebuilds_started", "rebuilds_completed", "rebuilds_failed",
        "rebuild_replayed_statements", "wal_records", "wal_torn_writes",
        "wal_lost_flushes", "wal_corruptions", "durable_checkpoints",
        "durable_recoveries",
    } <= names
