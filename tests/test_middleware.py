"""Diverse-redundancy middleware tests."""

import pytest

from repro.errors import (
    AdjudicationFailure,
    MiddlewareError,
    SqlError,
)
from repro.faults import CrashEffect, ErrorEffect, FaultSpec, RelationTrigger, RowDropEffect
from repro.middleware import DiverseServer, ReplicaState, ResultComparator
from repro.middleware.comparator import ReplicaAnswer
from repro.middleware.normalizer import normalize_result, normalize_value
from repro.middleware.server import replicated_server
from repro.servers import make_server


def wrong_rows_fault(table="accounts"):
    return FaultSpec(
        "F-WRONG",
        "drops result rows",
        RelationTrigger([table], kind="select"),
        RowDropEffect(keep_one_in=2),
    )


def crash_fault(table="accounts"):
    return FaultSpec(
        "F-CRASH",
        "crashes on select",
        RelationTrigger([table], kind="select"),
        CrashEffect(),
    )


def setup(server):
    server.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance NUMERIC(10,2))")
    server.execute("INSERT INTO accounts (id, balance) VALUES (1, 100.00), (2, 200.00)")
    return server


class TestNormalizer:
    def test_numeric_representations_collide(self):
        from decimal import Decimal

        assert normalize_value(10) == normalize_value(Decimal("10.00"))
        assert normalize_value(2.5) == normalize_value(Decimal("2.5"))

    def test_padding_insignificant(self):
        assert normalize_value("ab   ") == normalize_value("ab")

    def test_real_differences_survive(self):
        assert normalize_value(3.3333333) != normalize_value(3.3333334)
        assert normalize_value("a") != normalize_value("b")

    def test_column_case_insensitive(self):
        left = normalize_result(["ID"], [(1,)])
        right = normalize_result(["id"], [(1,)])
        assert left == right

    def test_row_order_significant(self):
        left = normalize_result(["a"], [(1,), (2,)])
        right = normalize_result(["a"], [(2,), (1,)])
        assert left != right


class TestComparator:
    def answer(self, name, rows, status="ok"):
        return ReplicaAnswer(
            replica=name, status=status, columns=("a",), rows=tuple(rows),
            rowcount=len(rows),
        )

    def test_unanimous(self):
        comparison = ResultComparator().compare(
            [self.answer("IB", [(1,)]), self.answer("PG", [(1,)])]
        )
        assert comparison.unanimous

    def test_disagreement_groups(self):
        comparison = ResultComparator().compare(
            [
                self.answer("IB", [(1,)]),
                self.answer("PG", [(2,)]),
                self.answer("OR", [(1,)]),
            ]
        )
        assert comparison.disagreement
        assert len(comparison.largest) == 2
        assert comparison.minority_replicas() == ["PG"]

    def test_majority_requires_strict_majority(self):
        comparison = ResultComparator().compare(
            [self.answer("IB", [(1,)]), self.answer("PG", [(2,)])]
        )
        assert comparison.majority(2) is None

    def test_errors_vote_together(self):
        comparison = ResultComparator().compare(
            [
                self.answer("IB", (), status="error"),
                self.answer("PG", (), status="error"),
            ]
        )
        assert comparison.unanimous

    def test_normalisation_toggle(self):
        from decimal import Decimal

        left = self.answer("IB", [(Decimal("10.00"),)])
        right = self.answer("PG", [(10,)])
        assert ResultComparator(normalize=True).compare([left, right]).unanimous
        assert not ResultComparator(normalize=False).compare([left, right]).unanimous


class TestDiverseServerHappyPath:
    def test_reads_and_writes_agree(self):
        server = setup(DiverseServer([make_server("IB"), make_server("OR")]))
        result = server.execute("SELECT id, balance FROM accounts ORDER BY id")
        assert len(result.rows) == 2
        assert server.stats.unanimous > 0
        assert server.stats.disagreements_detected == 0

    def test_genuine_errors_propagate(self):
        server = setup(DiverseServer([make_server("IB"), make_server("OR")]))
        with pytest.raises(SqlError):
            server.execute("INSERT INTO accounts (id, balance) VALUES (1, 0)")  # dup PK

    def test_requires_two_replicas(self):
        with pytest.raises(MiddlewareError):
            DiverseServer([make_server("IB")])

    def test_rejects_duplicate_products(self):
        with pytest.raises(MiddlewareError):
            DiverseServer([make_server("IB"), make_server("IB")])

    def test_dialect_translation_inside_middleware(self):
        # Client SQL uses TIMESTAMP; the MS replica needs DATETIME.
        server = DiverseServer([make_server("PG"), make_server("MS")])
        server.execute("CREATE TABLE t (a INTEGER, ts TIMESTAMP)")
        server.execute("INSERT INTO t (a) VALUES (1)")
        assert server.execute("SELECT a FROM t").rows == [(1,)]


class TestDetectionAndMasking:
    def test_compare_mode_detects_wrong_answer(self):
        faulty = make_server("IB", [wrong_rows_fault()])
        server = setup(
            DiverseServer([faulty, make_server("OR")], adjudication="compare",
                          auto_recover=False)
        )
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT id, balance FROM accounts ORDER BY id")
        assert server.stats.disagreements_detected == 1

    def test_majority_masks_wrong_answer(self):
        faulty = make_server("IB", [wrong_rows_fault()])
        server = setup(
            DiverseServer(
                [faulty, make_server("OR"), make_server("MS")],
                adjudication="majority",
                auto_recover=False,
            )
        )
        result = server.execute("SELECT id, balance FROM accounts ORDER BY id")
        assert len(result.rows) == 2  # correct answer delivered
        assert server.stats.failures_masked == 1
        assert server.replica("IB").state is ReplicaState.SUSPECTED

    def test_two_version_majority_fails_over_to_detection(self):
        faulty = make_server("IB", [wrong_rows_fault()])
        server = setup(
            DiverseServer([faulty, make_server("OR")], adjudication="majority",
                          auto_recover=False)
        )
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT id, balance FROM accounts ORDER BY id")

    def test_spurious_error_outvoted(self):
        faulty = make_server("IB", [
            FaultSpec("F-ERR", "spurious error",
                      RelationTrigger(["accounts"], kind="select"),
                      ErrorEffect("spurious"))
        ])
        server = setup(
            DiverseServer(
                [faulty, make_server("OR"), make_server("MS")],
                adjudication="majority", auto_recover=False,
            )
        )
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert len(result.rows) == 2
        assert server.replica("IB").state is ReplicaState.SUSPECTED

    def test_identical_wrong_answers_win_the_vote(self):
        # The non-detectable case: both replicas share the fault.
        server = setup(
            DiverseServer(
                [
                    make_server("IB", [wrong_rows_fault()]),
                    make_server("MS", [wrong_rows_fault()]),
                ],
                adjudication="compare",
            )
        )
        result = server.execute("SELECT id, balance FROM accounts ORDER BY id")
        assert len(result.rows) == 1  # silently wrong: why ND bugs matter


class TestCrashHandlingAndRecovery:
    def test_crash_failover(self):
        faulty = make_server("IB", [crash_fault()])
        server = setup(
            DiverseServer(
                [faulty, make_server("OR"), make_server("MS")],
                adjudication="majority", auto_recover=False,
            )
        )
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert len(result.rows) == 2
        assert server.replica("IB").state is ReplicaState.FAILED
        assert server.stats.replica_crashes == 1

    def test_log_replay_recovery(self):
        faulty = make_server("IB", [crash_fault()])
        server = setup(
            DiverseServer([faulty, make_server("OR"), make_server("MS")],
                          adjudication="majority", auto_recover=False)
        )
        server.execute("SELECT id FROM accounts")  # IB crashes
        faulty.injector.disable("F-CRASH")
        server.recover("IB")
        assert server.replica("IB").state is ReplicaState.ACTIVE
        # The recovered replica has the full state back.
        assert faulty.execute("SELECT COUNT(*) FROM accounts").scalar() == 2

    def test_auto_recovery(self):
        faulty = make_server("IB", [wrong_rows_fault()])
        server = setup(
            DiverseServer([faulty, make_server("OR"), make_server("MS")],
                          adjudication="majority", auto_recover=True)
        )
        server.execute("SELECT id, balance FROM accounts ORDER BY id")
        assert server.replica("IB").state is ReplicaState.ACTIVE
        assert server.stats.recoveries == 1

    def test_availability_metric(self):
        faulty = make_server("IB", [crash_fault()])
        server = setup(
            DiverseServer([faulty, make_server("OR"), make_server("MS")],
                          adjudication="majority", auto_recover=False)
        )
        assert server.availability() == 1.0
        server.execute("SELECT id FROM accounts")
        assert server.availability() == pytest.approx(2 / 3)


class TestModesAndBaselines:
    def test_primary_mode_no_comparison(self):
        faulty = make_server("IB", [wrong_rows_fault()])
        server = setup(DiverseServer([faulty, make_server("OR")], adjudication="primary"))
        result = server.execute("SELECT id, balance FROM accounts ORDER BY id")
        # Primary answers without comparison: the wrong answer ships.
        assert len(result.rows) == 1
        assert server.stats.disagreements_detected == 0

    def test_read_split_skips_comparison_on_reads(self):
        server = setup(
            DiverseServer([make_server("IB"), make_server("OR")],
                          adjudication="majority", read_split=True)
        )
        server.execute("SELECT id FROM accounts")
        assert server.stats.unanimous == 0 or server.stats.reads > 0

    def test_replicated_non_diverse_baseline_shares_faults(self):
        # Two identical faulty copies agree on the wrong answer.
        server = setup(
            replicated_server(
                lambda: make_server("IB", [wrong_rows_fault()]),
                count=2,
                adjudication="compare",
            )
        )
        result = server.execute("SELECT id, balance FROM accounts ORDER BY id")
        assert len(result.rows) == 1  # coincident wrong answer undetected

    def test_write_log_collected(self):
        server = setup(DiverseServer([make_server("IB"), make_server("OR")]))
        assert len(server.write_log) == 2  # create + insert
