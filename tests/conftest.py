"""Shared fixtures.

The corpus and the full study run are session-scoped: they are
deterministic and read-only for the tests that consume them, and the
full study (181 bugs x 4 servers, faulty + oracle runs) takes a few
seconds we only want to pay once.
"""

from __future__ import annotations

import pytest

from repro.bugs import build_corpus
from repro.servers import make_all_servers, make_server
from repro.sqlengine import Engine
from repro.study import run_study


@pytest.fixture
def engine() -> Engine:
    return Engine("test")


@pytest.fixture
def seeded_engine() -> Engine:
    eng = Engine("test")
    eng.execute(
        "CREATE TABLE product (id INTEGER PRIMARY KEY, name VARCHAR(30), "
        "price NUMERIC(8,2), qty INTEGER)"
    )
    eng.execute(
        "INSERT INTO product (id, name, price, qty) VALUES "
        "(1, 'widget', 9.50, 5), (2, 'gadget', 20.00, 2), "
        "(3, 'nut', 0.25, 100), (4, 'bolt', 0.35, 80)"
    )
    return eng


@pytest.fixture
def servers():
    return make_all_servers()


@pytest.fixture
def interbase():
    return make_server("IB")


@pytest.fixture(scope="session")
def corpus():
    return build_corpus()


@pytest.fixture(scope="session")
def study():
    return run_study()
