"""Fault-injection framework tests."""

import pytest

from repro.errors import EngineCrash, SqlError
from repro.faults import (
    AlwaysTrigger,
    BehaviourFlagEffect,
    CrashEffect,
    ErrorEffect,
    FaultInjector,
    FaultSpec,
    PerformanceEffect,
    RelationTrigger,
    RowcountSkewEffect,
    RowDropEffect,
    RowDuplicateEffect,
    SqlPatternTrigger,
    TagTrigger,
    ValueSkewEffect,
)
from repro.faults.triggers import NeverTrigger, RelationPrefixTrigger
from repro.sqlengine import Engine


def make_engine(*faults, stress=False, seed=0):
    injector = FaultInjector("test", faults, stress_mode=stress, seed=seed)
    engine = Engine("test", injector=injector)
    engine.execute("CREATE TABLE victim (id INTEGER, val INTEGER)")
    engine.execute("INSERT INTO victim VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
    engine.execute("CREATE TABLE bystander (id INTEGER)")
    engine.execute("INSERT INTO bystander VALUES (7)")
    return engine


def fault(effect, trigger=None, **kwargs):
    return FaultSpec(
        fault_id=kwargs.pop("fault_id", "F-1"),
        description="test fault",
        trigger=trigger or RelationTrigger(["victim"], kind="select"),
        effect=effect,
        **kwargs,
    )


class TestTriggers:
    def test_relation_trigger_scoped(self):
        engine = make_engine(fault(CrashEffect()))
        assert engine.execute("SELECT id FROM bystander").rows == [(7,)]
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id FROM victim")

    def test_relation_trigger_kind_scoped(self):
        engine = make_engine(fault(CrashEffect()))
        # kind="select": inserts into victim don't trip it.
        engine.execute("INSERT INTO victim VALUES (5, 50)")

    def test_tag_trigger(self):
        engine = make_engine(
            fault(CrashEffect(), TagTrigger(required=["clause.group_by"]))
        )
        engine.execute("SELECT id FROM victim")
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id, COUNT(*) FROM victim GROUP BY id")

    def test_tag_trigger_any_of_and_forbidden(self):
        trigger = TagTrigger(any_of=["clause.distinct", "clause.limit"],
                             forbidden=["clause.order_by"])
        engine = make_engine(fault(CrashEffect(), trigger))
        engine.execute("SELECT id FROM victim")  # no any_of tag
        engine.execute("SELECT DISTINCT id FROM victim ORDER BY id")  # forbidden
        with pytest.raises(EngineCrash):
            engine.execute("SELECT DISTINCT id FROM victim")

    def test_sql_pattern_trigger(self):
        engine = make_engine(fault(CrashEffect(), SqlPatternTrigger(r"val\s*>\s*25")))
        engine.execute("SELECT id FROM victim WHERE val > 5")
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id FROM victim WHERE val > 25")

    def test_prefix_trigger(self):
        engine = make_engine(
            fault(CrashEffect(), RelationPrefixTrigger("vic", kind="select"))
        )
        engine.execute("SELECT id FROM bystander")
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id FROM victim")

    def test_combinators(self):
        both = RelationTrigger(["victim"]) & TagTrigger(required=["clause.order_by"])
        engine = make_engine(fault(CrashEffect(), both))
        engine.execute("SELECT id FROM victim")
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id FROM victim ORDER BY id")

    def test_never_and_always(self):
        engine = make_engine(fault(CrashEffect(), NeverTrigger()))
        engine.execute("SELECT id FROM victim")
        injector = FaultInjector("t", [fault(CrashEffect(), AlwaysTrigger())])
        engine2 = Engine("t", injector=injector)
        with pytest.raises(EngineCrash):
            engine2.execute("SELECT 1")


class TestEffects:
    def test_crash_marks_engine_down(self):
        engine = make_engine(fault(CrashEffect()))
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id FROM victim")
        assert engine.crashed
        with pytest.raises(EngineCrash):
            engine.execute("SELECT 1")  # still down
        engine.restart()
        assert engine.execute("SELECT id FROM bystander").rows == [(7,)]

    def test_error_effect(self):
        engine = make_engine(fault(ErrorEffect("spurious failure")))
        with pytest.raises(SqlError, match="spurious"):
            engine.execute("SELECT id FROM victim")

    def test_row_drop(self):
        engine = make_engine(fault(RowDropEffect(keep_one_in=2)))
        rows = engine.execute("SELECT id FROM victim ORDER BY id").rows
        assert len(rows) == 2  # every other row dropped

    def test_row_drop_never_empties_result(self):
        engine = make_engine(fault(RowDropEffect(keep_one_in=1)))
        rows = engine.execute("SELECT id FROM victim").rows
        assert rows  # guard against degenerate "all rows dropped"

    def test_row_duplicate(self):
        engine = make_engine(fault(RowDuplicateEffect(every=2)))
        rows = engine.execute("SELECT id FROM victim ORDER BY id").rows
        assert len(rows) == 6

    def test_value_skew_targets_column(self):
        engine = make_engine(fault(ValueSkewEffect(delta=1000.0, column=1)))
        rows = engine.execute("SELECT id, val FROM victim ORDER BY id").rows
        assert rows[0][0] == 1          # untouched column
        assert rows[0][1] == 1010.0     # skewed column

    def test_performance_effect(self):
        engine = make_engine(fault(PerformanceEffect(factor=500)))
        result = engine.execute("SELECT id FROM victim")
        assert result.virtual_cost >= 500

    def test_rowcount_skew(self):
        engine = make_engine(
            fault(RowcountSkewEffect(delta=2), RelationTrigger(["victim"], kind="update"))
        )
        result = engine.execute("UPDATE victim SET val = val + 1")
        assert result.rowcount == 6  # actually 4

    def test_behaviour_flag_consulted(self):
        engine = make_engine(
            fault(
                BehaviourFlagEffect("empty_agg_field_names"),
                RelationTrigger(["victim"]),
            )
        )
        result = engine.execute("SELECT AVG(val), SUM(val) FROM victim")
        assert result.columns == ["", ""]
        # Scoped: other tables keep proper names.
        other = engine.execute("SELECT AVG(id) FROM bystander")
        assert other.columns == ["AVG"]

    def test_performance_factor_must_inflate(self):
        with pytest.raises(ValueError):
            PerformanceEffect(factor=0.5)


class TestInjector:
    def test_enable_disable(self):
        spec = fault(CrashEffect())
        engine = make_engine(spec)
        engine.injector.disable("F-1")
        engine.execute("SELECT id FROM victim")
        engine.injector.enable("F-1")
        with pytest.raises(EngineCrash):
            engine.execute("SELECT id FROM victim")

    def test_duplicate_fault_id_rejected(self):
        injector = FaultInjector("t", [fault(CrashEffect())])
        with pytest.raises(ValueError):
            injector.add(fault(CrashEffect()))

    def test_activation_history(self):
        engine = make_engine(fault(RowDropEffect()))
        engine.execute("SELECT id FROM victim")
        assert "F-1" in engine.injector.fired_fault_ids
        assert engine.injector.activation_counts["F-1"] == 1

    def test_multiple_faults_compose(self):
        engine = make_engine(
            fault(RowDropEffect(keep_one_in=2), fault_id="F-1"),
            fault(PerformanceEffect(200), fault_id="F-2"),
        )
        result = engine.execute("SELECT id FROM victim")
        assert len(result.rows) == 2 and result.virtual_cost >= 200


class TestHeisenbugs:
    def test_never_fires_in_normal_mode(self):
        engine = make_engine(fault(RowDropEffect(), heisenbug=True))
        for _ in range(20):
            assert len(engine.execute("SELECT id FROM victim").rows) == 4

    def test_fires_probabilistically_under_stress(self):
        spec = fault(RowDropEffect(), heisenbug=True, stress_activation=0.5)
        engine = make_engine(spec, stress=True, seed=42)
        outcomes = {len(engine.execute("SELECT id FROM victim").rows) for _ in range(50)}
        assert outcomes == {2, 4}  # sometimes fails, sometimes not

    def test_stress_activation_validated(self):
        with pytest.raises(ValueError):
            fault(RowDropEffect(), heisenbug=True, stress_activation=1.5)

    def test_deterministic_given_seed(self):
        def run(seed):
            engine = make_engine(
                fault(RowDropEffect(), heisenbug=True, stress_activation=0.5),
                stress=True,
                seed=seed,
            )
            return [len(engine.execute("SELECT id FROM victim").rows) for _ in range(10)]

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) != run(9)  # seeds matter
