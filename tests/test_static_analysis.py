"""Static semantic analyzer: verdicts, schema tracking, portability,
reachability, the corpus lint, and the middleware behaviours the
verdicts drive (multiset voting, idempotence-gated write retries)."""

import datetime

import pytest

from repro.analysis import (
    OrderVerdict,
    ScriptSchema,
    analyze_statement,
    fault_reachability,
    lint_corpus,
    predicted_hosts,
    script_contexts,
    script_portability,
    unreachable_faults,
)
from repro.bugs import build_corpus
from repro.dialects.features import SERVER_KEYS
from repro.errors import AdjudicationFailure
from repro.faults import (
    ErrorEffect,
    FaultSpec,
    RelationTrigger,
    ScanOrderEffect,
    SqlPatternTrigger,
    StallEffect,
)
from repro.middleware import DiverseServer, ReplicaState, SupervisorPolicy
from repro.middleware.normalizer import normalize_value
from repro.servers import make_server
from repro.sqlengine.parser import parse_statement


def verdict(sql, schema=None):
    return analyze_statement(parse_statement(sql), schema)


def schema_for(*ddl):
    schema = ScriptSchema()
    for sql in ddl:
        schema.observe(parse_statement(sql))
    return schema


ITEMS = "CREATE TABLE items (id INTEGER PRIMARY KEY, val INTEGER, lbl VARCHAR(10))"


class TestOrderVerdicts:
    def test_bare_select_is_unordered(self):
        assert verdict("SELECT id, val FROM items").order is OrderVerdict.UNORDERED

    def test_order_by_unique_key_is_total(self):
        schema = schema_for(ITEMS)
        v = verdict("SELECT id, val FROM items WHERE val > 5 ORDER BY id", schema)
        assert v.order is OrderVerdict.TOTAL

    def test_order_by_non_key_is_partial(self):
        schema = schema_for(ITEMS)
        assert (
            verdict("SELECT id, val FROM items ORDER BY val", schema).order
            is OrderVerdict.PARTIAL
        )

    def test_order_by_key_without_schema_degrades_to_partial(self):
        # No schema facts: the unique-key proof is unavailable, so the
        # analyzer must answer conservatively.
        assert (
            verdict("SELECT id FROM items ORDER BY id").order is OrderVerdict.PARTIAL
        )

    def test_aggregate_only_select_is_single_row_total(self):
        assert (
            verdict("SELECT COUNT(*), MAX(val) FROM items").order
            is OrderVerdict.TOTAL
        )

    def test_group_by_ordered_by_full_group_key_is_total(self):
        v = verdict("SELECT lbl, COUNT(*) FROM items GROUP BY lbl ORDER BY lbl")
        assert v.order is OrderVerdict.TOTAL

    def test_distinct_ordered_by_all_positions_is_total(self):
        v = verdict("SELECT DISTINCT val, lbl FROM items ORDER BY 1, 2")
        assert v.order is OrderVerdict.TOTAL

    def test_dedup_view_star_ordered_by_position_is_total(self):
        schema = schema_for(
            ITEMS.replace("items", "a"),
            ITEMS.replace("items", "b"),
            "CREATE VIEW vu (x) AS (SELECT val FROM a) UNION (SELECT val FROM b)",
        )
        assert (
            verdict("SELECT * FROM vu ORDER BY 1", schema).order is OrderVerdict.TOTAL
        )

    def test_limit_without_total_order_is_nondeterministic(self):
        assert (
            verdict("SELECT val FROM items LIMIT 3").order
            is OrderVerdict.NONDETERMINISTIC
        )
        assert (
            verdict("SELECT id, val FROM items ORDER BY val LIMIT 3").order
            is OrderVerdict.NONDETERMINISTIC
        )

    def test_limit_with_total_order_stays_total(self):
        schema = schema_for(ITEMS)
        v = verdict("SELECT id FROM items ORDER BY id LIMIT 3", schema)
        assert v.order is OrderVerdict.TOTAL

    def test_volatile_function_is_nondeterministic(self):
        v = verdict("SELECT GETDATE() FROM items")
        assert v.order is OrderVerdict.NONDETERMINISTIC
        assert v.volatile == frozenset({"GETDATE"})

    def test_non_select_has_no_order_question(self):
        assert verdict("DELETE FROM items").order is OrderVerdict.TOTAL

    def test_multiset_comparable_only_for_unordered_selects(self):
        assert verdict("SELECT val FROM items").multiset_comparable
        assert not verdict("SELECT val FROM items ORDER BY val").multiset_comparable
        assert not verdict("DELETE FROM items").multiset_comparable


class TestAccessVerdicts:
    def test_select_reads_only(self):
        v = verdict("SELECT val FROM items")
        assert v.access.reads == frozenset({"items"})
        assert v.access.writes == frozenset()
        assert not v.access.is_write
        assert v.access.reexecution_safe

    def test_self_referential_update_not_idempotent(self):
        v = verdict("UPDATE items SET val = val + 1 WHERE val > 5")
        assert v.access.is_write
        assert not v.access.idempotent
        assert not v.access.reexecution_safe

    def test_constant_update_keyed_elsewhere_is_reexecution_safe(self):
        v = verdict("UPDATE items SET lbl = 'x' WHERE id = 1")
        assert v.access.idempotent
        assert v.access.reexecution_safe

    def test_update_assigning_its_own_where_column_not_safe(self):
        # State-idempotent (val = 7 twice is val = 7), but the re-run's
        # WHERE no longer matches, so the rowcount is not reproducible.
        v = verdict("UPDATE items SET val = 7 WHERE val = 3")
        assert v.access.idempotent
        assert not v.access.reexecution_safe

    def test_update_reading_unassigned_columns_is_safe(self):
        v = verdict("UPDATE items SET val = id * 2 WHERE lbl = 'x'")
        assert v.access.reexecution_safe

    def test_delete_idempotent_but_not_reexecution_safe(self):
        v = verdict("DELETE FROM items WHERE val > 5")
        assert v.access.idempotent
        assert not v.access.reexecution_safe

    def test_insert_neither(self):
        v = verdict("INSERT INTO items (id, val) VALUES (1, 2)")
        assert not v.access.idempotent
        assert not v.access.reexecution_safe
        assert v.access.writes == frozenset({"items"})

    def test_ddl_never_reexecutes(self):
        assert not verdict(ITEMS).access.reexecution_safe
        assert not verdict("DROP TABLE items").access.idempotent

    def test_update_with_subquery_not_idempotent(self):
        v = verdict(
            "UPDATE items SET lbl = 'x' WHERE id IN (SELECT id FROM items)"
        )
        assert not v.access.idempotent


class TestScriptSchema:
    def test_unique_keys_from_pk_unique_and_index(self):
        schema = schema_for(
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER UNIQUE, c INTEGER, "
            "UNIQUE (c, b))",
            "CREATE UNIQUE INDEX ix_c ON t (c)",
        )
        keys = schema.unique_keys("t")
        assert frozenset({"a"}) in keys
        assert frozenset({"b"}) in keys
        assert frozenset({"c", "b"}) in keys
        assert frozenset({"c"}) in keys

    def test_drop_index_removes_its_key(self):
        schema = schema_for(
            "CREATE TABLE t (a INTEGER)",
            "CREATE UNIQUE INDEX ix_a ON t (a)",
            "DROP INDEX ix_a",
        )
        assert schema.unique_keys("t") == []

    def test_drop_table_forgets_everything(self):
        schema = schema_for(ITEMS, "DROP TABLE items")
        assert schema.table("items") is None

    def test_alter_add_unique_column_adds_key(self):
        schema = schema_for(
            "CREATE TABLE t (a INTEGER)",
            "ALTER TABLE t ADD COLUMN b INTEGER UNIQUE",
        )
        assert frozenset({"b"}) in schema.unique_keys("t")
        assert schema.table("t").columns == ["a", "b"]

    def test_dynamic_view_tags_predicted_for_readers_only(self):
        contexts = script_contexts(
            "CREATE TABLE t (a INTEGER);"
            "CREATE VIEW dv AS SELECT DISTINCT a FROM t;"
            "SELECT * FROM dv"
        )
        by_sql = {ctx.sql: ctx for ctx in contexts if ctx.engine.phase == "serve"}
        create_view = by_sql["CREATE VIEW dv AS SELECT DISTINCT a FROM t"]
        reader = by_sql["SELECT * FROM dv"]
        # The CREATE VIEW's own traits name the view, but it does not
        # exist yet: no self-tagging.
        assert "view.used" not in create_view.all_tags
        assert {"view.used", "view.distinct_used"} <= reader.all_tags

    def test_writes_get_recover_phase_twins(self):
        contexts = script_contexts("CREATE TABLE t (a INTEGER); SELECT 1 FROM t")
        phases = [ctx.engine.phase for ctx in contexts]
        assert phases == ["serve", "recover", "serve"]


class TestPortability:
    def test_plain_script_runs_everywhere(self):
        sql = ITEMS + "; INSERT INTO items (id, val) VALUES (1, 2)"
        assert predicted_hosts(sql) == frozenset(SERVER_KEYS)

    def test_verdicts_name_missing_features(self):
        for verdicts in [script_portability("SELECT 1 FROM t LIMIT 1")]:
            refused = [v for v in verdicts.values() if not v.can_run]
            accepted = [v for v in verdicts.values() if v.can_run]
            assert accepted, "LIMIT must be hosted somewhere"
            for v in refused:
                assert v.missing

    def test_predictions_match_corpus_ground_truth(self, corpus):
        for report in corpus.reports[:20]:
            assert predicted_hosts(report.script) == frozenset(
                report.runnable_on | report.translation_pending
            ), report.bug_id


class TestReachabilityAndLint:
    def test_shipped_corpus_is_clean(self, corpus):
        # Error-free; the corpus does carry warning-severity dead-code
        # findings (bulk setup writes no SELECT observes), which lint
        # reports without failing.
        findings = lint_corpus(corpus)
        assert [f for f in findings if f.severity == "error"] == []
        assert all(f.severity == "warning" for f in findings)

    def test_every_seeded_fault_reachable(self, corpus):
        assert unreachable_faults(corpus) == []
        reachability = fault_reachability(corpus)
        assert any(reachability[server] for server in SERVER_KEYS)

    def test_seeded_dead_fault_is_found(self):
        mutated = build_corpus()
        report = mutated.reports[0]
        report.faults.setdefault(report.reported_for, []).append(
            FaultSpec(
                "LINT-DEAD",
                "trigger references a table no script creates",
                RelationTrigger(["no_such_table"], kind="select"),
                ErrorEffect("unreachable"),
            )
        )
        findings = [f for f in lint_corpus(mutated) if f.severity == "error"]
        assert [f.check for f in findings] == ["dead-fault"]
        assert "LINT-DEAD" in findings[0].subject

    def test_seeded_portability_drift_is_found(self):
        mutated = build_corpus()
        mutated.reports[0].runnable_on = frozenset()
        findings = lint_corpus(mutated)
        assert any(f.check == "portability-drift" for f in findings)

    def test_lint_cli_clean_on_shipped_corpus(self, capsys):
        from repro.__main__ import main

        assert main(["lint"]) == 0
        assert "corpus clean" in capsys.readouterr().out


ORDER_FAULT = FaultSpec(
    "F-SCANORDER",
    "returns rows in reverse physical order",
    RelationTrigger(["accounts"], kind="select"),
    ScanOrderEffect(),
)


def diverse(adjudication="compare", ib_faults=(), **kwargs):
    server = DiverseServer(
        [make_server("IB", list(ib_faults)), make_server("OR"), make_server("MS")],
        adjudication=adjudication,
        **kwargs,
    )
    server.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance NUMERIC(10,2), "
        "lbl VARCHAR(10))"
    )
    server.execute(
        "INSERT INTO accounts (id, balance, lbl) VALUES "
        "(1, 100.00, 'a'), (2, 200.00, 'b'), (3, 300.00, 'c')"
    )
    return server


class TestMultisetVoting:
    def test_unordered_select_tolerates_benign_reorder(self):
        server = diverse(ib_faults=[ORDER_FAULT])
        result = server.execute("SELECT id, balance FROM accounts")
        assert len(result.rows) == 3
        assert server.stats.multiset_comparisons == 1
        assert server.stats.disagreements_detected == 0
        assert server.replica("IB").state is ReplicaState.ACTIVE

    def test_totally_ordered_select_still_detects_reorder(self):
        server = diverse(ib_faults=[ORDER_FAULT])
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT id, balance FROM accounts ORDER BY id")

    def test_partial_order_is_not_multiset_voted(self):
        server = diverse(ib_faults=[ORDER_FAULT])
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT id, balance FROM accounts ORDER BY lbl")
        assert server.stats.multiset_comparisons == 0

    def test_ablation_reverts_to_ordered_comparison(self):
        server = diverse(ib_faults=[ORDER_FAULT], static_analysis=False)
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT id, balance FROM accounts")
        assert server.stats.multiset_comparisons == 0

    def test_monitor_mode_logs_instead(self):
        server = diverse(
            adjudication="monitor", ib_faults=[ORDER_FAULT], static_analysis=False
        )
        server.execute("SELECT id, balance FROM accounts")
        assert server.disagreement_log


def stall_fault(pattern):
    return FaultSpec(
        "F-STALL",
        "one transient stall",
        SqlPatternTrigger(pattern),
        StallEffect(delay=400.0, once=True),
    )


class TestIdempotentWriteRetry:
    DEADLINE = SupervisorPolicy(statement_deadline=50.0)

    def test_safe_write_stall_is_retried_and_saved(self):
        server = diverse(
            adjudication="majority",
            ib_faults=[stall_fault(r"SET lbl = 'z'")],
            policy=self.DEADLINE,
        )
        server.execute("UPDATE accounts SET lbl = 'z' WHERE id = 1")
        assert server.stats.idempotent_write_retries == 1
        assert server.stats.retries_saved == 1
        assert server.stats.statement_timeouts == 0
        assert server.replica("IB").state is ReplicaState.ACTIVE

    def test_unsafe_write_stall_is_never_retried(self):
        server = diverse(
            adjudication="majority",
            ib_faults=[stall_fault(r"balance \+ 1")],
            policy=self.DEADLINE,
        )
        server.execute("UPDATE accounts SET balance = balance + 1 WHERE id = 1")
        assert server.stats.idempotent_write_retries == 0
        assert server.stats.statement_timeouts == 1

    def test_policy_knob_restores_blanket_rule(self):
        server = diverse(
            adjudication="majority",
            ib_faults=[stall_fault(r"SET lbl = 'z'")],
            policy=SupervisorPolicy(
                statement_deadline=50.0, idempotent_write_retry=False
            ),
        )
        server.execute("UPDATE accounts SET lbl = 'z' WHERE id = 1")
        assert server.stats.idempotent_write_retries == 0
        assert server.stats.statement_timeouts == 1

    def test_ablation_disables_write_retry(self):
        server = diverse(
            adjudication="majority",
            ib_faults=[stall_fault(r"SET lbl = 'z'")],
            policy=self.DEADLINE,
            static_analysis=False,
        )
        server.execute("UPDATE accounts SET lbl = 'z' WHERE id = 1")
        assert server.stats.idempotent_write_retries == 0
        assert server.stats.statement_timeouts == 1


class TestDateNormalization:
    def test_date_folds_to_midnight_timestamp(self):
        # Intentional dialect tolerance: products whose dialect has only
        # a combined date-time type return midnight timestamps for DATE
        # values; that must not read as disagreement.
        assert normalize_value(datetime.date(2004, 1, 1)) == normalize_value(
            datetime.datetime(2004, 1, 1, 0, 0)
        )

    def test_real_time_differences_survive(self):
        plain = normalize_value(datetime.date(2004, 1, 1))
        assert plain != normalize_value(datetime.datetime(2004, 1, 1, 0, 0, 1))
        assert plain != normalize_value(datetime.date(2004, 1, 2))
