"""Built-in scalar function and aggregate accumulator tests."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import BindError, DivisionByZero, TypeMismatch
from repro.sqlengine.functions import (
    Accumulator,
    fn_convert,
    fn_decode,
    fn_gen_id,
    fn_getdate,
    fn_mod,
    lookup_scalar,
)


def call(name, *args):
    return lookup_scalar(name)(None, *args)


class TestNumericFunctions:
    def test_abs(self):
        assert call("ABS", -5) == 5
        assert call("ABS", Decimal("-2.5")) == Decimal("2.5")
        assert call("ABS", None) is None

    def test_mod_integers(self):
        assert call("MOD", 7, 3) == 1
        assert call("MOD", -7, 3) == -1  # truncation semantics

    def test_mod_decimals(self):
        assert call("MOD", Decimal("10.5"), 3) == Decimal("1.5")

    def test_mod_by_zero(self):
        with pytest.raises(DivisionByZero):
            call("MOD", 5, 0)

    def test_mod_precision_flag(self):
        class Ctx:
            def flag(self, name):
                return name == "mod_precision_bug"

        clean = fn_mod(None, Decimal("10.5"), 3)
        buggy = fn_mod(Ctx(), Decimal("10.5"), 3)
        assert clean == Decimal("1.5")
        assert buggy != Decimal("1.5")
        assert abs(float(buggy) - 1.5) < 1e-5  # tiny drift, not garbage
        # Integer operands keep exact semantics even with the flag.
        assert fn_mod(Ctx(), 7, 3) == 1

    def test_round(self):
        assert call("ROUND", Decimal("3.456"), 2) == Decimal("3.46")
        assert call("ROUND", 3.456) == 3.0

    def test_floor_ceiling(self):
        assert call("FLOOR", Decimal("2.9")) == 2
        assert call("CEILING", Decimal("2.1")) == 3
        assert call("CEIL", 2.1) == 3

    def test_power_sqrt(self):
        assert call("POWER", 2, 10) == 1024.0
        assert call("SQRT", 16) == 4.0
        with pytest.raises(TypeMismatch):
            call("SQRT", -1)


class TestStringFunctions:
    def test_upper_lower(self):
        assert call("UPPER", "abc") == "ABC"
        assert call("LOWER", "ABC") == "abc"

    def test_length_variants(self):
        for name in ("LENGTH", "CHAR_LENGTH", "LEN"):
            assert call(name, "hello") == 5

    def test_trims(self):
        assert call("TRIM", "  x  ") == "x"
        assert call("LTRIM", "  x") == "x"
        assert call("RTRIM", "x  ") == "x"

    def test_substring_one_based(self):
        assert call("SUBSTRING", "hello", 2, 3) == "ell"
        assert call("SUBSTR", "hello", 2) == "ello"

    def test_substring_out_of_range(self):
        assert call("SUBSTRING", "hi", 5, 3) == ""
        with pytest.raises(TypeMismatch):
            call("SUBSTRING", "hi", 1, -1)

    def test_replace(self):
        assert call("REPLACE", "a-b-c", "-", "+") == "a+b+c"

    def test_string_function_on_number(self):
        assert call("UPPER", 5) == "5"  # numbers render to text first


class TestNullHandling:
    @pytest.mark.parametrize(
        "name,args",
        [
            ("UPPER", (None,)),
            ("LENGTH", (None,)),
            ("SUBSTRING", (None, 1)),
            ("MOD", (None, 2)),
            ("ROUND", (None,)),
            ("REPLACE", ("x", None, "y")),
        ],
    )
    def test_null_propagation(self, name, args):
        assert call(name, *args) is None

    def test_coalesce(self):
        assert call("COALESCE", None, None, 3, 4) == 3
        assert call("COALESCE", None, None) is None
        assert call("NVL", None, "d") == "d"
        assert call("IFNULL", 1, 2) == 1

    def test_nullif(self):
        assert call("NULLIF", 5, 5) is None
        assert call("NULLIF", 5, 6) == 5
        assert call("NULLIF", None, 5) is None


class TestVendorExtensions:
    def test_gen_id(self):
        assert fn_gen_id(None, "seq", 1) == 1
        assert fn_gen_id(None, "seq", None) is None

    def test_decode_matches(self):
        assert fn_decode(None, 2, 1, "one", 2, "two", "other") == "two"
        assert fn_decode(None, 9, 1, "one", "other") == "other"
        assert fn_decode(None, 9, 1, "one") is None

    def test_decode_null_equals_null(self):
        # The semantic difference from CASE that blocks translation.
        assert fn_decode(None, None, None, "both-null", "other") == "both-null"

    def test_decode_needs_pairs(self):
        with pytest.raises(TypeMismatch):
            fn_decode(None, 1, 2)

    def test_getdate_pinned(self):
        assert fn_getdate(None) == datetime.datetime(2003, 8, 1, 12, 0, 0)

    def test_convert(self):
        assert fn_convert(None, 42, "VARCHAR") == "42"
        assert fn_convert(None, "3.5", "FLOAT") == 3.5
        assert fn_convert(None, 42) == 42

    def test_unknown_function(self):
        with pytest.raises(BindError):
            lookup_scalar("FROBNICATE")


class TestAccumulators:
    def make(self, name, values, distinct=False, star=False):
        acc = Accumulator(name, distinct, star)
        for value in values:
            acc.add(value)
        return acc.result()

    def test_count_star_counts_everything(self):
        acc = Accumulator("COUNT", False, True)
        for _ in range(5):
            acc.add(None)
        assert acc.result() == 5

    def test_count_skips_nulls(self):
        assert self.make("COUNT", [1, None, 2, None]) == 2

    def test_sum_avg(self):
        assert self.make("SUM", [1, 2, 3]) == 6
        assert self.make("AVG", [1, 2, 3]) == Decimal(2)

    def test_avg_exact_division(self):
        assert self.make("AVG", [1, 2]) == Decimal("1.5")

    def test_sum_of_nothing_is_null(self):
        assert self.make("SUM", [None, None]) is None
        assert self.make("AVG", []) is None

    def test_min_max(self):
        assert self.make("MIN", [3, 1, 2]) == 1
        assert self.make("MAX", ["a", "c", "b"]) == "c"

    def test_distinct_aggregation(self):
        assert self.make("COUNT", [1, 1, 2, 2, 3], distinct=True) == 3
        assert self.make("SUM", [5, 5, 5], distinct=True) == 5

    def test_distinct_cross_type_equality(self):
        assert self.make("COUNT", [1, Decimal("1.0"), 1.0], distinct=True) == 1
