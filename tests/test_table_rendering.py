"""Text renderings of the reproduced tables (the benchmark/CLI output)."""

import pytest

from repro.study import build_table1, build_table2, build_table3, build_table4
from repro.study.tables import (
    Table2Row,
    Table3Row,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


class TestRenderings:
    def test_table1_layout(self, study):
        text = render_table1(build_table1(study))
        assert "Bugs reported for IB" in text
        assert "Bugs reported for MS" in text
        assert "Engine crash" in text
        # The home column leads each group: IB's 47 failures visible.
        assert "47" in text

    def test_table2_includes_all_groups(self, study):
        text = render_table2(build_table2(study))
        for group in ("IPOM", "IP", "PM", "O"):
            assert f"\n{group} " in text or text.startswith(f"{group} ")

    def test_table3_shows_detect_percentages(self, study):
        text = render_table3(build_table3(study))
        assert "IB+PG" in text and "OR+MS" in text
        assert "%" in text
        assert "100.0%" in text  # pairs with zero ND bugs

    def test_table4_matrix_shape(self, study):
        text = render_table4(build_table4(study))
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 server rows
        assert "-" in lines[1]  # the diagonal

    def test_row_dataclasses_defaults(self):
        row2 = Table2Row()
        assert row2.total == 0 and row2.more_than_two == 0
        row3 = Table3Row()
        assert row3.detectable_fraction == 1.0  # vacuously fully detectable
        row3.fail_any = 10
        row3.both_nondetectable = 1
        assert row3.detectable_fraction == pytest.approx(0.9)
