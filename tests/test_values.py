"""SQL value semantics: three-valued logic, comparison, arithmetic, LIKE."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import DivisionByZero, TypeMismatch
from repro.sqlengine.values import (
    distinct_key,
    like_match,
    row_key,
    sql_add,
    sql_compare,
    sql_concat,
    sql_div,
    sql_equal,
    sql_mul,
    sql_neg,
    sql_sub,
    tri_and,
    tri_not,
    tri_or,
)


class TestTribool:
    def test_and_truth_table(self):
        assert tri_and(True, True) is True
        assert tri_and(True, False) is False
        assert tri_and(False, None) is False  # False dominates UNKNOWN
        assert tri_and(True, None) is None
        assert tri_and(None, None) is None

    def test_or_truth_table(self):
        assert tri_or(False, False) is False
        assert tri_or(True, None) is True  # True dominates UNKNOWN
        assert tri_or(False, None) is None
        assert tri_or(None, None) is None

    def test_not(self):
        assert tri_not(True) is False
        assert tri_not(False) is True
        assert tri_not(None) is None

    def test_de_morgan_holds(self):
        values = [True, False, None]
        for a in values:
            for b in values:
                assert tri_not(tri_and(a, b)) == tri_or(tri_not(a), tri_not(b))


class TestComparison:
    def test_null_comparison_is_unknown(self):
        assert sql_compare(None, 1) is None
        assert sql_compare(None, None) is None
        assert sql_equal(None, None) is None

    def test_cross_numeric_types(self):
        assert sql_compare(1, Decimal("1.0")) == 0
        assert sql_compare(1.5, Decimal("1.25")) == 1
        assert sql_compare(2, 2.5) == -1

    def test_string_number_coercion(self):
        # The permissive coercion bug scripts rely on: PRICE >= '9.00'.
        assert sql_compare(Decimal("10.00"), "9.00") == 1
        assert sql_compare("9.00", Decimal("9.00")) == 0

    def test_string_number_garbage_raises(self):
        with pytest.raises(TypeMismatch):
            sql_compare("abc", 1)

    def test_char_padding_insignificant(self):
        assert sql_compare("ab   ", "ab") == 0

    def test_string_ordering(self):
        assert sql_compare("apple", "banana") == -1

    def test_date_vs_string(self):
        assert sql_compare(datetime.date(2000, 9, 6), "2000-9-6") == 0
        assert sql_compare(datetime.date(2000, 9, 7), "2000-9-6") == 1

    def test_boolean_vs_number(self):
        assert sql_compare(True, 1) == 0
        assert sql_compare(False, 1) == -1


class TestDistinctKeys:
    def test_equal_values_collide(self):
        assert distinct_key(1) == distinct_key(Decimal("1"))
        assert distinct_key("x ") == distinct_key("x")

    def test_nulls_group_together(self):
        assert distinct_key(None) == distinct_key(None)

    def test_row_key(self):
        assert row_key((1, "a")) == row_key((Decimal(1), "a "))
        assert row_key((1, "a")) != row_key((1, "b"))


class TestArithmetic:
    def test_null_propagation(self):
        assert sql_add(None, 1) is None
        assert sql_mul(2, None) is None
        assert sql_neg(None) is None

    def test_integer_division_truncates_toward_zero(self):
        assert sql_div(7, 2) == 3
        assert sql_div(-7, 2) == -3

    def test_mixed_division_is_exact(self):
        assert sql_div(Decimal("7.0"), 2) == Decimal("3.5")

    def test_division_by_zero(self):
        with pytest.raises(DivisionByZero):
            sql_div(1, 0)

    def test_decimal_plus_int(self):
        assert sql_add(Decimal("1.5"), 1) == Decimal("2.5")

    def test_float_contaminates_decimal(self):
        result = sql_mul(Decimal("1.5"), 2.0)
        assert isinstance(result, float)

    def test_string_operand_coerced(self):
        assert sql_add("2", 3) == Decimal(5)

    def test_non_numeric_operand_raises(self):
        with pytest.raises(TypeMismatch):
            sql_sub("abc", 1)

    def test_negation(self):
        assert sql_neg(5) == -5
        assert sql_neg(Decimal("2.5")) == Decimal("-2.5")


class TestConcat:
    def test_basic(self):
        assert sql_concat("a", "b") == "ab"

    def test_null_propagates(self):
        assert sql_concat("a", None) is None

    def test_numbers_rendered(self):
        assert sql_concat("v", 5) == "v5"
        assert sql_concat(Decimal("1.50"), "x") == "1.50x"


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),  # case-sensitive
            ("hello", "%z%", False),
            ("", "%", True),
            ("abc", "___", True),
            ("abc", "____", False),
            ("50%", "50!%", None),  # needs escape parameter, see below
        ],
    )
    def test_patterns(self, value, pattern, expected):
        if expected is None:
            assert like_match(value, pattern, escape="!") is True
        else:
            assert like_match(value, pattern) is expected

    def test_escape_literal_percent(self):
        assert like_match("100%", "100!%", escape="!") is True
        assert like_match("100x", "100!%", escape="!") is False

    def test_null_operands(self):
        assert like_match(None, "%") is None
        assert like_match("x", None) is None

    def test_non_string_raises(self):
        with pytest.raises(TypeMismatch):
            like_match(5, "%")

    def test_regex_metacharacters_are_literal(self):
        assert like_match("a.b", "a.b") is True
        assert like_match("axb", "a.b") is False
