"""DDL execution: tables, views, indexes, ALTER, drop semantics."""

import pytest

from repro.errors import CatalogError, ConstraintViolation, SqlError


class TestCreateTable:
    def test_create_and_query(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_duplicate_table_rejected(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError):
            engine.execute("CREATE TABLE t (b INTEGER)")

    def test_duplicate_column_rejected(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE TABLE t (a INTEGER, a VARCHAR(5))")

    def test_table_and_view_share_namespace(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("CREATE VIEW v AS SELECT a FROM t")
        with pytest.raises(CatalogError):
            engine.execute("CREATE TABLE v (x INTEGER)")

    def test_two_primary_keys_rejected(self, engine):
        with pytest.raises(SqlError):
            engine.execute(
                "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, PRIMARY KEY (b))"
            )

    def test_pk_over_missing_column_rejected(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE TABLE t (a INTEGER, PRIMARY KEY (zzz))")


class TestViews:
    def test_view_reflects_underlying_data(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW cheap AS SELECT id FROM product WHERE price < 1")
        assert len(seeded_engine.execute("SELECT * FROM cheap").rows) == 2
        seeded_engine.execute("INSERT INTO product (id, name, price) VALUES (9, 'pin', 0.05)")
        assert len(seeded_engine.execute("SELECT * FROM cheap").rows) == 3

    def test_view_column_renames(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v (pid, pname) AS SELECT id, name FROM product")
        result = seeded_engine.execute("SELECT pid FROM v WHERE pname = 'nut'")
        assert result.rows == [(3,)]

    def test_view_column_count_mismatch_rejected(self, seeded_engine):
        with pytest.raises(CatalogError):
            seeded_engine.execute("CREATE VIEW v (a, b, c) AS SELECT id FROM product")

    def test_view_over_missing_table_rejected(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE VIEW v AS SELECT x FROM nothing")

    def test_view_over_view(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v1 AS SELECT id, qty FROM product")
        seeded_engine.execute("CREATE VIEW v2 AS SELECT id FROM v1 WHERE qty > 50")
        assert len(seeded_engine.execute("SELECT * FROM v2").rows) == 2

    def test_view_with_distinct_flag(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v AS SELECT DISTINCT name FROM product")
        assert seeded_engine.catalog.view("v").has_distinct

    def test_drop_view(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v AS SELECT id FROM product")
        seeded_engine.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            seeded_engine.execute("SELECT * FROM v")


class TestDropSemantics:
    """SQL-92 drop rules — the ones Interbase bug 223512 violates."""

    def test_drop_table_on_view_rejected(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v AS SELECT id FROM product")
        with pytest.raises(CatalogError):
            seeded_engine.execute("DROP TABLE v")
        # The view survives.
        assert seeded_engine.execute("SELECT COUNT(*) FROM v").scalar() == 4

    def test_drop_view_on_table_rejected(self, seeded_engine):
        with pytest.raises(CatalogError):
            seeded_engine.execute("DROP VIEW product")

    def test_drop_table_removes_data_and_indexes(self, seeded_engine):
        seeded_engine.execute("CREATE INDEX ix ON product (name)")
        seeded_engine.execute("DROP TABLE product")
        with pytest.raises(CatalogError):
            seeded_engine.execute("SELECT 1 FROM product")
        with pytest.raises(CatalogError):
            seeded_engine.execute("DROP INDEX ix")

    def test_drop_missing_table(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("DROP TABLE ghost")


class TestIndexes:
    def test_create_index(self, seeded_engine):
        seeded_engine.execute("CREATE INDEX ix ON product (name)")
        assert seeded_engine.catalog.index("ix").columns == ["name"]

    def test_duplicate_index_name_rejected(self, seeded_engine):
        seeded_engine.execute("CREATE INDEX ix ON product (name)")
        with pytest.raises(CatalogError):
            seeded_engine.execute("CREATE INDEX ix ON product (qty)")

    def test_index_on_missing_column_rejected(self, seeded_engine):
        with pytest.raises(CatalogError):
            seeded_engine.execute("CREATE INDEX ix ON product (ghost)")

    def test_unique_index_validates_existing_rows(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("INSERT INTO t VALUES (1), (1)")
        with pytest.raises(ConstraintViolation):
            engine.execute("CREATE UNIQUE INDEX ix ON t (a)")

    def test_clustered_index_metadata(self, seeded_engine):
        seeded_engine.execute("CREATE CLUSTERED INDEX cx ON product (id)")
        assert seeded_engine.catalog.index("cx").clustered

    def test_drop_index(self, seeded_engine):
        seeded_engine.execute("CREATE INDEX ix ON product (name)")
        seeded_engine.execute("DROP INDEX ix")
        with pytest.raises(CatalogError):
            seeded_engine.catalog.index("ix")


class TestAlterTable:
    def test_add_column_with_default_backfills(self, seeded_engine):
        seeded_engine.execute("ALTER TABLE product ADD COLUMN origin VARCHAR(10) DEFAULT 'uk'")
        assert seeded_engine.execute(
            "SELECT origin FROM product WHERE id = 1"
        ).scalar() == "uk"

    def test_add_column_without_default_backfills_null(self, seeded_engine):
        seeded_engine.execute("ALTER TABLE product ADD COLUMN extra INTEGER")
        assert seeded_engine.execute(
            "SELECT extra FROM product WHERE id = 1"
        ).scalar() is None

    def test_add_not_null_without_default_rejected_when_rows_exist(self, seeded_engine):
        with pytest.raises(ConstraintViolation):
            seeded_engine.execute("ALTER TABLE product ADD COLUMN must INTEGER NOT NULL")

    def test_add_duplicate_column_rejected(self, seeded_engine):
        with pytest.raises(CatalogError):
            seeded_engine.execute("ALTER TABLE product ADD COLUMN name VARCHAR(5)")

    def test_new_column_usable_in_queries(self, seeded_engine):
        seeded_engine.execute("ALTER TABLE product ADD COLUMN score INTEGER DEFAULT 3")
        assert seeded_engine.execute(
            "SELECT SUM(score) FROM product"
        ).scalar() == 12
