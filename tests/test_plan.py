"""Planned query execution: lowering, rewrites, compiled operators.

Covers the logical/physical plan layer end to end: lowering SELECTs
into operator trees, the rule-based rewrites (constant folding,
predicate pushdown, projection pruning, index selection), EXPLAIN
rendering at every API level, the engine's generation-checked plan
cache, unique-index maintenance in storage, runtime fallback to the
tree-walker, planned DML, and the dual-plan divergence oracle that
catches planner-level wrong results on a single replica.
"""

from __future__ import annotations

import pytest

from repro.errors import SqlError
from repro.faults import AlwaysTrigger, FaultSpec, PlanStageBugEffect
from repro.middleware import DiverseServer, ServerConfig
from repro.servers import make_interbase, make_postgres, make_server
from repro.sqlengine import Engine
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.plan import (
    PROBE_SCRIPTS,
    REWRITE_RULES,
    PhysicalSelect,
    PlanUnsupported,
    apply_rewrites,
    compile_select,
    explain_plan,
    explain_statement,
    lower_select,
)


def _engine() -> Engine:
    engine = Engine(name="plan-test")
    engine.execute(
        "CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR(10), "
        "balance NUMERIC(8,2))"
    )
    engine.execute("CREATE TABLE branches (bid INTEGER PRIMARY KEY, city VARCHAR(10))")
    for i, (owner, balance) in enumerate(
        [("ann", "10.00"), ("bob", "20.50"), ("cat", "5.25"), ("dan", "20.50")]
    ):
        engine.execute(
            f"INSERT INTO accounts (id, owner, balance) "
            f"VALUES ({i}, '{owner}', {balance})"
        )
    engine.execute("INSERT INTO branches (bid, city) VALUES (1, 'york')")
    return engine


def _plan_for(engine: Engine, sql: str):
    plan = lower_select(parse_statement(sql), engine.catalog)
    return apply_rewrites(plan)


# -- lowering and rewrites -------------------------------------------------


class TestLoweringAndRewrites:
    def test_lowering_builds_operator_tree(self):
        engine = _engine()
        plan = lower_select(
            parse_statement(
                "SELECT owner FROM accounts WHERE balance > 6 ORDER BY owner"
            ),
            engine.catalog,
        )
        text = explain_plan(plan)
        assert "Sort" in text
        assert "Filter" in text
        assert "Scan accounts" in text

    def test_constant_folding_applies(self):
        engine = _engine()
        plan = _plan_for(engine, "SELECT owner FROM accounts WHERE balance > 1 + 1")
        assert "constant_folding" in plan.applied_rules
        assert "(balance > 2)" in explain_plan(plan)

    def test_predicate_pushdown_applies_on_joins(self):
        engine = _engine()
        plan = _plan_for(
            engine,
            "SELECT owner FROM accounts, branches "
            "WHERE accounts.id = branches.bid AND balance > 6",
        )
        assert "predicate_pushdown" in plan.applied_rules

    def test_projection_pruning_narrows_scans(self):
        engine = _engine()
        plan = _plan_for(engine, "SELECT owner FROM accounts")
        assert "projection_pruning" in plan.applied_rules
        # The scan only materializes the column the query reads.
        assert "Scan accounts [owner]" in explain_plan(plan)

    def test_index_selection_uses_primary_key(self):
        engine = _engine()
        plan = _plan_for(engine, "SELECT owner FROM accounts WHERE id = 2")
        assert "index_selection" in plan.applied_rules
        assert "IndexLookup accounts via PRIMARY KEY" in explain_plan(plan)

    def test_every_registered_rule_has_a_live_witness(self):
        engine = Engine(name="witness")
        fired: set[str] = set()
        for sql in PROBE_SCRIPTS:
            engine.execute(sql)
        for _, _, plan in engine._plans.values():
            if isinstance(plan, PhysicalSelect):
                fired.update(plan.plan.applied_rules)
        assert fired >= set(REWRITE_RULES)

    def test_subqueries_are_unplanned(self):
        engine = _engine()
        with pytest.raises(PlanUnsupported):
            compile_select(
                parse_statement(
                    "SELECT owner FROM accounts "
                    "WHERE EXISTS (SELECT 1 FROM branches)"
                ),
                engine,
            )


# -- compiled execution matches the walker ---------------------------------


class TestCompiledExecution:
    PROBES = [
        "SELECT id, owner, balance FROM accounts ORDER BY id",
        "SELECT owner FROM accounts WHERE balance > 6 ORDER BY owner",
        "SELECT owner FROM accounts WHERE id = 2",
        "SELECT COUNT(*), SUM(balance) FROM accounts",
        "SELECT owner, COUNT(*) FROM accounts GROUP BY owner ORDER BY owner",
        "SELECT DISTINCT balance FROM accounts ORDER BY balance",
        "SELECT owner FROM accounts ORDER BY balance DESC LIMIT 2",
        "SELECT owner, city FROM accounts, branches "
        "WHERE accounts.id = branches.bid",
        "SELECT owner FROM accounts WHERE owner LIKE 'a%'",
        "SELECT owner FROM accounts WHERE balance BETWEEN 6 AND 21",
    ]

    def test_planned_results_equal_walker(self):
        for sql in self.PROBES:
            planned, walker = _engine(), _engine()
            walker.use_planner = False
            left = planned.execute(sql)
            right = walker.execute(sql)
            assert left.columns == right.columns, sql
            assert left.rows == right.rows, sql

    def test_planned_errors_equal_walker(self):
        for sql in [
            "SELECT nosuch FROM accounts",
            "SELECT owner + 1 FROM accounts",
        ]:
            planned, walker = _engine(), _engine()
            walker.use_planner = False
            with pytest.raises(SqlError) as planned_error:
                planned.execute(sql)
            with pytest.raises(SqlError) as walker_error:
                walker.execute(sql)
            assert str(planned_error.value) == str(walker_error.value), sql

    def test_planned_dml_matches_walker(self):
        planned, walker = _engine(), _engine()
        walker.use_planner = False
        script = [
            "INSERT INTO accounts (id, owner, balance) VALUES (9, 'eve', 1.00)",
            "UPDATE accounts SET balance = balance + 1 WHERE id = 9",
            "UPDATE accounts SET owner = 'zed' WHERE balance > 20",
            "DELETE FROM accounts WHERE owner = 'zed'",
        ]
        for sql in script:
            assert planned.execute(sql).rowcount == walker.execute(sql).rowcount, sql
        probe = "SELECT id, owner, balance FROM accounts ORDER BY id"
        assert planned.execute(probe).rows == walker.execute(probe).rows

    def test_unique_violation_detected_through_index(self):
        engine = _engine()
        with pytest.raises(SqlError):
            engine.execute(
                "INSERT INTO accounts (id, owner, balance) VALUES (2, 'dup', 0)"
            )
        with pytest.raises(SqlError):
            engine.execute("UPDATE accounts SET id = 0 WHERE id = 3")

    def test_parameter_kind_mismatch_falls_back_to_walker(self):
        planned, walker = _engine(), _engine()
        walker.use_planner = False
        sql = "SELECT owner FROM accounts WHERE id = ?"
        for params in [(2,), ("two",)]:
            outcomes = []
            for engine in (planned, walker):
                try:
                    outcomes.append(("ok", engine.prepare(sql).execute(params).rows))
                except SqlError as error:
                    outcomes.append(("error", str(error)))
            assert outcomes[0] == outcomes[1], params


# -- the plan cache --------------------------------------------------------


class TestPlanCache:
    def test_prepared_handle_reuses_one_plan(self):
        engine = _engine()
        engine._plans.clear()
        handle = engine.prepare("SELECT owner FROM accounts WHERE id = ?")
        handle.execute((1,))
        handle.execute((2,))
        plans = [p for (_s, _g, p) in engine._plans.values() if p is not None]
        assert len(plans) == 1

    def test_ddl_invalidates_cached_plans(self):
        engine = _engine()
        engine._plans.clear()
        handle = engine.prepare("SELECT owner FROM accounts WHERE id = ?")
        handle.execute((1,))
        stmt_id, (stmt, generation, plan) = next(iter(engine._plans.items()))
        engine.execute("CREATE TABLE extra (x INTEGER)")
        assert engine.catalog.generation > generation
        handle.execute((1,))
        _, new_generation, new_plan = engine._plans[stmt_id]
        assert new_generation == engine.catalog.generation
        assert new_plan is not plan

    def test_unsupported_statement_caches_negative_entry(self):
        engine = _engine()
        engine._plans.clear()
        handle = engine.prepare(
            "SELECT owner FROM accounts WHERE EXISTS (SELECT 1 FROM branches)"
        )
        handle.execute(())
        handle.execute(())
        entries = list(engine._plans.values())
        assert len(entries) == 1
        assert entries[0][2] is None  # compiled once, walker serves it

    def test_reset_clears_plans(self):
        engine = _engine()
        engine.execute("SELECT owner FROM accounts")
        assert engine._plans
        engine.reset()
        assert not engine._plans


# -- storage unique indexes ------------------------------------------------


class TestUniqueIndexMaintenance:
    def test_index_tracks_insert_update_delete(self):
        engine = _engine()
        data = engine.storage.get("accounts")
        index = data.unique_index((0,))
        assert index is not None and len(index.map) == len(data.rows())
        engine.execute(
            "INSERT INTO accounts (id, owner, balance) VALUES (7, 'gil', 3)"
        )
        assert len(index.map) == len(data.rows())
        engine.execute("UPDATE accounts SET id = 8 WHERE id = 7")
        assert (("n", 8),) in index.map
        engine.execute("DELETE FROM accounts WHERE id = 8")
        assert len(index.map) == len(data.rows())

    def test_transaction_undo_restores_index(self):
        engine = _engine()
        data = engine.storage.get("accounts")
        before = set(engine.storage.get("accounts").snapshot())
        engine.execute("BEGIN")
        engine.execute("UPDATE accounts SET id = 77 WHERE id = 1")
        engine.execute("DELETE FROM accounts WHERE id = 2")
        engine.execute("ROLLBACK")
        assert set(data.snapshot()) == before
        index = data.unique_index((0,))
        assert index is not None and len(index.map) == len(data.rows())
        # Point lookups still resolve after undo.
        assert engine.execute("SELECT owner FROM accounts WHERE id = 1").rows == [
            ("bob",)
        ]

    def test_duplicate_data_poisons_index(self):
        from repro.sqlengine.storage import TableData

        data = TableData("d", 2)
        data.insert([1, "a"])
        data.insert([1, "b"])  # storage layer itself doesn't enforce keys
        assert data.unique_index((0,)) is None


# -- EXPLAIN surfaces ------------------------------------------------------


class TestExplain:
    def test_explain_statement_renders_rules_and_checks(self):
        engine = _engine()
        text = explain_statement(
            "SELECT owner FROM accounts WHERE id = ?", engine.catalog
        )
        assert text.startswith("plan:")
        assert "IndexLookup accounts via PRIMARY KEY" in text
        assert "rewrites:" in text
        assert "runtime checks: ?1:n" in text

    def test_explain_statement_names_walker_for_unplanned_shapes(self):
        engine = _engine()
        note = explain_statement(
            "SELECT owner FROM accounts WHERE EXISTS (SELECT 1 FROM branches)",
            engine.catalog,
        )
        assert "unplanned" in note and "tree-walker" in note
        ddl = explain_statement("CREATE TABLE z (x INTEGER)", engine.catalog)
        assert "executed directly by the engine" in ddl

    def test_sql_server_explain(self):
        server = make_server("PG")
        server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)")
        assert "IndexLookup t" in server.explain("SELECT b FROM t WHERE a = 1")

    def test_diverse_server_explain_is_memoized_per_generation(self):
        server = DiverseServer([make_interbase(), make_postgres()])
        server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)")
        first = server.explain("SELECT b FROM t WHERE a = 1")
        again = server.explain("SELECT b FROM t WHERE a = 1")
        assert first == again
        assert server.pipeline.stats.plan_hits == 1
        assert server.pipeline.stats.plan_misses == 1
        server.execute("CREATE TABLE u (x INTEGER)")  # bumps the generation
        server.explain("SELECT b FROM t WHERE a = 1")
        assert server.pipeline.stats.plan_misses == 2


# -- dual-plan divergence oracle -------------------------------------------


def _plan_bug() -> FaultSpec:
    return FaultSpec(
        fault_id="PLAN-1",
        description="compiled plan filter drops the last row",
        trigger=AlwaysTrigger(),
        effect=PlanStageBugEffect(),
    )


class TestDualPlanOracle:
    def _serve(self, replica):
        server = DiverseServer(
            [replica], config=ServerConfig(adjudication="primary", dual_plan=True)
        )
        server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b CHAR(4))")
        for i in range(5):
            server.execute("INSERT INTO t (a, b) VALUES (?, ?)", (i, "x"))
        return server

    def test_clean_replica_has_zero_divergences(self):
        server = self._serve(make_interbase())
        result = server.execute("SELECT a, b FROM t WHERE a > 0 ORDER BY a")
        assert result.rows[0] == (1, "x   ")
        assert server.stats.dual_plan_checks > 0
        assert server.stats.dual_plan_divergences == 0
        assert server.dual_plan_log == []

    def test_planner_level_fault_is_flagged(self):
        replica = make_interbase()
        replica.seed_fault(_plan_bug())
        server = self._serve(replica)
        result = server.execute("SELECT a, b FROM t WHERE a > 0 ORDER BY a")
        assert server.stats.dual_plan_divergences == 1
        assert server.dual_plan_log == [
            ("SELECT a, b FROM t WHERE a > 0 ORDER BY a", "IB")
        ]
        assert any("dual-plan divergence" in w for w in result.warnings)

    def test_oracle_is_off_by_default(self):
        server = DiverseServer([make_interbase(), make_postgres()])
        server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        server.execute("INSERT INTO t (a) VALUES (1)")
        server.execute("SELECT a FROM t")
        assert server.stats.dual_plan_checks == 0

    def test_use_planner_kill_switch(self):
        engine = _engine()
        engine.use_planner = False
        engine._plans.clear()
        engine.execute("SELECT owner FROM accounts WHERE id = 1")
        assert not engine._plans  # walker path compiles nothing
