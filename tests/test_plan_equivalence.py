"""Property test: compiled-plan execution equals the tree-walker.

The planner's contract is observational equivalence: for every
statement — planned, runtime-fallback, or unplanned — the compiled path
must produce the same rows, the same column names, and the same errors
(message included) as the reference tree-walker.  Row order is compared
exactly when the static analyzer proves the order deterministic
(:class:`~repro.analysis.OrderVerdict`), and as a multiset when the
standard leaves the order to the product.

Two generators drive the check on all four simulated products: the
full 181-bug corpus (every statement shape the study exercises) and
randomly generated (sqlgen-style) scripts biased toward the planner's
rewrite triggers — constant-foldable predicates, pushable join
conjuncts, unique-key point lookups, and DML that stresses the
storage-level unique indexes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ScriptSchema, analyze_statement
from repro.bugs import build_corpus
from repro.errors import ReproError
from repro.servers import make_server
from repro.sqlengine.analysis import extract_traits
from repro.sqlengine.parser import parse_statement
from repro.study.runner import split_statements

CORPUS = build_corpus()
KEYS = ("IB", "PG", "OR", "MS")


def _observe(script: list[str], key: str, use_planner: bool) -> list[tuple]:
    """Statement-by-statement outcomes on a pristine product, with
    SELECT rows normalized per the statement's order verdict."""
    server = make_server(key)
    server.engine.use_planner = use_planner
    schema = ScriptSchema()
    outcomes: list[tuple] = []
    for sql in script:
        stmt = parse_statement(sql)
        verdict = analyze_statement(stmt, schema, traits=extract_traits(stmt))
        try:
            result = server.execute(sql)
        except ReproError as error:
            outcomes.append(("error", type(error).__name__, str(error)))
        else:
            if result.kind == "select":
                rows = list(result.rows)
                if verdict.multiset_comparable:
                    rows = sorted(rows, key=repr)
                outcomes.append(("rows", tuple(result.columns), tuple(rows)))
            else:
                outcomes.append((result.kind, result.rowcount))
        schema.observe(stmt)
    return outcomes


# -- corpus scripts --------------------------------------------------------


@given(
    index=st.integers(min_value=0, max_value=len(CORPUS) - 1),
    key=st.sampled_from(KEYS),
)
@settings(max_examples=60, deadline=None)
def test_corpus_scripts_planned_equals_walker(index, key):
    script = split_statements(CORPUS.reports[index].script)
    assert _observe(script, key, True) == _observe(script, key, False)


# -- generated (sqlgen-style) scripts --------------------------------------

NAMES = ("alpha", "beta", "gamma", "delta")

_PREDICATES = (
    "qty > {n}",
    "qty > {n} + 1",  # constant folding
    "id = {n}",  # index selection point lookup
    "name LIKE 'a%'",
    "qty BETWEEN {n} AND {m}",
    "qty IS NULL",
    "name IN ('alpha', 'gamma')",
    "qty * 2 >= {m} OR name = 'beta'",
    "NOT (qty < {n})",
)

_SELECTS = (
    "SELECT name, qty FROM gen WHERE {pred} ORDER BY id",
    "SELECT name FROM gen WHERE {pred}",  # unordered: multiset compare
    "SELECT name, COUNT(*), SUM(qty) FROM gen GROUP BY name ORDER BY name",
    "SELECT DISTINCT name FROM gen",
    "SELECT name FROM gen WHERE {pred} ORDER BY qty DESC LIMIT 3",
    "SELECT gen.name, aux.tag FROM gen, aux "
    "WHERE gen.id = aux.ref AND {pred}",  # predicate pushdown
    "SELECT CASE WHEN qty IS NULL THEN 'none' ELSE 'some' END FROM gen "
    "ORDER BY id",
)

_WRITES = (
    "UPDATE gen SET qty = qty + 1 WHERE {pred}",
    "UPDATE gen SET name = 'omega' WHERE id = {n}",  # indexed point update
    "UPDATE gen SET id = {m} WHERE id = {n}",  # may hit the unique index
    "DELETE FROM gen WHERE {pred}",
    "INSERT INTO gen (id, name, qty, price) VALUES ({m}, 'new', {n}, 1.50)",
)


@st.composite
def _scripts(draw) -> list[str]:
    statements = [
        "CREATE TABLE gen (id INTEGER PRIMARY KEY, name VARCHAR(8), "
        "qty INTEGER, price NUMERIC(6,2))",
        "CREATE TABLE aux (ref INTEGER PRIMARY KEY, tag VARCHAR(8))",
    ]
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 12),
                st.sampled_from(NAMES),
                st.one_of(st.none(), st.integers(-5, 50)),
            ),
            min_size=0,
            max_size=6,
            unique_by=lambda r: r[0],
        )
    )
    for row_id, name, qty in rows:
        qty_sql = "NULL" if qty is None else str(qty)
        statements.append(
            f"INSERT INTO gen (id, name, qty, price) "
            f"VALUES ({row_id}, '{name}', {qty_sql}, {(row_id % 7) + 0.25:.2f})"
        )
    for ref in {row_id % 5 for row_id, _, _ in rows}:
        statements.append(f"INSERT INTO aux (ref, tag) VALUES ({ref}, 'tag{ref}')")

    def fill(template: str) -> str:
        return template.format(
            pred=draw(st.sampled_from(_PREDICATES)).format(
                n=draw(st.integers(-2, 14)), m=draw(st.integers(-2, 14))
            ),
            n=draw(st.integers(-2, 14)),
            m=draw(st.integers(-2, 14)),
        )

    for _ in range(draw(st.integers(2, 6))):
        template = draw(
            st.sampled_from(_SELECTS + _WRITES + _SELECTS)  # bias toward reads
        )
        statements.append(fill(template))
    statements.append("SELECT id, name, qty, price FROM gen ORDER BY id")
    return statements


@given(script=_scripts(), key=st.sampled_from(KEYS))
@settings(max_examples=40, deadline=None)
def test_generated_scripts_planned_equals_walker(script, key):
    assert _observe(script, key, True) == _observe(script, key, False)
