"""Property-based tests (hypothesis) on core invariants."""

from decimal import Decimal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects.translator import render_tokens
from repro.middleware.normalizer import normalize_value
from repro.sqlengine import Engine
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import TokenKind
from repro.sqlengine.values import (
    distinct_key,
    like_match,
    sql_add,
    sql_compare,
    sql_mul,
    tri_and,
    tri_not,
    tri_or,
)

tribool = st.sampled_from([True, False, None])

sql_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.decimals(allow_nan=False, allow_infinity=False, places=4,
                min_value=-10**6, max_value=10**6),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
        max_size=12,
    ),
)

numbers = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.decimals(allow_nan=False, allow_infinity=False, places=4,
                min_value=-10**4, max_value=10**4),
)


class TestTriboolAlgebra:
    @given(a=tribool, b=tribool)
    def test_commutativity(self, a, b):
        assert tri_and(a, b) == tri_and(b, a)
        assert tri_or(a, b) == tri_or(b, a)

    @given(a=tribool, b=tribool, c=tribool)
    def test_associativity(self, a, b, c):
        assert tri_and(tri_and(a, b), c) == tri_and(a, tri_and(b, c))
        assert tri_or(tri_or(a, b), c) == tri_or(a, tri_or(b, c))

    @given(a=tribool, b=tribool)
    def test_de_morgan(self, a, b):
        assert tri_not(tri_and(a, b)) == tri_or(tri_not(a), tri_not(b))

    @given(a=tribool)
    def test_double_negation(self, a):
        assert tri_not(tri_not(a)) == a


class TestComparisonProperties:
    @given(a=numbers, b=numbers)
    def test_antisymmetry(self, a, b):
        left = sql_compare(a, b)
        right = sql_compare(b, a)
        assert left == -right

    @given(a=numbers, b=numbers, c=numbers)
    def test_transitivity(self, a, b, c):
        if sql_compare(a, b) <= 0 and sql_compare(b, c) <= 0:
            assert sql_compare(a, c) <= 0

    @given(a=numbers)
    def test_reflexivity(self, a):
        assert sql_compare(a, a) == 0

    @given(a=sql_scalars)
    def test_null_comparisons_unknown(self, a):
        assert sql_compare(None, a) is None
        assert sql_compare(a, None) is None

    @given(a=numbers, b=numbers)
    def test_distinct_key_consistent_with_compare(self, a, b):
        if sql_compare(a, b) == 0:
            assert distinct_key(a) == distinct_key(b)
        else:
            assert distinct_key(a) != distinct_key(b)

    @given(a=numbers, b=numbers)
    def test_arithmetic_commutativity(self, a, b):
        assert sql_compare(sql_add(a, b), sql_add(b, a)) == 0
        assert sql_compare(sql_mul(a, b), sql_mul(b, a)) == 0


class TestNormalizerProperties:
    @given(a=sql_scalars)
    def test_idempotence_of_equality(self, a):
        assert normalize_value(a) == normalize_value(a)

    @given(a=st.integers(min_value=-10**9, max_value=10**9))
    def test_int_decimal_representations_collide(self, a):
        assert normalize_value(a) == normalize_value(Decimal(a))
        assert normalize_value(a) == normalize_value(Decimal(a) * Decimal("1.00"))

    @given(text=st.text(max_size=10), pad=st.integers(min_value=0, max_value=5))
    def test_trailing_padding_insignificant(self, text, pad):
        assert normalize_value(text) == normalize_value(text + " " * pad)

    @given(a=numbers, b=numbers)
    def test_distinct_numbers_stay_distinct(self, a, b):
        if sql_compare(a, b) != 0:
            assert normalize_value(a) != normalize_value(b)


class TestLexerProperties:
    @given(text=st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"),
                               whitelist_characters=" '_", max_codepoint=0x7F),
        max_size=30,
    ))
    def test_string_literal_roundtrip(self, text):
        escaped = text.replace("'", "''")
        token = tokenize(f"'{escaped}'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == text

    @given(n=st.integers(min_value=0, max_value=10**12))
    def test_integer_roundtrip(self, n):
        token = tokenize(str(n))[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == str(n)

    @given(sql=st.sampled_from([
        "SELECT a, b FROM t WHERE a >= 1 AND b <> 'x'",
        "INSERT INTO t (a) VALUES (1.5), (2e3)",
        "CREATE TABLE t (a INTEGER DEFAULT 'x''y')",
        "UPDATE t SET a = a || '-' WHERE a LIKE '%z%'",
    ]))
    def test_render_tokenize_fixpoint(self, sql):
        """render(tokenize(x)) is a fixpoint under re-tokenisation."""
        rendered = render_tokens(tokenize(sql))
        again = render_tokens(tokenize(rendered))
        assert rendered == again


class TestLikeProperties:
    @given(text=st.text(alphabet="abc%_", max_size=8))
    def test_percent_matches_everything(self, text):
        assert like_match(text, "%") is True

    @given(text=st.text(alphabet="abcxyz", min_size=1, max_size=8))
    def test_exact_pattern_matches_itself(self, text):
        assert like_match(text, text) is True

    @given(text=st.text(alphabet="abcxyz", min_size=1, max_size=8))
    def test_underscores_match_by_length(self, text):
        assert like_match(text, "_" * len(text)) is True
        assert like_match(text, "_" * (len(text) + 1)) is False


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=1, max_size=12))
    def test_order_by_sorts(self, values):
        engine = Engine("prop")
        engine.execute("CREATE TABLE t (a INTEGER)")
        for value in values:
            engine.execute(f"INSERT INTO t VALUES ({value})")
        result = engine.execute("SELECT a FROM t ORDER BY a")
        assert [r[0] for r in result.rows] == sorted(values)

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(min_value=-20, max_value=20),
                           min_size=1, max_size=12))
    def test_distinct_matches_set_semantics(self, values):
        engine = Engine("prop")
        engine.execute("CREATE TABLE t (a INTEGER)")
        for value in values:
            engine.execute(f"INSERT INTO t VALUES ({value})")
        result = engine.execute("SELECT DISTINCT a FROM t")
        assert sorted(r[0] for r in result.rows) == sorted(set(values))

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(min_value=-1000, max_value=1000),
                           min_size=1, max_size=12))
    def test_aggregates_match_python(self, values):
        engine = Engine("prop")
        engine.execute("CREATE TABLE t (a INTEGER)")
        for value in values:
            engine.execute(f"INSERT INTO t VALUES ({value})")
        result = engine.execute("SELECT COUNT(*), SUM(a), MIN(a), MAX(a) FROM t")
        count, total, low, high = result.rows[0]
        assert (count, total, low, high) == (
            len(values), sum(values), min(values), max(values),
        )

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.integers(min_value=0, max_value=50),
                           min_size=1, max_size=10))
    def test_rollback_is_identity(self, values):
        engine = Engine("prop")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("INSERT INTO t VALUES (999)")
        before = engine.execute("SELECT a FROM t ORDER BY a").rows
        engine.execute("BEGIN")
        for value in values:
            engine.execute(f"INSERT INTO t VALUES ({value})")
        engine.execute("UPDATE t SET a = a + 1")
        engine.execute("DELETE FROM t WHERE a > 500")
        engine.execute("ROLLBACK")
        after = engine.execute("SELECT a FROM t ORDER BY a").rows
        assert before == after

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_union_is_idempotent(self, seed):
        engine = Engine("prop")
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute(f"INSERT INTO t VALUES ({seed % 7}), ({seed % 11}), ({seed % 13})")
        single = engine.execute("SELECT a FROM t UNION SELECT a FROM t ORDER BY a").rows
        distinct = engine.execute("SELECT DISTINCT a FROM t ORDER BY a").rows
        assert single == distinct
