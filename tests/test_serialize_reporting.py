"""Serialisation, reporting, availability-model, and monitor-mode tests."""

import json

import pytest

from repro.bugs.serialize import (
    corpus_to_dict,
    corpus_to_json,
    study_to_dict,
    summarise_corpus,
)
from repro.reliability.availability import (
    ReplicaAvailability,
    improvement_summary,
    k_of_n_availability,
    nines,
    service_availability,
)
from repro.study.reporting import study_report_markdown


class TestCorpusSerialisation:
    def test_roundtrip_counts(self, corpus):
        data = json.loads(corpus_to_json(corpus))
        summary = summarise_corpus(data)
        assert summary["total"] == 181
        assert summary["per_server"] == {"IB": 55, "PG": 57, "OR": 18, "MS": 51}
        assert summary["coincident"] == 12
        assert summary["heisenbugs"] == 29
        # 152 home-failing + 56775 failing only abroad.
        assert summary["failing_somewhere"] == 153

    def test_report_fields_complete(self, corpus):
        data = corpus_to_dict(corpus)
        entry = next(r for r in data["reports"] if r["bug_id"] == "MS-58544")
        assert entry["home_failure"]["kind"] == "incorrect_result"
        assert entry["foreign_failures"]["IB"]["detectability"] == "non_self_evident"
        assert entry["identical_with"] == ["IB"]
        assert "LEFT OUTER JOIN" in entry["script"]

    def test_heisenbug_serialised_without_home_failure(self, corpus):
        data = corpus_to_dict(corpus)
        entry = next(r for r in data["reports"] if r["bug_id"] == "MS-56775")
        assert entry["home_failure"] is None
        assert entry["heisenbug"] is True

    def test_study_serialisation(self, study):
        data = study_to_dict(study)
        assert len(data["cells"]) == 181 * 4
        failures = [c for c in data["cells"] if c["outcome"] == "failure"]
        assert len(failures) == 152 + 13  # home + foreign manifestations
        sample = next(c for c in failures if c["bug_id"] == "PG-43" and c["server"] == "PG")
        assert sample["failure_kind"] == "incorrect_result"
        assert "PG-43" in sample["fired_faults"]


class TestStudyReport:
    def test_report_contains_all_tables(self, study):
        report = study_report_markdown(study)
        assert "## Table 1" in report
        assert "## Table 2" in report
        assert "## Table 3" in report
        assert "## Table 4" in report
        assert "64.5%" in report
        assert "17.1%" in report
        assert "MS-56775" in report

    def test_report_flags_documented_deviations(self, study):
        report = study_report_markdown(study)
        assert report.count("documented deviation") == 3


class TestAvailabilityModel:
    def test_single_replica_formula(self):
        replica = ReplicaAvailability(failure_rate=1.0, repair_rate=999.0)
        assert replica.availability == pytest.approx(0.999)

    def test_any_policy_multiplies_unavailability(self):
        replica = ReplicaAvailability(1.0, 999.0)
        pair = service_availability([replica, replica], policy="any")
        assert 1 - pair == pytest.approx((1 - replica.availability) ** 2)

    def test_lockstep_worse_than_single(self):
        replica = ReplicaAvailability(1.0, 999.0)
        lockstep = service_availability([replica, replica], policy="all")
        assert lockstep < replica.availability

    def test_majority_of_three(self):
        replica = ReplicaAvailability(1.0, 99.0)  # 0.99
        a = replica.availability
        expected = a**3 + 3 * a**2 * (1 - a)
        assert service_availability([replica] * 3, policy="majority") == pytest.approx(
            expected
        )

    def test_k_of_n_bounds(self):
        replicas = [ReplicaAvailability(1.0, 9.0)] * 4
        values = [k_of_n_availability(replicas, k) for k in range(1, 5)]
        assert values == sorted(values, reverse=True)
        with pytest.raises(ValueError):
            k_of_n_availability(replicas, 0)

    def test_nines(self):
        assert nines(0.999) == pytest.approx(3.0)
        assert nines(0.0) == 0.0

    def test_improvement_summary_shape(self):
        single = ReplicaAvailability(1.0, 999.0)
        summary = improvement_summary(single, [single, single])
        assert summary["diverse_any"] > summary["single"] > summary["diverse_lockstep"]

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            ReplicaAvailability(-1.0, 1.0)
        with pytest.raises(ValueError):
            ReplicaAvailability(1.0, 0.0)


class TestMonitorMode:
    def test_monitor_logs_but_never_interrupts(self):
        from repro.faults import FaultSpec, RelationTrigger, RowDropEffect
        from repro.middleware import DiverseServer
        from repro.servers import make_server

        fault = FaultSpec(
            "F-MON", "wrong rows",
            RelationTrigger(["t"], kind="select"), RowDropEffect(keep_one_in=2),
        )
        server = DiverseServer(
            [make_server("IB", [fault]), make_server("OR"), make_server("MS")],
            adjudication="monitor",
            auto_recover=False,
        )
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1), (2)")
        result = server.execute("SELECT a FROM t ORDER BY a")
        assert len(result.rows) == 2  # majority answer served
        assert server.disagreement_log
        assert server.stats.disagreements_detected == 1
        # Monitor mode does not suspect replicas.
        assert all(r.state.value == "active" for r in server.replicas)
