"""Four-version configuration and determinism tests."""

import pytest

from repro.faults import FaultSpec, RelationTrigger, RowDropEffect
from repro.middleware import DiverseServer, ReplicaState
from repro.servers import make_all_servers, make_server


def wrong_rows(fault_id="F4"):
    return FaultSpec(
        fault_id, "wrong rows",
        RelationTrigger(["t"], kind="select"), RowDropEffect(keep_one_in=2),
    )


def setup_four(faults_by_server=None):
    faults_by_server = faults_by_server or {}
    server = DiverseServer(
        [make_server(key, faults_by_server.get(key, [])) for key in ("IB", "PG", "OR", "MS")],
        adjudication="majority",
        auto_recover=False,
    )
    server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10))")
    server.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return server


class TestFourVersions:
    def test_healthy_quad(self):
        server = setup_four()
        result = server.execute("SELECT a FROM t ORDER BY a")
        assert len(result.rows) == 3
        assert server.verify_consistency() == {}

    def test_one_faulty_masked_three_to_one(self):
        server = setup_four({"PG": [wrong_rows()]})
        result = server.execute("SELECT a, b FROM t ORDER BY a")
        assert len(result.rows) == 3
        assert server.stats.failures_masked == 1
        assert server.replica("PG").state is ReplicaState.SUSPECTED

    def test_two_identical_faulty_is_a_tie(self):
        # 2-2 split: no strict majority -> adjudication failure, the
        # "most pessimistic fault-tolerant configuration" failing safe.
        from repro.errors import AdjudicationFailure

        server = setup_four({"PG": [wrong_rows("F-PG")], "MS": [wrong_rows("F-MS")]})
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT a, b FROM t ORDER BY a")

    def test_two_differing_faulty_still_masked(self):
        # Two wrong replicas with *different* wrong answers: the two
        # correct replicas still form the largest group but not a
        # strict majority (2 of 4) -> fail safe.
        from repro.errors import AdjudicationFailure

        different = FaultSpec(
            "F-DIFF", "different wrong rows",
            RelationTrigger(["t"], kind="select"), RowDropEffect(keep_one_in=3),
        )
        server = setup_four({"PG": [wrong_rows("F-PG")], "MS": [different]})
        with pytest.raises(AdjudicationFailure):
            server.execute("SELECT a, b FROM t ORDER BY a")

    def test_quad_survives_double_crash(self):
        from repro.faults import CrashEffect

        def crash(fid):
            return FaultSpec(
                fid, "crash", RelationTrigger(["t"], kind="select"), CrashEffect()
            )
        server = setup_four({"PG": [crash("C1")], "OR": [crash("C2")]})
        result = server.execute("SELECT a FROM t ORDER BY a")
        assert len(result.rows) == 3
        assert server.stats.replica_crashes == 2
        assert server.availability() == pytest.approx(0.5)


class TestDeterminism:
    def test_study_is_seed_stable(self, corpus):
        from repro.study import run_study
        from repro.bugs.serialize import study_to_dict

        first = study_to_dict(run_study(corpus))
        second = study_to_dict(run_study(corpus))
        assert first == second

    def test_all_servers_factory_independent_instances(self):
        one = make_all_servers()
        two = make_all_servers()
        one["IB"].execute("CREATE TABLE only_one (a INTEGER)")
        assert not two["IB"].engine.catalog.has_table("only_one")
