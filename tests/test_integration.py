"""End-to-end integration scenarios spanning multiple subsystems."""


from repro.bugs import build_corpus
from repro.errors import AdjudicationFailure
from repro.middleware import DiverseServer
from repro.servers import make_server
from repro.study.runner import StudyRunner, run_script


class TestNotableBugsEndToEnd:
    """Each Section-5 bug behaves as the paper describes, end to end."""

    def test_223512_drop_table_on_view(self, corpus):
        report = corpus.get("IB-223512")
        faulty = make_server("IB", corpus.faults_for("IB"))
        outcome = run_script(faulty, report.script)
        # The final DROP TABLE succeeded on the faulty server...
        assert outcome.statements[-1].status == "ok"
        # ...while a pristine server rejects it.
        pristine = make_server("IB")
        oracle = run_script(pristine, report.script)
        assert oracle.statements[-1].status == "error"

    def test_217042_default_detected_with_high_latency(self, corpus):
        report = corpus.get("IB-217042")
        faulty = make_server("MS", corpus.faults_for("MS"))
        from repro.dialects import translate_script

        outcome = run_script(faulty, translate_script(report.script, "MS"))
        # CREATE succeeds (the bug); the later INSERT errs (the latency).
        assert outcome.statements[0].status == "ok"
        assert outcome.statements[1].status == "error"

    def test_222476_empty_field_names(self, corpus):
        report = corpus.get("IB-222476")
        faulty = make_server("IB", corpus.faults_for("IB"))
        outcome = run_script(faulty, report.script)
        final = outcome.statements[-1]
        assert final.status == "ok"
        assert final.columns == ("", "")
        # Values are still correct — only the names are lost.
        pristine = run_script(make_server("IB"), report.script)
        assert final.rows == pristine.statements[-1].rows

    def test_pg43_different_failure_patterns(self, corpus):
        report = corpus.get("PG-43")
        pg = make_server("PG", corpus.faults_for("PG"))
        ms = make_server("MS", corpus.faults_for("MS"))
        from repro.dialects import translate_script

        pg_out = run_script(pg, report.script)
        ms_out = run_script(ms, translate_script(report.script, "MS"))
        pg_err = [s.error for s in pg_out.statements if s.status == "error"]
        ms_err = [s.error for s in ms_out.statements if s.status == "error"]
        assert pg_err and ms_err
        assert pg_err != ms_err  # "the two servers fail with different patterns"

    def test_58544_identical_wrong_rows(self, corpus):
        report = corpus.get("MS-58544")
        from repro.dialects import translate_script

        ms = make_server("MS", corpus.faults_for("MS"))
        ib = make_server("IB", corpus.faults_for("IB"))
        ms_out = run_script(ms, report.script)
        ib_out = run_script(ib, translate_script(report.script, "IB"))
        assert ms_out.statements[-1].rows == ib_out.statements[-1].rows
        pristine = run_script(make_server("MS"), report.script)
        assert ms_out.statements[-1].rows != pristine.statements[-1].rows

    def test_clustered_scripts_fail_pg_at_index_creation(self, corpus):
        from repro.dialects import translate_script

        pg = make_server("PG", corpus.faults_for("PG"))
        report = corpus.get("MS-54428")
        outcome = run_script(pg, translate_script(report.script, "PG"))
        statuses = [s.status for s in outcome.statements]
        # The CREATE CLUSTERED INDEX statement (index 5) errors...
        assert statuses[5] == "error"
        # ..."at the beginning of the bug script", before the probe query.
        pg.reset()


class TestDiverseServerToleratesCorpusBugs:
    """The middleware the paper motivates, facing the actual corpus bug:
    a diverse pair detects what a non-diverse pair cannot."""

    def test_diverse_pair_detects_58544(self, corpus):
        report = corpus.get("MS-58544")
        server = DiverseServer(
            [
                make_server("MS", corpus.faults_for("MS")),
                make_server("OR", corpus.faults_for("OR")),
            ],
            adjudication="compare",
            auto_recover=False,
        )
        detected = False
        for statement in report.script.rstrip(";").split(";\n"):
            try:
                server.execute(statement)
            except AdjudicationFailure:
                detected = True
        assert detected  # OR answers correctly; MS's wrong rows disagree

    def test_nondetectable_pair_slips_through(self, corpus):
        # IB+MS share bug 58544's behaviour: identical wrong answers agree.
        report = corpus.get("MS-58544")
        server = DiverseServer(
            [
                make_server("IB", corpus.faults_for("IB")),
                make_server("MS", corpus.faults_for("MS")),
            ],
            adjudication="compare",
            auto_recover=False,
        )
        for statement in report.script.rstrip(";").split(";\n"):
            server.execute(statement)  # no AdjudicationFailure raised
        assert server.stats.disagreements_detected == 0

    def test_triple_masks_58544(self, corpus):
        report = corpus.get("MS-58544")
        server = DiverseServer(
            [
                make_server("MS", corpus.faults_for("MS")),
                make_server("OR", corpus.faults_for("OR")),
                make_server("IB", []),  # pristine third opinion
            ],
            adjudication="majority",
            auto_recover=False,
        )
        for statement in report.script.rstrip(";").split(";\n"):
            server.execute(statement)
        assert server.stats.failures_masked >= 1


class TestStudyRunnerPieces:
    def test_run_cell_dialect_gating(self, corpus):
        runner = StudyRunner(corpus)
        report = corpus.get("OR-1059835")  # fn.MOD: PG+OR only
        from repro.study import OutcomeKind

        assert runner.run_cell(report, "IB").kind is OutcomeKind.CANNOT_RUN
        assert runner.run_cell(report, "MS").kind is OutcomeKind.CANNOT_RUN
        assert runner.run_cell(report, "PG").failed
        assert runner.run_cell(report, "OR").failed

    def test_run_cell_further_work(self, corpus):
        runner = StudyRunner(corpus)
        from repro.study import OutcomeKind

        pending = next(r for r in corpus if r.translation_pending)
        target = next(iter(pending.translation_pending))
        assert runner.run_cell(pending, target).kind is OutcomeKind.FURTHER_WORK

    def test_corpus_rebuild_and_rerun_is_stable(self):
        corpus_a = build_corpus()
        corpus_b = build_corpus()
        runner_a = StudyRunner(corpus_a)
        runner_b = StudyRunner(corpus_b)
        report_a = corpus_a.get("PG-77")
        report_b = corpus_b.get("PG-77")
        cell_a = runner_a.run_cell(report_a, "MS")
        cell_b = runner_b.run_cell(report_b, "MS")
        assert cell_a.failure_kind == cell_b.failure_kind
        assert cell_a.faulty.signature() == cell_b.faulty.signature()
