"""Property tests: backward slices preserve the sliced query's answer.

The slicer's contract is semantic, not syntactic: executing the
backward slice of a script's final SELECT on a clean engine must yield
exactly the result the full script yields for that SELECT.  Two
generators drive it — the shipped bug corpus (every statement shape the
study exercises) and a composite strategy building random
CREATE/INSERT/UPDATE/DELETE/SELECT scripts from the scalar pools the
other property suites use."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import build_graph
from repro.bugs import build_corpus
from repro.dialects import dialect
from repro.servers.product import ServerProduct
from repro.sqlengine.parser import parse_statement
from repro.study.runner import run_script, split_statements

CORPUS = build_corpus()


def final_select_index(statements):
    for index in range(len(statements) - 1, -1, -1):
        kind = type(parse_statement(statements[index])).__name__
        if kind == "SelectStatement":
            return index
    return None


def outcome_of(server_key, sql, position):
    server = ServerProduct(dialect(server_key))
    outcome = run_script(server, sql)
    if position >= len(outcome.statements):
        return None  # crash cut the run short of the target
    return outcome.statements[position].signature()


@given(index=st.integers(min_value=0, max_value=len(CORPUS) - 1))
@settings(max_examples=60, deadline=None)
def test_corpus_final_select_slice_preserves_result(index):
    report = CORPUS.reports[index]
    statements = split_statements(report.script)
    target = final_select_index(statements)
    assume(target is not None)

    graph = build_graph(report.script)
    kept = graph.backward_slice([target])
    sliced_sql = ";\n".join(statements[i] for i in kept) + ";"

    full = outcome_of(report.reported_for, report.script, target)
    reduced = outcome_of(report.reported_for, sliced_sql, kept.index(target))
    assert reduced == full, report.bug_id


# -- generated scripts -----------------------------------------------------

_VALUES = st.integers(min_value=-9, max_value=9)


@st.composite
def scripts(draw):
    """A random multi-table script ending in a deterministic SELECT."""
    statements = []
    tables = []
    for t in range(draw(st.integers(min_value=1, max_value=3))):
        name = f"t{t}"
        width = draw(st.integers(min_value=1, max_value=3))
        columns = [f"c{i}" for i in range(width)]
        spec = ", ".join(f"{c} INTEGER" for c in columns)
        statements.append(
            f"CREATE TABLE {name} (id INTEGER PRIMARY KEY, {spec})"
        )
        tables.append((name, columns))
        for row in range(draw(st.integers(min_value=0, max_value=3))):
            values = ", ".join(str(draw(_VALUES)) for _ in columns)
            statements.append(
                f"INSERT INTO {name} (id, {', '.join(columns)}) "
                f"VALUES ({row}, {values})"
            )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        name, columns = draw(st.sampled_from(tables))
        column = draw(st.sampled_from(columns))
        if draw(st.booleans()):
            statements.append(
                f"UPDATE {name} SET {column} = {column} + {draw(_VALUES)} "
                f"WHERE id >= {draw(_VALUES)}"
            )
        else:
            statements.append(f"DELETE FROM {name} WHERE {column} > {draw(_VALUES)}")
    name, columns = draw(st.sampled_from(tables))
    statements.append(
        f"SELECT id, {', '.join(columns)} FROM {name} "
        f"WHERE {columns[0]} >= {draw(_VALUES)} ORDER BY id"
    )
    return ";\n".join(statements) + ";"


@given(script=scripts())
@settings(max_examples=60, deadline=None)
def test_generated_final_select_slice_preserves_result(script):
    statements = split_statements(script)
    target = len(statements) - 1

    kept = build_graph(script).backward_slice([target])
    sliced_sql = ";\n".join(statements[i] for i in kept) + ";"

    full = outcome_of("PG", script, target)
    reduced = outcome_of("PG", sliced_sql, kept.index(target))
    assert reduced == full, script
