"""Replica supervision subsystem tests: quarantine, backoff, circuit
breaker, checkpointed recovery, and graceful degradation."""

import pytest

from repro.errors import MiddlewareError, NoReplicasAvailable
from repro.faults import (
    CrashEffect,
    FaultSpec,
    RecoveryTrigger,
    SqlPatternTrigger,
)
from repro.faults.triggers import Trigger
from repro.middleware import (
    DiverseServer,
    ReplicaState,
    SupervisorPolicy,
    VirtualClock,
)
from repro.middleware.server import replicated_server
from repro.reliability import QuarantinePolicyModel
from repro.servers import make_interbase, make_server
from repro.workload import WorkloadRunner


class ToggleTrigger(Trigger):
    """Fires while ``enabled`` — lets a test turn a fault off."""

    def __init__(self, enabled=True):
        self.enabled = enabled

    def matches(self, ctx):
        return self.enabled


class CountdownTrigger(Trigger):
    """Fires on the first ``count`` matching statements only — a
    deterministic stand-in for a transient (Heisenbug) fault."""

    def __init__(self, inner, count=1):
        self.inner = inner
        self.remaining = count

    def matches(self, ctx):
        if self.remaining <= 0 or not self.inner.matches(ctx):
            return False
        self.remaining -= 1
        return True


def crash_on_accounts_select(trigger=None):
    return FaultSpec(
        "T-CRASH",
        "crashes on accounts selects",
        trigger or SqlPatternTrigger(r"SELECT.*FROM\s+accounts"),
        CrashEffect("scheduler deadlock"),
    )


def crash_during_recovery(trigger=None):
    return FaultSpec(
        "T-RELAPSE",
        "crashes while replaying the write log",
        trigger or RecoveryTrigger(),
        CrashEffect("recovery deadlock"),
    )


def triple(ib_faults=(), **kwargs):
    return DiverseServer(
        [make_server("IB", list(ib_faults)), make_server("OR"), make_server("MS")],
        adjudication="majority",
        **kwargs,
    )


def seed_accounts(server):
    server.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)")
    server.execute("INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 200)")
    return server


class TestVirtualClock:
    def test_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance() == 1.0
        assert clock.advance(2.5) == 3.5

    def test_never_backwards(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_one_tick_per_statement(self):
        server = seed_accounts(triple())
        before = server.clock.now
        server.execute("SELECT id FROM accounts")
        assert server.clock.now == before + 1.0


class TestStateMachine:
    def test_crash_quarantines_then_recovers_immediately(self):
        server = seed_accounts(triple([crash_on_accounts_select()]))
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        # The two healthy replicas answered; the crashed one was
        # quarantined and recovered in the same statement (no backoff on
        # the first attempt of an incident).
        assert [row[0] for row in result.rows] == [1, 2]
        ib = server.replica("IB")
        assert ib.state is ReplicaState.ACTIVE
        assert ib.health.quarantines == 1
        assert server.stats.quarantines == 1
        assert server.stats.recoveries == 1
        assert server.stats.replica_crashes == 1
        assert server.verify_consistency() == {}

    def test_transient_crash_saved_by_statement_retry(self):
        flaky = CountdownTrigger(SqlPatternTrigger(r"SELECT.*FROM\s+accounts"), count=1)
        server = seed_accounts(triple([crash_on_accounts_select(flaky)]))
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert [row[0] for row in result.rows] == [1, 2]
        # The retry answered, so the replica was never quarantined.
        assert server.replica("IB").state is ReplicaState.ACTIVE
        assert server.stats.statement_retries == 1
        assert server.stats.retries_saved == 1
        assert server.stats.quarantines == 0
        assert server.stats.recoveries == 0

    def test_legacy_mode_still_fails_replicas(self):
        server = seed_accounts(
            triple([crash_on_accounts_select()], auto_recover=False)
        )
        server.execute("SELECT id FROM accounts")
        ib = server.replica("IB")
        assert ib.state is ReplicaState.FAILED
        assert server.stats.quarantines == 0
        server.recover("IB")
        assert ib.state is ReplicaState.ACTIVE


class TestBackoffAndCircuitBreaker:
    def storm_server(self):
        serve = ToggleTrigger()
        relapse = ToggleTrigger()
        server = seed_accounts(
            triple(
                [
                    crash_on_accounts_select(
                        serve & SqlPatternTrigger(r"SELECT.*FROM\s+accounts")
                    ),
                    crash_during_recovery(relapse & RecoveryTrigger()),
                ]
            )
        )
        return server, serve, relapse

    def test_exponential_backoff_then_retirement(self):
        server, _, relapse = self.storm_server()
        server.execute("SELECT id FROM accounts")  # quarantine; replay crashes
        ib = server.replica("IB")
        assert ib.state is ReplicaState.QUARANTINED
        first_failure = ib.health.failure_times[0]
        # Drive statements the fault ignores; every tick retries due
        # recoveries, which all crash during replay until the circuit
        # breaker trips.
        for _ in range(16):
            server.execute("SELECT 1")
            if ib.state is ReplicaState.RETIRED:
                break
        assert ib.state is ReplicaState.RETIRED
        assert server.stats.retirements == 1
        # Failed attempts were spaced 1, 2, 4, 8 clock units apart.
        times = ib.health.failure_times
        assert [b - a for a, b in zip(times, times[1:])] == [1.0, 2.0, 4.0, 8.0]
        assert times[0] == first_failure
        assert server.stats.backoff_waits == 4
        # The client never saw a failure; service degraded but held.
        assert server.stats.degraded_statements > 0

    def test_retired_replica_needs_force(self):
        server, serve, relapse = self.storm_server()
        server.execute("SELECT id FROM accounts")
        for _ in range(16):
            server.execute("SELECT 1")
        ib = server.replica("IB")
        assert ib.state is ReplicaState.RETIRED
        with pytest.raises(MiddlewareError, match="force=True"):
            server.recover("IB")
        # Operator fixes the fault, then forces resurrection.
        serve.enabled = False
        relapse.enabled = False
        server.recover("IB", force=True)
        assert ib.state is ReplicaState.ACTIVE
        assert server.verify_consistency() == {}

    def test_attempt_budget_exhaustion_fails_replica(self):
        server = seed_accounts(
            triple(
                [crash_on_accounts_select(), crash_during_recovery()],
                policy=SupervisorPolicy(
                    max_recovery_attempts=3, circuit_threshold=100
                ),
            )
        )
        server.execute("SELECT id FROM accounts")
        ib = server.replica("IB")
        for _ in range(8):
            server.execute("SELECT 1")
            if ib.state is ReplicaState.FAILED:
                break
        assert ib.state is ReplicaState.FAILED
        assert server.stats.retirements == 0

    def test_backoff_delay_is_capped(self):
        policy = SupervisorPolicy(backoff_base=1.0, backoff_factor=2.0, backoff_cap=8.0)
        assert [policy.backoff_delay(n) for n in range(6)] == [
            0.0, 1.0, 2.0, 4.0, 8.0, 8.0,
        ]


class TestCheckpointing:
    def test_checkpoints_bound_replay_length(self):
        server = seed_accounts(
            triple(
                [crash_on_accounts_select()],
                policy=SupervisorPolicy(checkpoint_interval=4),
            )
        )
        for i in range(3, 20):
            server.execute(f"INSERT INTO accounts (id, balance) VALUES ({i}, {i * 10})")
        assert server.stats.checkpoints >= 2
        writes_logged = len(server.write_log)
        server.execute("SELECT id FROM accounts")  # crash + recover
        ib = server.replica("IB")
        assert ib.state is ReplicaState.ACTIVE
        assert server.stats.checkpoint_replays >= 1
        assert server.stats.full_replays == 0
        # Only the tail past the last checkpoint was replayed.
        assert max(ib.health.replay_lengths) <= 4
        assert max(ib.health.replay_lengths) < writes_logged
        assert server.verify_consistency() == {}

    def test_full_replay_without_checkpoints(self):
        server = seed_accounts(
            triple(
                [crash_on_accounts_select()],
                policy=SupervisorPolicy(checkpoint_interval=None),
            )
        )
        for i in range(3, 10):
            server.execute(f"INSERT INTO accounts (id, balance) VALUES ({i}, {i * 10})")
        server.execute("SELECT id FROM accounts")
        ib = server.replica("IB")
        assert ib.state is ReplicaState.ACTIVE
        assert server.stats.checkpoints == 0
        assert server.stats.full_replays >= 1
        # The whole history came back: both setup writes and the loop's.
        assert max(ib.health.replay_lengths) == len(server.write_log)
        assert server.verify_consistency() == {}

    def test_no_checkpoint_inside_open_transaction(self):
        server = seed_accounts(
            triple(policy=SupervisorPolicy(checkpoint_interval=2))
        )
        baseline = server.stats.checkpoints
        server.execute("BEGIN")
        for i in range(10, 16):
            server.execute(f"INSERT INTO accounts (id, balance) VALUES ({i}, 1)")
        # Interval long exceeded, but the snapshot must not land between
        # a BEGIN and its COMMIT in the write log.
        assert server.stats.checkpoints == baseline
        server.execute("COMMIT")
        assert server.stats.checkpoints > baseline


class TestGracefulDegradation:
    def test_majority_degrades_to_compare_then_primary(self):
        server = seed_accounts(triple())
        supervisor = server.supervisor
        assert supervisor.effective_adjudication("majority", 3, 3) == "majority"
        assert supervisor.effective_adjudication("majority", 2, 3) == "compare"
        assert supervisor.effective_adjudication("majority", 1, 3) == "primary"

    def test_quorum_capped_at_deployment_size(self):
        # A 2-replica majority deployment never had three voters, so a
        # full house is not "degraded".
        server = DiverseServer(
            [make_server("IB"), make_server("OR")], adjudication="majority"
        )
        assert server.supervisor.effective_adjudication("majority", 2, 2) == "majority"
        assert server.supervisor.effective_adjudication("majority", 1, 2) == "primary"

    def test_single_survivor_still_serves(self):
        server = seed_accounts(triple())
        server.replica("OR").state = ReplicaState.FAILED
        server.replica("MS").state = ReplicaState.FAILED
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert [row[0] for row in result.rows] == [1, 2]
        assert server.stats.degraded_statements >= 1
        assert server.stats.quorum_losses >= 1

    def test_total_loss_names_every_replica(self):
        server = seed_accounts(triple())
        for replica in server.replicas:
            replica.state = ReplicaState.FAILED
        with pytest.raises(NoReplicasAvailable) as excinfo:
            server.execute("SELECT id FROM accounts")
        message = str(excinfo.value)
        for key in ("IB", "OR", "MS"):
            assert key in message


class TestDeterminism:
    def run_storm(self):
        server = seed_accounts(triple([crash_on_accounts_select()]))
        for i in range(3, 12):
            server.execute(f"INSERT INTO accounts (id, balance) VALUES ({i}, 5)")
            server.execute("SELECT id FROM accounts ORDER BY id")
        return server

    def test_identical_runs_identical_stats(self):
        first = self.run_storm()
        second = self.run_storm()
        assert first.stats == second.stats
        assert first.clock.now == second.clock.now
        assert (
            first.replica("IB").health.replay_lengths
            == second.replica("IB").health.replay_lengths
        )


class TestWorkloadOutages:
    def test_single_replica_outage_is_counted(self):
        fault = FaultSpec(
            "T-STORM",
            "crashes on stock-level analysis queries",
            SqlPatternTrigger(r"COUNT\s*\(\s*DISTINCT\s+s_i_id"),
            CrashEffect("scheduler deadlock"),
        )
        server = DiverseServer([make_server("IB", [fault])], adjudication="primary")
        runner = WorkloadRunner(server, seed=3)
        runner.setup()
        metrics = runner.run(40)
        assert metrics.outages >= 1
        assert not metrics.failure_free

    def test_triple_absorbs_the_same_storm(self):
        fault = FaultSpec(
            "T-STORM",
            "crashes on stock-level analysis queries",
            SqlPatternTrigger(r"COUNT\s*\(\s*DISTINCT\s+s_i_id"),
            CrashEffect("scheduler deadlock"),
        )
        server = triple([fault])
        runner = WorkloadRunner(server, seed=3)
        runner.setup()
        metrics = runner.run(40)
        assert metrics.outages == 0
        assert metrics.crashes == 0
        assert server.stats.recoveries >= 1


class TestQuarantineModel:
    def test_certain_recovery(self):
        model = QuarantinePolicyModel(success_probability=1.0)
        assert model.retirement_probability == 0.0
        # First attempt is immediate and always succeeds: MTTR is one
        # attempt's replay cost.
        assert model.expected_repair_time() == pytest.approx(1.0)

    def test_repair_time_grows_as_success_shrinks(self):
        times = [
            QuarantinePolicyModel(success_probability=p).expected_repair_time()
            for p in (0.9, 0.5, 0.2)
        ]
        assert times == sorted(times)

    def test_retirement_probability(self):
        model = QuarantinePolicyModel(success_probability=0.5, max_attempts=3)
        assert model.retirement_probability == pytest.approx(0.125)

    def test_effective_replica_availability(self):
        model = QuarantinePolicyModel(success_probability=0.5)
        replica = model.effective_replica(failure_rate=0.001)
        assert 0.0 < replica.availability < 1.0
        mttr = model.expected_repair_time()
        assert replica.availability == pytest.approx(
            (1 / mttr) / (0.001 + 1 / mttr)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            QuarantinePolicyModel(success_probability=0.0)
        with pytest.raises(ValueError):
            QuarantinePolicyModel(success_probability=0.5, max_attempts=0)


class TestSatelliteFixes:
    def test_replicated_server_shares_init_path(self):
        server = replicated_server(make_interbase, count=3)
        assert server.supervised
        assert server.supervisor is not None
        assert len(server.replicas) == 3
        assert server.stats.statements == 0

    def test_duplicate_products_still_rejected(self):
        with pytest.raises(MiddlewareError, match="duplicate product"):
            DiverseServer([make_interbase(), make_interbase()])

    def test_verify_consistency_sees_extra_tables(self):
        server = seed_accounts(triple())
        # A table sneaks onto a non-reference replica behind the
        # middleware's back; the union-based audit must flag it.
        server.replicas[1].product.execute(
            "CREATE TABLE rogue (id INTEGER PRIMARY KEY)"
        )
        disagreements = server.verify_consistency()
        assert "rogue" in disagreements
