"""The served wire frontend: protocol, sessions, supervision, backpressure.

The acceptance bar for this layer is the exactly-once fault matrix at
the bottom of the file: every network fault effect crossed with every
statement class must leave the replicas byte-identical to a fault-free
run — no lost writes, no duplicated commits, no blind re-execution of
non-idempotent statements.
"""

import asyncio
import datetime
from decimal import Decimal

import pytest

from repro.errors import NetworkError
from repro.faults import (
    ConnectionResetEffect,
    CorruptFrameEffect,
    DelayFrameEffect,
    DropFrameEffect,
    DuplicateFrameEffect,
    FaultInjector,
    FaultSpec,
    PartitionEffect,
    ReorderFrameEffect,
    SqlPatternTrigger,
)
from repro.middleware import DiverseServer, SupervisorPolicy
from repro.net import (
    ClientPolicy,
    ConnectionLost,
    FrameCorrupt,
    FrameStream,
    NetClient,
    NetPolicy,
    NetServer,
    RetryUnsafe,
    SessionExpired,
    SessionSupervisor,
    SimulatedNetwork,
    decode_frame,
    encode_frame,
)
from repro.net import protocol
from repro.net.tcp import TcpNetServer
from repro.reliability import NetworkPolicyModel
from repro.servers import make_server
from repro.workload import WorkloadRunner, run_interleaved


def deployment(net_faults=(), net_policy=None, ib_faults=()):
    server = DiverseServer(
        [make_server("IB", list(ib_faults)), make_server("OR"), make_server("MS")],
        adjudication="majority",
    )
    net_server = NetServer(server, net_policy or NetPolicy(idle_deadline=100_000.0))
    injector = FaultInjector("net", list(net_faults)) if net_faults else None
    network = SimulatedNetwork(net_server, injector=injector)
    return server, net_server, network


def net_fault(name, pattern, effect):
    return FaultSpec(name, name, SqlPatternTrigger(pattern), effect)


SETUP = (
    "CREATE TABLE t (id INT PRIMARY KEY, v INT)",
    "INSERT INTO t VALUES (1, 10)",
    "INSERT INTO t VALUES (2, 20)",
)


def supervised(network, **policy_kwargs):
    policy_kwargs.setdefault("request_timeout", 8.0)
    return SessionSupervisor(network, policy=ClientPolicy(**policy_kwargs))


class TestFraming:
    def test_roundtrip_with_typed_values(self):
        message = {
            "type": "result",
            "rows": [[Decimal("1.25"), datetime.date(2004, 6, 28), None]],
        }
        frame = encode_frame(message)
        decoded = decode_frame(frame)
        from repro.net.protocol import decode_row

        assert tuple(decode_row(decoded["rows"][0])) == (
            Decimal("1.25"), datetime.date(2004, 6, 28), None,
        )

    def test_corrupt_payload_fails_crc(self):
        frame = bytearray(encode_frame({"type": "hello"}))
        frame[-1] ^= 0x40
        with pytest.raises(FrameCorrupt):
            decode_frame(bytes(frame))

    def test_stream_reassembles_arbitrary_chunking(self):
        stream = FrameStream()
        data = encode_frame({"type": "x", "a": 1}) + encode_frame({"type": "y"})
        messages = []
        for i in range(0, len(data), 3):
            messages.extend(stream.feed(data[i:i + 3]))
        assert [m["type"] for m in messages] == ["x", "y"]
        assert messages[0]["a"] == 1

    def test_stream_poisoned_after_corruption(self):
        stream = FrameStream()
        bad = bytearray(encode_frame({"type": "x"}))
        bad[-1] ^= 0x01
        with pytest.raises(FrameCorrupt):
            stream.feed(bytes(bad))
        with pytest.raises(FrameCorrupt):
            stream.feed(encode_frame({"type": "x"}))


class TestSessions:
    def test_duplicate_seq_answered_from_cache(self):
        _, net_server, network = deployment()
        port = network.connect()
        welcome = port.request(protocol.hello(), 8.0)
        session, token = welcome["session"], welcome["token"]
        first = port.request(
            protocol.execute(session, token, 1, SETUP[0]), 8.0
        )
        replay = port.request(
            protocol.execute(session, token, 1, SETUP[0]), 8.0
        )
        assert replay == first
        assert net_server.stats.duplicates_suppressed == 1
        # Executed exactly once: a second CREATE would be a SQL error.
        assert replay["type"] == "result"

    def test_seq_below_dedupe_window_is_a_gap(self):
        _, net_server, network = deployment(
            net_policy=NetPolicy(idle_deadline=100_000.0, dedupe_window=2)
        )
        port = network.connect()
        welcome = port.request(protocol.hello(), 8.0)
        session, token = welcome["session"], welcome["token"]
        for seq, sql in enumerate(SETUP, start=1):
            port.request(protocol.execute(session, token, seq, sql), 8.0)
        reply = port.request(protocol.execute(session, token, 1, SETUP[0]), 8.0)
        assert reply["type"] == "error"
        assert reply["code"] == protocol.ERR_SEQ_GAP
        assert net_server.stats.seq_gaps == 1

    def test_idle_expiry_rolls_back_open_transaction(self):
        server, net_server, network = deployment(
            net_policy=NetPolicy(idle_deadline=8.0)
        )
        port = network.connect()
        welcome = port.request(protocol.hello(), 8.0)
        session, token = welcome["session"], welcome["token"]
        for seq, sql in enumerate(SETUP, start=1):
            port.request(protocol.execute(session, token, seq, sql), 8.0)
        port.request(protocol.execute(session, token, 4, "BEGIN"), 8.0)
        port.request(
            protocol.execute(session, token, 5, "UPDATE t SET v = 99 WHERE id = 1"),
            8.0,
        )
        for _ in range(12):
            network.idle_tick()
        assert net_server.stats.sessions_expired == 1
        assert net_server.stats.rollbacks_on_expiry == 1
        fresh = supervised(network)
        rows = fresh.execute("SELECT v FROM t WHERE id = 1").rows
        assert rows == [(10,)] or rows == [[10]]

    def test_cross_session_ddl_invalidates_prepared_handles(self):
        # Satellite: a handle prepared in one session goes stale when a
        # *different* session commits DDL; next execute re-prepares.
        _, net_server, network = deployment()
        writer = supervised(network)
        for sql in SETUP:
            writer.execute(sql)
        handle = writer.prepare("SELECT v FROM t WHERE id = ?")
        assert handle.execute([1]).rows
        other = supervised(network)
        other.execute("CREATE INDEX t_v ON t (v)")
        assert net_server.stats.handles_invalidated >= 1
        refreshed_before = net_server.stats.handles_refreshed
        assert handle.execute([2]).rows
        assert net_server.stats.handles_refreshed > refreshed_before


class TestBackpressure:
    POLICY = NetPolicy(
        idle_deadline=100_000.0,
        queue_deadline=50_000.0,
        shed_compare_depth=2,
        shed_reject_depth=4,
        max_parked=6,
    )

    def _held_txn(self):
        _, net_server, network = deployment(net_policy=self.POLICY)
        holder = network.connect()
        welcome = holder.request(protocol.hello(), 8.0)
        session, token = welcome["session"], welcome["token"]
        seq = 0
        for sql in SETUP + ("BEGIN", "UPDATE t SET v = 11 WHERE id = 1"):
            seq += 1
            holder.request(protocol.execute(session, token, seq, sql), 8.0)
        return net_server, network, holder, session, token, seq

    def _flood(self, network, count):
        ports = []
        for index in range(count):
            port = network.connect()
            welcome = port.request(protocol.hello(), 8.0)
            port.send(protocol.execute(
                welcome["session"], welcome["token"], 1,
                f"INSERT INTO t VALUES ({300 + index}, {index})",
            ))
            ports.append(port)
        network.pump()
        return ports

    def test_ladder_parks_then_sheds_compares_then_rejects(self):
        net_server, network, holder, session, token, seq = self._held_txn()
        self._flood(network, 6)
        stats = net_server.stats
        assert stats.parked_statements == 4          # up to reject depth
        assert stats.shed_statements == 2            # the rest rejected
        # The holder's own read is served (not rejected) and sheds its
        # cross-replica compare under backlog.
        reply = holder.request(
            protocol.execute(session, token, seq + 1, "SELECT v FROM t WHERE id = 2"),
            8.0,
        )
        assert reply["type"] == "result"
        assert stats.shed_compares == 1
        # COMMIT is never rejected: it is what drains the queue.
        commit = holder.request(
            protocol.execute(session, token, seq + 2, "COMMIT"), 8.0
        )
        assert commit["type"] == "result"
        network.pump()
        assert len(net_server._parked) == 0

    def test_parked_statements_serve_after_commit(self):
        net_server, network, holder, session, token, seq = self._held_txn()
        ports = self._flood(network, 3)
        holder.request(protocol.execute(session, token, seq + 1, "COMMIT"), 8.0)
        network.pump()
        replies = [port.recv(8.0) for port in ports]
        assert all(reply["type"] == "result" for reply in replies)

    def test_writes_never_shed_their_replication(self):
        server, net_server, network = deployment(net_policy=self.POLICY)
        client = supervised(network)
        for sql in SETUP:
            client.execute(sql)
        assert net_server.stats.shed_compares == 0
        assert not server.verify_consistency()


class TestBackoffBoundaries:
    def test_supervisor_policy_attempt_zero_is_immediate(self):
        policy = SupervisorPolicy(backoff_base=3.0)
        assert policy.backoff_delay(0) == 0.0
        assert policy.backoff_delay(-1) == 0.0
        assert policy.backoff_delay(1) == 3.0

    def test_supervisor_policy_factor_growth_and_cap_clamp(self):
        policy = SupervisorPolicy(
            backoff_base=1.0, backoff_factor=3.0, backoff_cap=10.0
        )
        assert [policy.backoff_delay(n) for n in range(1, 5)] == [
            1.0, 3.0, 9.0, 10.0,
        ]
        # The cap also clamps a base that is already over it.
        over = SupervisorPolicy(backoff_base=50.0, backoff_cap=10.0)
        assert over.backoff_delay(1) == 10.0

    def test_client_policy_mirrors_the_same_boundaries(self):
        policy = ClientPolicy(
            backoff_base=2.0, backoff_factor=2.0, backoff_cap=5.0
        )
        assert policy.backoff_delay(0) == 0.0
        assert [policy.backoff_delay(n) for n in range(1, 4)] == [2.0, 4.0, 5.0]


class TestSupervisorRecovery:
    def test_dropped_write_resent_under_same_seq(self):
        server, net_server, network = deployment(
            [net_fault("DROP", r"VALUES \(7", DropFrameEffect(count=1))]
        )
        client = supervised(network)
        for sql in SETUP:
            client.execute(sql)
        client.execute("INSERT INTO t VALUES (7, 70)")
        assert client.stats.resends == 1
        assert net_server.stats.sessions_resumed == 1
        inserts = [sql for sql in server.write_log if "VALUES (7" in sql]
        assert len(inserts) == 1
        assert not server.verify_consistency()

    def test_duplicated_frames_dedupe_server_side(self):
        server, net_server, network = deployment(
            [net_fault("DUP", r"INSERT INTO t", DuplicateFrameEffect(gap=1.0))]
        )
        client = supervised(network)
        for sql in SETUP:
            client.execute(sql)
        assert net_server.stats.duplicates_suppressed >= 2
        assert len([s for s in server.write_log if "INSERT" in s]) == 2
        assert not server.verify_consistency()

    def test_connection_reset_resumes_session(self):
        _, net_server, network = deployment(
            [net_fault("RESET", r"SELECT v", ConnectionResetEffect(count=1))]
        )
        client = supervised(network)
        for sql in SETUP:
            client.execute(sql)
        result = client.execute("SELECT v FROM t WHERE id = 1")
        assert result.rows
        assert client.stats.reconnects >= 1
        assert net_server.stats.sessions_resumed == 1

    def test_mid_transaction_session_loss_raises_session_expired(self):
        _, net_server, network = deployment(
            [net_fault("DROP", r"COMMIT", DropFrameEffect(count=3))],
            net_policy=NetPolicy(idle_deadline=6.0),
        )
        client = supervised(network)
        for sql in SETUP:
            client.execute(sql)
        client.execute("BEGIN")
        client.execute("UPDATE t SET v = 99 WHERE id = 1")
        with pytest.raises(SessionExpired):
            client.execute("COMMIT")
        assert net_server.stats.rollbacks_on_expiry == 1
        # The transaction's effects rolled back with the session.
        fresh = supervised(network)
        assert fresh.execute("SELECT v FROM t WHERE id = 1").rows[0][0] == 10

    def test_session_loss_retries_only_reexecution_safe_statements(self):
        # A dropped SELECT outlives its session: the analyzer proves it
        # safe, so it re-executes on a fresh session.
        _, net_server, network = deployment(
            [net_fault("DROP", r"SELECT v", DropFrameEffect(count=1))],
            net_policy=NetPolicy(idle_deadline=6.0),
        )
        client = supervised(network, request_timeout=10.0)
        for sql in SETUP:
            client.execute(sql)
        assert client.execute("SELECT v FROM t WHERE id = 1").rows
        assert client.stats.safe_retries == 1

    def test_session_loss_never_retries_plain_writes(self):
        server, _, network = deployment(
            [net_fault("DROP", r"VALUES \(7", DropFrameEffect(count=1))],
            net_policy=NetPolicy(idle_deadline=6.0),
        )
        client = supervised(network, request_timeout=10.0)
        for sql in SETUP:
            client.execute(sql)
        with pytest.raises(RetryUnsafe):
            client.execute("INSERT INTO t VALUES (7, 70)")
        assert client.stats.unsafe_aborts == 1
        # Crucially: zero or one execution, never two.
        assert len([s for s in server.write_log if "VALUES (7" in s]) <= 1

    def test_circuit_breaker_opens_after_repeated_failures(self):
        _, _, network = deployment(
            [net_fault("DROP", r"SELECT v", DropFrameEffect())]  # unbounded
        )
        client = supervised(
            network, request_timeout=4.0, circuit_threshold=3,
            max_reconnect_attempts=2,
        )
        for sql in SETUP:
            client.execute(sql)
        with pytest.raises(ConnectionLost):
            client.execute("SELECT v FROM t WHERE id = 1")
        assert client.stats.circuit_open_failures >= 1

    def test_errors_cross_the_wire_as_middleware_exceptions(self):
        from repro.errors import SqlError

        _, _, network = deployment()
        client = supervised(network)
        client.execute(SETUP[0])
        with pytest.raises(SqlError):
            client.execute("INSERT INTO missing VALUES (1)")


# -- the acceptance matrix -------------------------------------------------

EFFECTS = (
    ("drop", lambda: DropFrameEffect(count=2)),
    ("delay", lambda: DelayFrameEffect(delay=4.0)),
    ("duplicate", lambda: DuplicateFrameEffect(gap=1.0)),
    ("reorder", lambda: ReorderFrameEffect(hold=2.0)),
    ("corrupt", lambda: CorruptFrameEffect(count=2)),
    ("reset", lambda: ConnectionResetEffect(count=2)),
    ("partition", lambda: PartitionEffect(duration=10.0)),
)

CLASSES = (
    ("read", r"SELECT\s+v\s+FROM\s+t",
     lambda i: f"SELECT v FROM t WHERE id = {1 + i % 2}"),
    ("write", r"VALUES\s*\(1\d\d",
     lambda i: f"INSERT INTO t VALUES ({101 + i}, {101 + i})"),
    ("idempotent_write", r"UPDATE\s+t\s+SET",
     lambda i: f"UPDATE t SET v = {50 + i} WHERE id = {1 + i % 2}"),
)


def run_class_script(build, net_faults=()):
    from repro.durability import engine_state_signature

    server, net_server, network = deployment(net_faults)
    client = supervised(network)
    for sql in SETUP:
        client.execute(sql)
    for index in range(4):
        client.execute(build(index))
    stats = client.stats
    client.close()
    return {
        "signature": tuple(
            engine_state_signature(replica.product.engine)
            for replica in server.replicas
        ),
        "write_log": server.write_log,
        "disagreements": server.verify_consistency(),
        "safe_retries": stats.safe_retries,
    }


class TestExactlyOnceFaultMatrix:
    @pytest.mark.parametrize("effect_name,make_effect", EFFECTS)
    @pytest.mark.parametrize("class_name,pattern,build", CLASSES)
    def test_state_identical_to_fault_free_run(
        self, effect_name, make_effect, class_name, pattern, build
    ):
        baseline = run_class_script(build)
        cell = run_class_script(
            build, [net_fault(f"NET-{effect_name}", pattern, make_effect())]
        )
        assert cell["disagreements"] == {} or not cell["disagreements"]
        assert cell["signature"] == baseline["signature"]
        assert cell["write_log"] == baseline["write_log"]
        if class_name == "write":
            # Plain writes recover only through same-seq dedupe, never
            # through analyzer-approved re-execution.
            assert cell["safe_retries"] == 0


class TestServedWorkload:
    def test_interleaved_terminals_count_network_errors_separately(self):
        _, _, network = deployment(
            [net_fault("DROP", r"SELECT w_tax", DropFrameEffect(count=2))]
        )
        supervisors = [supervised(network, request_timeout=16.0) for _ in range(2)]
        runners = [
            WorkloadRunner(supervisor, seed=3 + i, retries=2)
            for i, supervisor in enumerate(supervisors)
        ]
        runners[0].setup()
        metrics = run_interleaved(runners, 8)
        assert metrics.transactions == 16
        assert metrics.network_errors == 0  # supervisors absorbed the drops

    def test_network_error_is_a_repro_error(self):
        assert issubclass(ConnectionLost, NetworkError)


class TestNetworkPolicyModel:
    def test_zero_loss_is_near_perfect(self):
        model = NetworkPolicyModel(loss_probability=0.0)
        assert model.request_success_probability() == pytest.approx(1.0)
        assert model.expected_retry_delay() == 0.0

    def test_success_falls_with_loss_and_rises_with_attempts(self):
        lossy = NetworkPolicyModel(loss_probability=0.3, max_attempts=2)
        patient = NetworkPolicyModel(loss_probability=0.3, max_attempts=7)
        assert patient.request_success_probability() > \
            lossy.request_success_probability()
        clean = NetworkPolicyModel(loss_probability=0.05, max_attempts=7)
        assert clean.request_success_probability() > \
            patient.request_success_probability()

    def test_served_availability_composes_with_middleware(self):
        model = NetworkPolicyModel(loss_probability=0.1)
        assert model.served_availability(0.999) < 0.999
        assert model.served_availability(0.999) == pytest.approx(
            0.999 * model.request_success_probability()
        )


class TestTcpBinding:
    def test_hello_execute_and_dedupe_over_real_sockets(self):
        server = DiverseServer(
            [make_server("IB"), make_server("OR"), make_server("MS")],
            adjudication="majority",
        )
        net_server = NetServer(server, NetPolicy(idle_deadline=100_000.0))
        tcp = TcpNetServer(net_server)

        async def drive():
            await tcp.start()
            host, port = tcp.address
            try:
                reader, writer = await asyncio.open_connection(host, port)
                stream = FrameStream()

                async def exchange(message):
                    writer.write(encode_frame(message))
                    await writer.drain()
                    while True:
                        data = await asyncio.wait_for(reader.read(4096), 5.0)
                        replies = stream.feed(data)
                        if replies:
                            return replies[0]

                welcome = await exchange(protocol.hello())
                session, token = welcome["session"], welcome["token"]
                first = await exchange(
                    protocol.execute(session, token, 1, SETUP[0])
                )
                replay = await exchange(
                    protocol.execute(session, token, 1, SETUP[0])
                )
                writer.close()
                return welcome, first, replay
            finally:
                await tcp.stop()

        welcome, first, replay = asyncio.run(drive())
        assert welcome["type"] == "welcome"
        assert first["type"] == "result"
        assert replay == first
        assert net_server.stats.duplicates_suppressed == 1


class TestNetClientBasics:
    def test_reordered_replies_are_skipped_by_seq(self):
        _, _, network = deployment(
            [net_fault("REORDER", r"SELECT v", ReorderFrameEffect(hold=2.0))]
        )
        client = NetClient(network.connect(), timeout=16.0)
        client.hello()
        for seq, sql in enumerate(SETUP, start=1):
            client.execute(seq, sql)
        result = client.execute(4, "SELECT v FROM t WHERE id = 1")
        assert result.rows
