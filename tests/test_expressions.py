"""Expression evaluator unit tests (below the executor)."""

from decimal import Decimal

import pytest

from repro.errors import BindError, TypeMismatch
from repro.sqlengine.expressions import (
    ColumnBinding,
    Environment,
    Evaluator,
    collect_aggregates,
    contains_aggregate,
)
from repro.sqlengine.parser import parse_statement


def expr_of(sql_fragment):
    stmt = parse_statement(f"SELECT {sql_fragment}")
    return stmt.body.items[0].expression


def evaluate(sql_fragment, env=None):
    return Evaluator(ctx=None).evaluate(expr_of(sql_fragment), env)


class TestLiteralEvaluation:
    def test_scalars(self):
        assert evaluate("42") == 42
        assert evaluate("1.5") == Decimal("1.5")
        assert evaluate("'text'") == "text"
        assert evaluate("NULL") is None
        assert evaluate("TRUE") is True

    def test_arithmetic_tree(self):
        assert evaluate("2 + 3 * 4") == 14
        assert evaluate("(2 + 3) * 4") == 20
        assert evaluate("-(2 + 3)") == -5

    def test_comparison_chain_via_logic(self):
        assert evaluate("1 < 2 AND 2 < 3") is True
        assert evaluate("1 < 2 AND NULL IS NULL") is True
        assert evaluate("1 > 2 OR 3 > 2") is True

    def test_unknown_propagation(self):
        assert evaluate("NULL + 1") is None
        assert evaluate("NULL = NULL") is None
        assert evaluate("NOT (NULL = 1)") is None
        assert evaluate("NULL IS NULL") is True

    def test_boolean_condition_type_checked(self):
        with pytest.raises(TypeMismatch):
            evaluate("1 AND 2")


class TestEnvironmentLookup:
    def make_env(self, outer=None):
        columns = [ColumnBinding("t", "a"), ColumnBinding("u", "a"), ColumnBinding("t", "b")]
        return Environment(columns, (1, 2, 3), outer=outer)

    def test_qualified_lookup(self):
        env = self.make_env()
        assert env.lookup("a", "t") == 1
        assert env.lookup("a", "u") == 2

    def test_unqualified_ambiguity(self):
        with pytest.raises(BindError, match="ambiguous"):
            self.make_env().lookup("a", None)

    def test_unqualified_unique(self):
        assert self.make_env().lookup("b", None) == 3

    def test_case_insensitive(self):
        assert self.make_env().lookup("B", "T") == 3

    def test_outer_chain(self):
        outer = Environment([ColumnBinding("o", "x")], (9,))
        env = self.make_env(outer=outer)
        assert env.lookup("x", None) == 9
        assert env.lookup("x", "o") == 9

    def test_missing_column(self):
        with pytest.raises(BindError, match="unknown column"):
            self.make_env().lookup("zzz", None)

    def test_column_without_env(self):
        with pytest.raises(BindError):
            evaluate("some_col")


class TestCaseEvaluation:
    def test_searched_first_match_wins(self):
        assert evaluate("CASE WHEN 1 = 1 THEN 'a' WHEN 2 = 2 THEN 'b' END") == "a"

    def test_searched_else(self):
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' ELSE 'z' END") == "z"

    def test_searched_no_match_no_else_is_null(self):
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' END") is None

    def test_simple_form(self):
        assert evaluate("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"

    def test_simple_form_null_subject_never_matches(self):
        assert evaluate("CASE NULL WHEN NULL THEN 'x' ELSE 'y' END") == "y"

    def test_unknown_condition_skipped(self):
        assert evaluate("CASE WHEN NULL = 1 THEN 'a' ELSE 'b' END") == "b"


class TestPredicateEvaluation:
    def test_in_list_semantics(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("9 IN (1, 2, 3)") is False
        assert evaluate("9 IN (1, NULL)") is None
        assert evaluate("1 IN (1, NULL)") is True
        assert evaluate("NULL IN (1, 2)") is None

    def test_not_in_semantics(self):
        assert evaluate("9 NOT IN (1, 2)") is True
        assert evaluate("1 NOT IN (1, NULL)") is False
        assert evaluate("9 NOT IN (1, NULL)") is None

    def test_between(self):
        assert evaluate("2 BETWEEN 1 AND 3") is True
        assert evaluate("0 NOT BETWEEN 1 AND 3") is True
        assert evaluate("NULL BETWEEN 1 AND 3") is None
        assert evaluate("2 BETWEEN NULL AND 3") is None
        assert evaluate("0 BETWEEN NULL AND -1") is False  # FALSE dominates

    def test_like(self):
        assert evaluate("'hello' LIKE 'h%'") is True
        assert evaluate("'hello' NOT LIKE 'z%'") is True

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("1 IS NOT NULL") is True

    def test_concat_and_cast(self):
        assert evaluate("'v' || 1") == "v1"
        assert evaluate("CAST('10' AS INTEGER) + 1") == 11
        assert evaluate("CAST(1.239 AS NUMERIC(5,2))") == Decimal("1.24")


class TestSubqueryGuards:
    def test_subquery_without_runner_rejected(self):
        with pytest.raises(BindError, match="subqueries"):
            evaluate("(SELECT 1)")

    def test_aggregate_outside_query_rejected(self):
        env = Environment([ColumnBinding("t", "a")], (1,))
        with pytest.raises(BindError):
            Evaluator(ctx=None).evaluate(expr_of("SUM(a)"), env)


class TestAggregateDetection:
    def test_collect_aggregates(self):
        expr = expr_of("SUM(a) + COUNT(*) * 2")
        found = collect_aggregates(expr)
        assert sorted(node.name for node in found) == ["COUNT", "SUM"]

    def test_subquery_boundary_not_crossed(self):
        expr = expr_of("1 + (SELECT SUM(a) FROM t)")
        assert not contains_aggregate(expr)

    def test_nested_function_arguments(self):
        assert contains_aggregate(expr_of("ABS(MIN(a))"))


class TestUpdateWithSubquery:
    def test_correlated_update_assignment(self, seeded_engine):
        seeded_engine.execute(
            "UPDATE product SET qty = (SELECT MAX(qty) FROM product) WHERE id = 1"
        )
        assert seeded_engine.execute(
            "SELECT qty FROM product WHERE id = 1"
        ).scalar() == 100

    def test_update_where_subquery(self, seeded_engine):
        seeded_engine.execute(
            "UPDATE product SET price = 0 WHERE qty = (SELECT MIN(qty) FROM product)"
        )
        assert seeded_engine.execute(
            "SELECT price FROM product WHERE id = 2"
        ).scalar() == Decimal("0.00")
