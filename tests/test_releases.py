"""Later-release modelling tests."""

import pytest

from repro.servers.releases import (
    RELEASE_TRAINS,
    faults_for_release,
    make_release_server,
    release,
    release_fault_catalogs,
)


class TestReleaseModel:
    def test_studied_releases_fix_nothing(self, corpus):
        for server, train in RELEASE_TRAINS.items():
            baseline = corpus.faults_for(server)
            current = faults_for_release(corpus, server, train[0].version)
            assert len(current) == len(baseline)

    def test_pg_703_fixes_exactly_the_clustered_bug(self, corpus):
        baseline = {f.fault_id for f in corpus.faults_for("PG")}
        after = {f.fault_id for f in faults_for_release(corpus, "PG", "7.0.3")}
        assert baseline - after == {"PG-CLUSTERED-INDEX"}

    def test_fix_fraction_is_deterministic(self, corpus):
        first = [f.fault_id for f in faults_for_release(corpus, "IB", "6.5")]
        second = [f.fault_id for f in faults_for_release(corpus, "IB", "6.5")]
        assert first == second
        baseline = corpus.faults_for("IB")
        assert len(first) < len(baseline)

    def test_named_fixes_combine_with_fraction(self, corpus):
        after = {f.fault_id for f in faults_for_release(corpus, "PG", "7.1")}
        assert "PG-CLUSTERED-INDEX" not in after
        assert "PG-43" not in after

    def test_unknown_release_rejected(self):
        with pytest.raises(KeyError):
            release("PG", "99.9")

    def test_release_server_runs(self, corpus):
        server = make_release_server(corpus, "PG", "7.0.3")
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1)")
        assert server.execute("SELECT a FROM t").rows == [(1,)]

    def test_mixed_catalogs_default_to_studied_release(self, corpus):
        catalogs = release_fault_catalogs(corpus, {"PG": "7.0.3"})
        assert len(catalogs["IB"]) == len(corpus.faults_for("IB"))
        assert len(catalogs["PG"]) == len(corpus.faults_for("PG")) - 1


class TestReleaseStudy:
    def test_pg703_removes_clustered_coincidences(self, corpus):
        from repro.study import build_table4, run_study

        catalogs = release_fault_catalogs(corpus, {"PG": "7.0.3"})
        upgraded = run_study(corpus, faults_by_server=catalogs)
        table4 = build_table4(upgraded)
        assert table4["MS"]["PG"] == 0
        # Everything not touched by the fix is unchanged.
        assert table4["IB"]["PG"] == 1
        assert table4["IB"]["MS"] == 2

    def test_upgraded_server_still_fails_its_unfixed_bugs(self, corpus):
        from repro.study import run_study

        catalogs = release_fault_catalogs(corpus, {"PG": "7.0.3"})
        upgraded = run_study(corpus, faults_by_server=catalogs)
        still_failing = sum(
            1
            for report in corpus.reported_for("PG")
            if upgraded.outcome(report.bug_id, "PG").failed
        )
        assert still_failing == 52  # the fix wasn't for a PG-reported bug
