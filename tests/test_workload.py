"""TPC-C-like workload tests."""

import pytest

from repro.dialects import translate_script
from repro.middleware import DiverseServer
from repro.servers import make_server
from repro.workload import (
    SCHEMA_STATEMENTS,
    TpccGenerator,
    TransactionMix,
    WorkloadRunner,
    populate_statements,
)


class TestSchema:
    def test_schema_translates_to_every_dialect(self):
        for server in ("IB", "PG", "OR", "MS"):
            for statement in SCHEMA_STATEMENTS + populate_statements():
                translate_script(statement, server)

    def test_population_is_deterministic(self):
        assert populate_statements() == populate_statements()


class TestGenerator:
    def test_deterministic_given_seed(self):
        first = [t.name for t in TpccGenerator(seed=5).transactions(50)]
        second = [t.name for t in TpccGenerator(seed=5).transactions(50)]
        assert first == second

    def test_mix_respected(self):
        mix = TransactionMix(new_order=0, payment=0, order_status=1,
                             delivery=0, stock_level=0)
        names = {t.name for t in TpccGenerator(seed=1, mix=mix).transactions(20)}
        assert names == {"order_status"}

    def test_read_only_flags(self):
        generator = TpccGenerator(seed=2)
        assert generator.order_status().read_only
        assert generator.stock_level().read_only
        assert not generator.new_order().read_only
        assert not generator.payment().read_only

    def test_new_order_ids_monotonic_per_district(self):
        generator = TpccGenerator(seed=3)
        mix = [generator.new_order() for _ in range(10)]
        # No duplicate (district, order id) pairs in the INSERT statements.
        inserts = [
            s for t in mix for s in t.statements if s.startswith("INSERT INTO orders")
        ]
        assert len(inserts) == len(set(inserts))

    def test_transactions_wrapped_in_begin_commit(self):
        txn = TpccGenerator(seed=4).payment()
        assert txn.statements[0] == "BEGIN"
        assert txn.statements[-1] == "COMMIT"


class TestRunnerOnSingleServer:
    @pytest.mark.parametrize("key", ["IB", "PG", "OR", "MS"])
    def test_fault_free_run_on_each_product(self, key):
        runner = WorkloadRunner(make_server(key), seed=7)
        runner.setup()
        metrics = runner.run(60)
        assert metrics.failure_free, (key, metrics)
        assert metrics.transactions == 60
        assert metrics.statements > 60

    def test_metrics_profile_breakdown(self):
        runner = WorkloadRunner(make_server("PG"), seed=8)
        runner.setup()
        metrics = runner.run(80)
        assert sum(metrics.per_profile.values()) == 80
        assert metrics.statements_per_second > 0


class TestRunnerOnMiddleware:
    def test_diverse_pair_runs_clean(self):
        server = DiverseServer(
            [make_server("IB"), make_server("OR")], adjudication="compare"
        )
        runner = WorkloadRunner(server, seed=9)
        runner.setup()
        metrics = runner.run(50)
        assert metrics.failure_free
        assert server.stats.writes > 0 and server.stats.reads > 0

    def test_faulty_replica_detected_under_load(self):
        from repro.faults import FaultSpec, RelationTrigger, RowDropEffect

        fault = FaultSpec(
            "F-STOCK",
            "wrong rows from the stock table",
            RelationTrigger(["stock"], kind="select"),
            RowDropEffect(keep_one_in=2),
        )
        server = DiverseServer(
            [make_server("IB", [fault]), make_server("OR")],
            adjudication="compare",
            auto_recover=False,
        )
        runner = WorkloadRunner(server, seed=10)
        runner.setup()
        mix = TransactionMix(new_order=0, payment=0, order_status=0,
                             delivery=0, stock_level=1)
        metrics = runner.run(20, generator=TpccGenerator(seed=10, mix=mix))
        assert metrics.detected_disagreements > 0
        assert not metrics.failure_free

    def test_read_split_mode_runs(self):
        server = DiverseServer(
            [make_server("PG"), make_server("MS")],
            adjudication="majority",
            read_split=True,
        )
        runner = WorkloadRunner(server, seed=11)
        runner.setup()
        metrics = runner.run(40)
        assert metrics.failure_free
