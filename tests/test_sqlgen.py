"""AST -> SQL rendering tests: every rendered statement re-parses and,
where executable, produces the same result."""

import pytest

from repro.sqlengine.parser import parse_statement
from repro.sqlengine.sqlgen import render_statement

ROUNDTRIP_STATEMENTS = [
    "SELECT a, b AS x FROM t WHERE a > 1 ORDER BY a DESC LIMIT 3",
    "SELECT DISTINCT a FROM t GROUP BY a HAVING COUNT(*) > 1",
    "SELECT * FROM t",
    "SELECT t.* FROM t",
    "SELECT a FROM t x LEFT OUTER JOIN u y ON x.a = y.b",
    "SELECT a FROM (SELECT a FROM t) d",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b LIKE 'x%' ESCAPE '!'",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CASE a WHEN 1 THEN 'one' END FROM t",
    "SELECT CAST(a AS VARCHAR(10)) FROM t",
    "SELECT COUNT(*), COUNT(DISTINCT a), AVG(a) FROM t",
    "SELECT a || 'x', -a, NOT a > 1 FROM t",
    "(SELECT a FROM t) UNION ALL (SELECT b FROM u)",
    "(SELECT a FROM t) INTERSECT (SELECT b FROM u)",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, TRUE)",
    "UPDATE t SET a = a + 1 WHERE b = 2",
    "DELETE FROM t WHERE a IN (1, 2)",
    "CREATE VIEW v (x) AS SELECT a FROM t",
    "CREATE UNIQUE INDEX ix ON t (a, b)",
    "CREATE CLUSTERED INDEX cx ON t (a)",
    "DROP TABLE t",
    "DROP VIEW v",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "SAVEPOINT sp1",
    "ROLLBACK TO SAVEPOINT sp1",
]


class TestRenderRoundtrip:
    @pytest.mark.parametrize("sql", ROUNDTRIP_STATEMENTS)
    def test_rendered_statement_reparses(self, sql):
        stmt = parse_statement(sql)
        rendered = render_statement(stmt)
        reparsed = parse_statement(rendered)
        # Render again: rendering must be a fixpoint of parse/render.
        assert render_statement(reparsed) == rendered

    def test_rendered_query_gives_same_answer(self, seeded_engine):
        queries = [
            "SELECT id, name FROM product WHERE price >= '1.00' ORDER BY id",
            "SELECT name, COUNT(*) FROM product GROUP BY name ORDER BY 1",
            "SELECT id FROM product WHERE id IN (SELECT id FROM product WHERE qty > 50)",
            "SELECT CASE WHEN qty > 50 THEN 'bulk' ELSE 'unit' END FROM product ORDER BY id",
            "SELECT id FROM product UNION SELECT qty FROM product ORDER BY 1",
        ]
        for sql in queries:
            direct = seeded_engine.execute(sql)
            rendered = render_statement(parse_statement(sql))
            via_render = seeded_engine.execute(rendered)
            assert direct.rows == via_render.rows, sql
            assert direct.columns == via_render.columns, sql
