"""Tokeniser unit tests."""

import pytest

from repro.errors import LexError
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import TokenKind


def kinds(sql):
    return [t.kind for t in tokenize(sql)][:-1]  # drop EOF


def values(sql):
    return [t.value for t in tokenize(sql)][:-1]


class TestBasicTokens:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        token = tokenize("MyTable")[0]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.value == "MyTable"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("t_1_x2")[0]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.value == "t_1_x2"

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("SELECT")[-1].kind is TokenKind.EOF

    def test_punctuation(self):
        assert kinds("(),.;") == [TokenKind.PUNCT] * 5

    def test_keyword_check_helper(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "INSERT")
        assert not token.is_keyword("INSERT")


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_quote_escape_doubling(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_string_with_special_chars(self):
        assert tokenize("'a-b c.d;'")[0].value == "a-b c.d;"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'abc")

    def test_quoted_identifier(self):
        token = tokenize('"Mixed Case"')[0]
        assert token.kind is TokenKind.QUOTED_IDENTIFIER
        assert token.value == "Mixed Case"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexError):
            tokenize('"abc')


class TestNumbers:
    @pytest.mark.parametrize("text", ["0", "42", "123456789"])
    def test_integers(self, text):
        token = tokenize(text)[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == text

    @pytest.mark.parametrize("text", ["1.5", "0.25", "10.00"])
    def test_decimals(self, text):
        assert tokenize(text)[0].value == text

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == ".5"

    @pytest.mark.parametrize("text", ["1e5", "1.5E-3", "2e+10"])
    def test_scientific(self, text):
        assert tokenize(text)[0].value == text

    def test_number_then_dot_identifier(self):
        # "1.e" is number "1." followed by identifier (not scientific).
        tokens = tokenize("1.x")
        assert tokens[0].value == "1."
        assert tokens[1].value == "x"


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "<=", ">=", "!=", "||"])
    def test_multi_char(self, op):
        token = tokenize(op)[0]
        assert token.kind is TokenKind.OPERATOR
        assert token.value == op

    def test_greedy_matching(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_single_char_operators(self):
        assert values("1+2-3*4/5%6") == ["1", "+", "2", "-", "3", "*", "4", "/", "5", "%", "6"]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("SELECT @")


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert values("SELECT -- comment\n 1") == ["SELECT", "1"]

    def test_line_comment_at_eof(self):
        assert values("SELECT 1 -- done") == ["SELECT", "1"]

    def test_block_comment(self):
        assert values("SELECT /* multi\nline */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("SELECT /* oops")

    def test_line_numbers_tracked(self):
        tokens = tokenize("SELECT\n\n1")
        assert tokens[0].line == 1
        assert tokens[1].line == 3

    def test_extra_keywords(self):
        tokens = tokenize("clustered", extra_keywords=["CLUSTERED"])
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].value == "CLUSTERED"
