"""Rollback-and-retry recovery plus engine edge-case hardening."""

import pytest

from repro.errors import BindError
from repro.faults import FaultSpec, RelationTrigger, RowDropEffect, ErrorEffect
from repro.servers import make_server
from repro.workload import TpccGenerator, WorkloadRunner


class TestRollbackAndRetry:
    """Section 2.1: retry tolerates transient (Heisenbug) failures but
    not deterministic ones — the gap diversity fills."""

    def _heisen_server(self):
        fault = FaultSpec(
            "F-TRANSIENT",
            "intermittent spurious error on customer reads",
            RelationTrigger(["customer"], kind="select"),
            ErrorEffect("transient deadlock, please retry"),
            heisenbug=True,
            stress_activation=0.5,
        )
        return make_server("PG", [fault], stress_mode=True, seed=9)

    def test_retries_recover_transient_failures(self):
        baseline_runner = WorkloadRunner(self._heisen_server(), seed=9, retries=0)
        baseline_runner.setup()
        baseline = baseline_runner.run(60, generator=TpccGenerator(seed=9))

        retry_runner = WorkloadRunner(self._heisen_server(), seed=9, retries=4)
        retry_runner.setup()
        retried = retry_runner.run(60, generator=TpccGenerator(seed=9))

        assert baseline.exhausted_retries > 0
        assert retried.retried_successes > 0
        assert retried.exhausted_retries < baseline.exhausted_retries

    def test_retries_cannot_fix_bohrbugs(self):
        fault = FaultSpec(
            "F-DETERMINISTIC",
            "always wrong rows from stock",
            RelationTrigger(["stock"], kind="select"),
            RowDropEffect(keep_one_in=2),
        )
        from repro.middleware import DiverseServer

        server = DiverseServer(
            [make_server("IB", [fault]), make_server("OR")],
            adjudication="compare",
            auto_recover=False,
        )
        runner = WorkloadRunner(server, seed=10, retries=3)
        runner.setup()
        from repro.workload import TransactionMix

        mix = TransactionMix(new_order=0, payment=0, order_status=0,
                             delivery=0, stock_level=1)
        metrics = runner.run(10, generator=TpccGenerator(seed=10, mix=mix))
        # Every attempt fails the same way: retries are exhausted.
        assert metrics.exhausted_retries == 10
        assert metrics.retried_successes == 0


class TestEngineEdgeCases:
    def test_subquery_depth_guard(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        query = "SELECT a FROM t"
        for _ in range(40):
            query = f"SELECT a FROM ({query}) d"
        with pytest.raises(BindError, match="nesting too deep"):
            engine.execute(query)

    def test_limit_zero(self, seeded_engine):
        assert seeded_engine.execute("SELECT id FROM product LIMIT 0").rows == []

    def test_select_constant_group(self, seeded_engine):
        result = seeded_engine.execute("SELECT COUNT(*) FROM product WHERE 1 = 0")
        assert result.rows == [(0,)]

    def test_union_of_empty_results(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id FROM product WHERE 1 = 0 UNION SELECT id FROM product WHERE 2 = 3"
        )
        assert result.rows == []

    def test_deeply_nested_expressions(self, engine):
        expression = "1" + " + 1" * 200
        assert engine.execute(f"SELECT {expression}").scalar() == 201

    def test_wide_in_list(self, seeded_engine):
        values = ", ".join(str(i) for i in range(500))
        result = seeded_engine.execute(
            f"SELECT COUNT(*) FROM product WHERE id IN ({values})"
        )
        assert result.scalar() == 4

    def test_feature_matrix_markdown(self):
        from repro.dialects.features import feature_matrix_markdown

        table = feature_matrix_markdown()
        assert "`join.left`" in table
        assert "| feature | IB | PG | OR | MS |" in table
        # PG lacks outer joins in the matrix rendering.
        join_row = next(line for line in table.splitlines() if "join.left" in line)
        assert join_row.split("|")[2].strip() == "✓"   # IB
        assert join_row.split("|")[3].strip() == "—"   # PG
