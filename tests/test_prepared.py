"""Prepared-statement pipeline: parse/translate/analyze once, execute many.

Covers the redesigned execution API end to end: engine-level prepared
handles, parameter substitution, the ServerConfig construction surface
(keyword-only settings), middleware prepared execution
and batching semantics, the stale-verdict regression after DDL, and a
property test that prepared execution is observationally identical to
literal execution on every product under corpus fault injection.
"""

from __future__ import annotations

import warnings
from decimal import Decimal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import OrderVerdict
from repro.bugs import build_corpus
from repro.errors import MiddlewareError, ReproError, SqlError
from repro.faults import FaultSpec, RelationTrigger, RowDropEffect
from repro.middleware import (
    DiverseServer,
    PreparedStatement,
    ServerConfig,
    replicated_server,
)
from repro.servers import SqlServer, make_server
from repro.sqlengine import Engine
from repro.sqlengine.params import (
    count_placeholders,
    render_param,
    substitute_params,
)
from repro.workload import TpccGenerator, WorkloadRunner

CORPUS = build_corpus()

ACCOUNTS_DDL = (
    "CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner VARCHAR(20), "
    "balance NUMERIC(10,2))"
)
ACCOUNTS_INSERT = "INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)"
ACCOUNT_ROWS = [
    (1, "ann", Decimal("120.00")),
    (2, "bob", Decimal("80.00")),
    (3, "cat", Decimal("310.00")),
]


def _pair():
    return DiverseServer(
        [make_server("IB"), make_server("OR")],
        config=ServerConfig(adjudication="compare"),
    )


# -- parameter rendering and substitution ---------------------------------


class TestParamSubstitution:
    def test_render_param_scalars(self):
        assert render_param(None) == "NULL"
        assert render_param(True) == "TRUE"
        assert render_param(False) == "FALSE"
        assert render_param(42) == "42"
        assert render_param(Decimal("12.50")) == "12.50"
        assert render_param("ann") == "'ann'"

    def test_render_param_escapes_quotes(self):
        assert render_param("o'brien") == "'o''brien'"

    def test_render_param_rejects_unknown_types(self):
        with pytest.raises(SqlError):
            render_param(object())

    def test_count_placeholders(self):
        assert count_placeholders("SELECT 1") == 0
        assert count_placeholders("SELECT ? WHERE a = ?") == 2

    def test_question_mark_in_string_literal_is_not_a_placeholder(self):
        sql = "SELECT '?' FROM t WHERE a = ?"
        assert count_placeholders(sql) == 1
        assert substitute_params(sql, (7,)) == "SELECT '?' FROM t WHERE a = 7"

    def test_substitution_is_positional(self):
        bound = substitute_params(
            "INSERT INTO t (a, b) VALUES (?, ?)", (1, "x")
        )
        assert bound == "INSERT INTO t (a, b) VALUES (1, 'x')"

    def test_substitution_count_mismatch(self):
        with pytest.raises(SqlError):
            substitute_params("SELECT ?", ())
        with pytest.raises(SqlError):
            substitute_params("SELECT ?", (1, 2))


# -- engine-level prepared handles ----------------------------------------


class TestEnginePrepared:
    def _engine(self) -> Engine:
        eng = Engine("test")
        eng.execute(ACCOUNTS_DDL)
        return eng

    def test_execute_binds_parameters(self):
        eng = self._engine()
        insert = eng.prepare(ACCOUNTS_INSERT)
        for row in ACCOUNT_ROWS:
            insert.execute(row)
        result = eng.execute("SELECT owner FROM accounts ORDER BY id")
        assert result.rows == [("ann",), ("bob",), ("cat",)]

    def test_prepared_select_matches_literal(self):
        eng = self._engine()
        eng.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        query = eng.prepare(
            "SELECT owner, balance FROM accounts WHERE balance >= ? ORDER BY id"
        )
        prepared = query.execute((Decimal("100.00"),))
        literal = eng.execute(
            "SELECT owner, balance FROM accounts "
            "WHERE balance >= 100.00 ORDER BY id"
        )
        assert prepared.rows == literal.rows
        assert prepared.columns == literal.columns

    def test_parameter_count_enforced(self):
        eng = self._engine()
        insert = eng.prepare(ACCOUNTS_INSERT)
        with pytest.raises(SqlError):
            insert.execute((1, "ann"))
        with pytest.raises(SqlError):
            insert.execute((1, "ann", Decimal("1.00"), 9))

    def test_prepare_is_memoized(self):
        eng = self._engine()
        assert eng.prepare(ACCOUNTS_INSERT) is eng.prepare(ACCOUNTS_INSERT)

    def test_executemany_returns_one_result_per_row(self):
        eng = self._engine()
        results = eng.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        assert len(results) == len(ACCOUNT_ROWS)
        assert all(r.rowcount == 1 for r in results)

    def test_sql_server_alias_prepares(self):
        server = make_server("PG")
        assert isinstance(server, SqlServer)
        server.execute(ACCOUNTS_DDL)
        server.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        result = server.prepare("SELECT COUNT(*) FROM accounts").execute(())
        assert result.rows == [(3,)]


# -- ServerConfig construction surface ------------------------------------


class TestServerConfigApi:
    def test_config_object(self):
        server = DiverseServer(
            [make_server("IB"), make_server("OR")],
            config=ServerConfig(adjudication="compare", normalize=False),
        )
        assert server.adjudication == "compare"
        assert server.config.normalize is False

    def test_keyword_arguments_build_a_config(self):
        server = DiverseServer(
            [make_server("IB"), make_server("OR")], adjudication="compare"
        )
        assert server.config.adjudication == "compare"

    def test_positional_settings_are_rejected(self):
        # The DeprecationWarning shim is gone: settings are keyword-only.
        with pytest.raises(TypeError):
            DiverseServer([make_server("IB"), make_server("OR")], "compare", False)

    def test_config_and_kwargs_conflict(self):
        with pytest.raises(MiddlewareError):
            DiverseServer(
                [make_server("IB"), make_server("OR")],
                config=ServerConfig(),
                adjudication="compare",
            )

    def test_unknown_keyword_rejected(self):
        with pytest.raises(MiddlewareError):
            DiverseServer([make_server("IB"), make_server("OR")], juditication="x")

    def test_replicated_server_accepts_config(self):
        server = replicated_server(
            lambda: make_server("PG"),
            count=3,
            config=ServerConfig(adjudication="majority"),
        )
        assert server.adjudication == "majority"
        assert len(server.replicas) == 3


# -- middleware prepared execution ----------------------------------------


class TestMiddlewarePrepared:
    def test_execute_rejects_unbound_parameters(self):
        server = _pair()
        with pytest.raises(MiddlewareError, match="prepare"):
            server.execute("SELECT ?")

    def test_prepare_is_memoized(self):
        server = _pair()
        server.execute(ACCOUNTS_DDL)
        assert server.prepare(ACCOUNTS_INSERT) is server.prepare(ACCOUNTS_INSERT)
        assert isinstance(server.prepare(ACCOUNTS_INSERT), PreparedStatement)

    def test_parameter_count_enforced(self):
        server = _pair()
        server.execute(ACCOUNTS_DDL)
        with pytest.raises(MiddlewareError):
            server.prepare(ACCOUNTS_INSERT).execute((1, "ann"))

    def test_prepared_matches_literal_execution(self):
        prepared_server, literal_server = _pair(), _pair()
        for server in (prepared_server, literal_server):
            server.execute(ACCOUNTS_DDL)
        prepared_server.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        for row in ACCOUNT_ROWS:
            literal_server.execute(substitute_params(ACCOUNTS_INSERT, row))
        query = "SELECT owner, balance FROM accounts ORDER BY id"
        assert (
            prepared_server.execute(query).rows
            == literal_server.execute(query).rows
        )

    def test_executemany_charges_one_tick_per_row(self):
        server = _pair()
        server.execute(ACCOUNTS_DDL)
        before = server.clock.now
        server.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        assert server.clock.now == pytest.approx(before + len(ACCOUNT_ROWS))

    def test_executemany_batch_stats(self):
        server = _pair()
        server.execute(ACCOUNTS_DDL)
        server.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        assert server.stats.batches == 1
        assert server.stats.batched_statements == len(ACCOUNT_ROWS)
        assert server.stats.batch_fast_votes == len(ACCOUNT_ROWS)

    def test_write_log_records_bound_text(self):
        server = _pair()
        server.execute(ACCOUNTS_DDL)
        server.prepare(ACCOUNTS_INSERT).execute((1, "ann", Decimal("120.00")))
        assert (
            server.write_log[-1]
            == "INSERT INTO accounts (id, owner, balance) VALUES (1, 'ann', 120.00)"
        )

    def test_front_end_runs_once_per_template(self):
        server = _pair()
        server.execute(ACCOUNTS_DDL)
        insert = server.prepare(ACCOUNTS_INSERT)
        insert.executemany(ACCOUNT_ROWS)
        stats = server.pipeline.stats
        parse_misses = stats.parse_misses
        translate_misses = stats.translate_misses
        insert.executemany([(4, "dee", Decimal("5.00")), (5, "eve", Decimal("6.00"))])
        assert server.pipeline.stats.parse_misses == parse_misses
        assert server.pipeline.stats.translate_misses == translate_misses

    def test_masked_divergence_warns_on_result(self):
        fault = FaultSpec(
            fault_id="TEST-MASK",
            description="drops rows from accounts queries",
            trigger=RelationTrigger(["accounts"], kind="select"),
            effect=RowDropEffect(keep_one_in=2),
        )
        server = DiverseServer(
            [make_server("IB", [fault]), make_server("OR"), make_server("MS")],
            config=ServerConfig(adjudication="majority"),
        )
        server.execute(ACCOUNTS_DDL)
        server.prepare(ACCOUNTS_INSERT).executemany(ACCOUNT_ROWS)
        result = server.execute("SELECT owner FROM accounts ORDER BY id")
        assert result.rows == [("ann",), ("bob",), ("cat",)]
        assert any("IB" in warning for warning in result.warnings)


# -- regression: verdict caches must track schema changes -----------------


class TestVerdictInvalidation:
    SELECT = "SELECT a, b FROM t ORDER BY a"

    @staticmethod
    def _order_verdict(server, sql):
        statement, traits, _ = server.pipeline.parsed(sql)
        return server.pipeline.verdict(sql, statement, server._schema, traits).order

    def test_create_index_refreshes_order_verdict(self):
        server = _pair()
        server.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        server.execute("INSERT INTO t (a, b) VALUES (1, 10), (2, 20)")
        server.execute(self.SELECT)
        assert self._order_verdict(server, self.SELECT) is OrderVerdict.PARTIAL

        server.execute("CREATE UNIQUE INDEX t_a ON t (a)")
        server.execute(self.SELECT)
        assert self._order_verdict(server, self.SELECT) is OrderVerdict.TOTAL

        server.execute("DROP INDEX t_a")
        server.execute(self.SELECT)
        assert self._order_verdict(server, self.SELECT) is OrderVerdict.PARTIAL

    def test_generation_tracks_replica_catalogs(self):
        server = _pair()
        server.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        server.execute("CREATE UNIQUE INDEX t_a ON t (a)")
        server.execute("DROP INDEX t_a")
        for replica in server.replicas:
            assert (
                replica.product.engine.catalog.generation
                == server.pipeline.generation
            )

    def test_prepared_handles_survive_ddl(self):
        server = _pair()
        server.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        insert = server.prepare("INSERT INTO t (a, b) VALUES (?, ?)")
        insert.execute((1, 10))
        server.execute("CREATE UNIQUE INDEX t_a ON t (a)")
        insert.execute((2, 20))
        result = server.execute("SELECT a FROM t ORDER BY a")
        assert result.rows == [(1,), (2,)]


# -- prepared workload mode -----------------------------------------------


class TestWorkloadPrepared:
    def test_use_prepared_requires_prepare(self):
        class ExecuteOnly:
            def execute(self, sql):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(ValueError):
            WorkloadRunner(ExecuteOnly(), use_prepared=True)

    def test_prepared_run_matches_literal_run(self):
        outcomes = []
        for use_prepared in (False, True):
            server = _pair()
            runner = WorkloadRunner(server, seed=6, use_prepared=use_prepared)
            runner.setup()
            metrics = runner.run(25, generator=TpccGenerator(seed=6))
            outcomes.append(
                (
                    metrics.transactions,
                    metrics.statements,
                    metrics.sql_errors,
                    metrics.detected_disagreements,
                    metrics.aborted_transactions,
                )
            )
        assert outcomes[0] == outcomes[1]


# -- property: prepared == literal under fault injection ------------------


def _observe(action):
    try:
        result = action()
    except ReproError as failure:
        return ("error", type(failure).__name__, str(failure))
    return ("ok", result.columns, result.rows, result.rowcount)


@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="abcxy?' _", min_size=0, max_size=8),
            st.decimals(
                min_value=Decimal("-999.99"),
                max_value=Decimal("999.99"),
                places=2,
            ),
        ),
        min_size=1,
        max_size=4,
    ),
    threshold=st.integers(min_value=-2, max_value=6),
)
@settings(max_examples=15, deadline=None)
def test_prepared_equals_literal_on_every_product(rows, threshold):
    insert_template = "INSERT INTO things (id, label, amount) VALUES (?, ?, ?)"
    select_template = (
        "SELECT id, label, amount FROM things WHERE id >= ? ORDER BY id"
    )
    for key in ("IB", "PG", "OR", "MS"):
        prepared = make_server(key, CORPUS.faults_for(key))
        literal = make_server(key, CORPUS.faults_for(key))
        for server in (prepared, literal):
            server.execute(
                "CREATE TABLE things (id INTEGER PRIMARY KEY, "
                "label VARCHAR(20), amount NUMERIC(8,2))"
            )
        insert = prepared.prepare(insert_template)
        for index, (label, amount) in enumerate(rows):
            params = (index, label, amount)
            assert _observe(lambda: insert.execute(params)) == _observe(
                lambda: literal.execute(substitute_params(insert_template, params))
            ), (key, params)
        select = prepared.prepare(select_template)
        bound = substitute_params(select_template, (threshold,))
        assert _observe(lambda: select.execute((threshold,))) == _observe(
            lambda: literal.execute(bound)
        ), (key, threshold)


def test_no_deprecation_warning_from_keyword_construction():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        DiverseServer(
            [make_server("IB"), make_server("OR")],
            config=ServerConfig(adjudication="compare"),
        )
        DiverseServer([make_server("IB"), make_server("OR")], adjudication="compare")
