"""The ternary-logic predicate abstraction: lattice units, soundness
properties against the concrete evaluator, TLP partitioning, rewrite
certificates, and the lint checks built on top."""

from decimal import Decimal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import (
    _check_dead_predicates,
    _check_rewrite_certificates,
    lint_corpus,
    run_lint,
)
from repro.analysis.predicates import (
    Interval,
    PredicateEnv,
    abstract_truth,
    abstract_value,
    certify_rewrites,
    summarize_statement,
    tlp_partition,
)
from repro.analysis.schema import ScriptSchema
from repro.errors import SqlError
from repro.servers import make_server
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import ColumnBinding, Environment, Evaluator
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.sqlgen import DECOY_TABLE, HUNT_TABLE, PredicateGenerator
from repro.study.runner import split_statements

PRODUCTS = ("IB", "PG", "OR", "MS")

HUNT_COLUMNS = ("id", "a", "b", "c", "d")
HUNT_BINDINGS = tuple(ColumnBinding("hunt", name) for name in HUNT_COLUMNS)


def _schema() -> ScriptSchema:
    schema = ScriptSchema()
    for ddl in (HUNT_TABLE, DECOY_TABLE):
        schema.observe(parse_statement(ddl))
    return schema


SCHEMA = _schema()


def _where(sql_predicate: str) -> ast.Expression:
    stmt = parse_statement(f"SELECT id FROM hunt WHERE {sql_predicate}")
    return stmt.body.where


def _hunt_env() -> PredicateEnv:
    stmt = parse_statement("SELECT id FROM hunt")
    return PredicateEnv.for_select(stmt.body, SCHEMA)


HUNT_ENV = _hunt_env()


def truth_of(sql_predicate: str):
    return abstract_truth(_where(sql_predicate), HUNT_ENV)


def value_of(sql_expression: str):
    # Piggyback on the WHERE grammar slot to parse a bare expression.
    return abstract_value(_where(f"({sql_expression}) IS NULL").operand, HUNT_ENV)


class TestTruthLattice:
    def test_literal_true_is_always_true(self):
        t = truth_of("TRUE")
        assert t.always_true and not t.may_raise

    def test_contradiction_is_never_true(self):
        assert truth_of("1 = 0").never_true

    def test_not_null_column_is_null_is_never_true(self):
        t = truth_of("d IS NULL")
        assert t.never_true and None not in t.truth

    def test_nullable_comparison_spans_the_lattice(self):
        t = truth_of("a > b")
        assert t.truth == frozenset({True, False, None})

    def test_is_null_is_total(self):
        t = truth_of("a IS NULL")
        assert t.truth == frozenset({True, False}) and t.total

    def test_not_flips_without_forgetting_unknown(self):
        t = truth_of("NOT (a > 0)")
        assert t.truth == frozenset({True, False, None})

    def test_and_with_false_is_false(self):
        assert truth_of("(a > 0) AND (1 = 2)").never_true

    def test_or_with_true_is_true(self):
        assert truth_of("(a > 0) OR (1 = 1)").always_true

    def test_division_by_column_may_raise(self):
        assert truth_of("a / b > 1").may_raise

    def test_division_by_nonzero_literal_is_safe(self):
        assert not truth_of("a / 2 > 1").may_raise


class TestValueLattice:
    def test_not_null_column_is_not_nullable(self):
        v = value_of("d")
        assert not v.nullable and not v.definitely_null

    def test_nullable_column_is_nullable(self):
        assert value_of("a").nullable

    def test_literal_interval_is_a_point(self):
        v = value_of("5")
        assert v.interval == Interval.point(5) and not v.nullable

    def test_arithmetic_folds_intervals(self):
        assert value_of("2 + 3").interval == Interval.point(5)

    def test_null_literal_is_definitely_null(self):
        assert value_of("NULL").definitely_null

    def test_count_is_non_negative(self):
        stmt = parse_statement("SELECT COUNT(id) FROM hunt")
        value = abstract_value(stmt.body.items[0].expression, HUNT_ENV)
        assert value.interval.low == 0 and not value.nullable


class TestDeadPredicates:
    def test_always_false_where_is_flagged(self):
        stmt = parse_statement("SELECT id FROM hunt WHERE 1 = 0")
        summary = summarize_statement(stmt, SCHEMA)
        assert any("WHERE" in finding.site for finding in summary.dead)

    def test_unreachable_case_arm_is_flagged(self):
        stmt = parse_statement(
            "SELECT CASE WHEN 1 = 1 THEN 1 WHEN a > 0 THEN 2 ELSE 3 END "
            "FROM hunt"
        )
        summary = summarize_statement(stmt, SCHEMA)
        assert any("CASE arm" in finding.site for finding in summary.dead)

    def test_live_statement_is_clean(self):
        stmt = parse_statement("SELECT id FROM hunt WHERE a > 0")
        assert summarize_statement(stmt, SCHEMA).dead == ()


def _concrete(expr: ast.Expression, row: dict):
    env = Environment(HUNT_BINDINGS, tuple(row[c] for c in HUNT_COLUMNS))
    return Evaluator(None).evaluate(expr, env)


class TestSoundnessProperties:
    """The abstraction must over-approximate the concrete evaluator on
    generated NULL-rich predicates and rows."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**6), row_index=st.integers(0, 23))
    def test_truth_soundness(self, seed, row_index):
        generator = PredicateGenerator(seed=seed)
        predicate = generator.predicate()
        row = generator.rows[row_index]
        abstract = abstract_truth(predicate, HUNT_ENV)
        try:
            concrete = _concrete(predicate, row)
        except SqlError:
            assert abstract.may_raise
            return
        assert concrete in abstract.truth

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**6), row_index=st.integers(0, 23))
    def test_value_soundness(self, seed, row_index):
        generator = PredicateGenerator(seed=seed)
        predicate = generator.predicate()
        row = generator.rows[row_index]
        for node in ast.walk_expressions(predicate):
            abstract = abstract_value(node, HUNT_ENV)
            try:
                concrete = _concrete(node, row)
            except SqlError:
                assert abstract.may_raise
                continue
            if concrete is None:
                assert abstract.nullable or abstract.definitely_null
            else:
                assert not abstract.definitely_null
                if isinstance(concrete, (int, Decimal)) and not isinstance(
                    concrete, bool
                ):
                    assert abstract.interval.contains(concrete)


def _campaign_servers():
    from repro.analysis.verdicts import statement_portability
    from repro.sqlengine.analysis import extract_traits

    generator = PredicateGenerator(seed=99)
    servers = {key: make_server(key) for key in PRODUCTS}
    for statement in generator.schema_statements():
        for product in servers.values():
            product.engine.execute(statement)
    return servers, statement_portability, extract_traits


class TestTlpUnionProperty:
    """Union-equals-base on every product, for generated statements and
    for the corpus's own SELECTs."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_generated_statements_partition_cleanly(self, seed):
        servers, statement_portability, extract_traits = _campaign_state()
        generator = PredicateGenerator(seed=seed)
        sql = generator.select_statement()
        stmt = parse_statement(sql)
        triple = tlp_partition(stmt, SCHEMA)
        if triple is None:
            return
        traits = extract_traits(stmt)
        for key, product in servers.items():
            if not statement_portability(traits, key).can_run:
                continue
            base = _rows(product, triple.base)
            union = []
            for partition in triple.partitions:
                union.extend(_rows(product, partition))
            assert sorted(map(repr, union)) == sorted(map(repr, base)), key

    def test_corpus_selects_partition_cleanly(self, corpus):
        checked = 0
        for report in corpus:
            if checked >= 25:
                break
            statements = split_statements(report.script)
            schema = ScriptSchema()
            server = make_server(report.reported_for)
            for sql in statements:
                stmt = parse_statement(sql)
                triple = tlp_partition(stmt, schema)
                schema.observe(stmt)
                try:
                    server.engine.execute(sql)
                except SqlError:
                    break
                if triple is None:
                    continue
                base = _rows(server, triple.base)
                union = []
                for partition in triple.partitions:
                    union.extend(_rows(server, partition))
                assert sorted(map(repr, union)) == sorted(map(repr, base)), (
                    report.bug_id,
                    sql,
                )
                checked += 1
        assert checked > 0


_CAMPAIGN_STATE = None


def _campaign_state():
    global _CAMPAIGN_STATE
    if _CAMPAIGN_STATE is None:
        _CAMPAIGN_STATE = _campaign_servers()
    return _CAMPAIGN_STATE


def _rows(product, sql):
    return [tuple(row) for row in product.engine.execute(sql).rows]


class TestTlpGating:
    def test_plain_select_partitions(self):
        stmt = parse_statement("SELECT id FROM hunt WHERE a > 0")
        triple = tlp_partition(stmt, SCHEMA)
        assert triple is not None
        assert len(triple.partitions) == 3
        assert "IS NULL" in triple.partitions[2]

    def test_no_where_does_not_partition(self):
        assert tlp_partition(parse_statement("SELECT id FROM hunt"), SCHEMA) is None

    def test_parameter_blocks_partitioning(self):
        stmt = parse_statement("SELECT id FROM hunt WHERE a > ?")
        assert tlp_partition(stmt, SCHEMA) is None

    def test_aggregate_blocks_partitioning(self):
        stmt = parse_statement("SELECT COUNT(id) FROM hunt WHERE a > 0")
        assert tlp_partition(stmt, SCHEMA) is None

    def test_distinct_blocks_partitioning(self):
        stmt = parse_statement("SELECT DISTINCT a FROM hunt WHERE a > 0")
        assert tlp_partition(stmt, SCHEMA) is None

    def test_order_by_is_stripped_from_partitions(self):
        stmt = parse_statement("SELECT id FROM hunt WHERE a > 0 ORDER BY id")
        triple = tlp_partition(stmt, SCHEMA)
        assert triple is not None
        assert "ORDER BY" not in triple.base
        assert all("ORDER BY" not in sql for sql in triple.partitions)


class TestRewriteCertificates:
    def test_every_registered_rule_is_certified(self):
        from repro.sqlengine.plan import REWRITE_RULES

        certificates = certify_rewrites()
        assert set(certificates) == set(REWRITE_RULES)
        for rule, certificate in certificates.items():
            assert certificate.certified, (rule, certificate.detail)
            assert certificate.obligations, rule

    def test_lint_is_clean_on_registered_rules(self):
        assert _check_rewrite_certificates() == []

    def test_unknown_rule_fails_certification(self, monkeypatch):
        from repro.sqlengine import plan

        rules = dict(plan.REWRITE_RULES)
        rules["bogus-rewrite"] = None
        monkeypatch.setattr(plan, "REWRITE_RULES", rules)
        certificates = certify_rewrites()
        assert not certificates["bogus-rewrite"].certified
        findings = _check_rewrite_certificates()
        assert [f.subject for f in findings] == ["bogus-rewrite"]
        assert all(f.severity == "error" for f in findings)


class _StubReport:
    def __init__(self, bug_id, script):
        self.bug_id = bug_id
        self.script = script


class TestLintPredicates:
    def test_dead_predicate_warning_fires(self):
        report = _StubReport(
            "STUB-1",
            "CREATE TABLE t (id INTEGER PRIMARY KEY);\n"
            "SELECT id FROM t WHERE 1 = 0",
        )
        findings = _check_dead_predicates([report])
        assert findings and findings[0].check == "dead-predicate"
        assert findings[0].severity == "warning"
        assert findings[0].statement_index == 1

    def test_clean_script_has_no_findings(self):
        report = _StubReport(
            "STUB-2",
            "CREATE TABLE t (id INTEGER PRIMARY KEY);\n"
            "SELECT id FROM t WHERE id > 0",
        )
        assert _check_dead_predicates([report]) == []


class TestLintDeterminism:
    def test_findings_are_deduplicated(self, corpus):
        findings = lint_corpus(corpus)
        keys = [(f.check, f.subject, f.statement_index) for f in findings]
        assert len(keys) == len(set(keys))

    def test_lint_is_deterministic(self, corpus):
        assert [str(f) for f in lint_corpus(corpus)] == [
            str(f) for f in lint_corpus(corpus)
        ]

    def test_json_output_is_stably_sorted(self, corpus):
        lines: list[str] = []
        run_lint(corpus, emit=lines.append, as_json=True)
        import json

        records = [json.loads(line) for line in lines]
        keys = [
            (
                r["code"],
                r["script_id"],
                r["statement_index"] if r["statement_index"] is not None else -1,
                r["detail"],
            )
            for r in records
        ]
        assert keys == sorted(keys)


class TestPipelineAbstraction:
    def test_abstraction_is_memoized_and_invalidated(self):
        from repro.dialects.features import dialect
        from repro.middleware.server import DiverseServer
        from repro.servers.product import ServerProduct

        server = DiverseServer(
            [ServerProduct(dialect(key)) for key in ("PG", "MS")]
        )
        server.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        first = server.abstraction("SELECT id FROM t WHERE v > 0")
        again = server.abstraction("SELECT id FROM t WHERE v > 0")
        assert again is first
        assert server.pipeline.stats.abstraction_hits == 1
        assert server.pipeline.stats.abstraction_misses == 1
        server.execute("CREATE INDEX ix_v ON t (v)")
        server.abstraction("SELECT id FROM t WHERE v > 0")
        assert server.pipeline.stats.abstraction_misses == 2
        assert first.tlp is not None
        assert server.pipeline.stats.hits >= 1
