"""Replica state consistency and transactional behaviour of the
diverse middleware."""

import pytest

from repro.errors import SqlError
from repro.faults import CrashEffect, FaultSpec, RelationTrigger
from repro.middleware import DiverseServer, ReplicaState
from repro.servers import make_server


def build_pair(**kwargs):
    return DiverseServer([make_server("IB"), make_server("OR")], **kwargs)


class TestVerifyConsistency:
    def test_consistent_after_writes(self):
        server = build_pair()
        server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10))")
        server.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        server.execute("UPDATE t SET b = 'z' WHERE a = 1")
        server.execute("DELETE FROM t WHERE a = 2")
        assert server.verify_consistency() == {}

    def test_detects_divergence(self):
        server = build_pair()
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1)")
        # Tamper with one replica behind the middleware's back.
        server.replicas[1].product.execute("INSERT INTO t VALUES (99)")
        disagreements = server.verify_consistency()
        assert disagreements == {"t": ["OR"]}

    def test_consistent_after_crash_recovery(self):
        fault = FaultSpec(
            "F-CRASH", "crash once on t selects",
            RelationTrigger(["t"], kind="select"), CrashEffect(),
        )
        faulty = make_server("IB", [fault])
        server = DiverseServer(
            [faulty, make_server("OR"), make_server("MS")],
            adjudication="majority", auto_recover=False,
        )
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1), (2)")
        server.execute("SELECT a FROM t ORDER BY a")  # IB crashes
        assert server.replica("IB").state is ReplicaState.FAILED
        faulty.injector.disable("F-CRASH")
        server.recover("IB")
        assert server.verify_consistency() == {}

    def test_missing_table_on_replica_detected(self):
        server = build_pair()
        server.execute("CREATE TABLE t (a INTEGER)")
        server.replicas[1].product.execute("DROP TABLE t")
        assert "t" in server.verify_consistency()

    def test_single_active_replica_trivially_consistent(self):
        server = build_pair(auto_recover=False)
        server.execute("CREATE TABLE t (a INTEGER)")
        server.replicas[1].state = ReplicaState.FAILED
        assert server.verify_consistency() == {}


class TestTransactionsThroughMiddleware:
    def test_rollback_spans_replicas(self):
        server = build_pair()
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("INSERT INTO t VALUES (1)")
        server.execute("BEGIN")
        server.execute("DELETE FROM t")
        server.execute("ROLLBACK")
        result = server.execute("SELECT COUNT(*) FROM t")
        assert result.rows[0][0] == 1
        assert server.verify_consistency() == {}

    def test_commit_spans_replicas(self):
        server = build_pair()
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("BEGIN")
        server.execute("INSERT INTO t VALUES (1), (2)")
        server.execute("COMMIT")
        assert server.execute("SELECT COUNT(*) FROM t").rows[0][0] == 2
        assert server.verify_consistency() == {}

    def test_genuine_constraint_error_leaves_replicas_aligned(self):
        server = build_pair()
        server.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        server.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(SqlError):
            server.execute("INSERT INTO t VALUES (1)")
        assert server.verify_consistency() == {}

    def test_recovery_replays_transactions_correctly(self):
        server = DiverseServer(
            [make_server("IB"), make_server("OR")], auto_recover=False
        )
        server.execute("CREATE TABLE t (a INTEGER)")
        server.execute("BEGIN")
        server.execute("INSERT INTO t VALUES (1)")
        server.execute("ROLLBACK")
        server.execute("INSERT INTO t VALUES (2)")
        server.recover("OR")  # full log replay, including the rollback
        assert server.verify_consistency() == {}
        assert server.replicas[1].product.execute(
            "SELECT COUNT(*) FROM t"
        ).scalar() == 1
