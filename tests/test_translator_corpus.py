"""Corpus-wide translation properties: every translation the study
performs is executable and stable."""

import pytest

from repro.dialects import translate_script
from repro.errors import FeatureNotSupported
from repro.servers import make_server
from repro.study.runner import run_script


class TestCorpusTranslations:
    def test_translation_is_idempotent(self, corpus):
        """Translating a translated script again changes nothing."""
        for report in corpus:
            for target in report.runnable_on:
                once = translate_script(report.script, target)
                twice = translate_script(once, target)
                assert once == twice, (report.bug_id, target)

    def test_translations_execute_cleanly_on_pristine_targets(self, corpus):
        """On a fault-free target, a translated bug script must never
        hit parser/binder trouble — only semantic errors the script
        itself provokes deliberately (e.g. the bad-DEFAULT create)."""
        servers = {key: make_server(key) for key in ("IB", "PG", "OR", "MS")}
        # Scripts that *should* error on a correct server: the bug is
        # precisely that the faulty products accept them.
        deliberate_error_bugs = {"IB-217042", "IB-223512"}
        for report in corpus:
            for target in report.runnable_on:
                server = servers[target]
                server.reset()
                script = (
                    report.script
                    if target == report.reported_for
                    else translate_script(report.script, target)
                )
                outcome = run_script(server, script)
                assert not outcome.crashed, (report.bug_id, target)
                errors = [s for s in outcome.statements if s.status == "error"]
                if report.bug_id not in deliberate_error_bugs:
                    assert not errors, (report.bug_id, target, errors[0].error)

    def test_untranslatable_targets_raise_for_every_gated_script(self, corpus):
        for report in corpus:
            blocked = (
                set("IB PG OR MS".split())
                - set(report.runnable_on)
                - set(report.translation_pending)
            )
            for target in blocked:
                with pytest.raises(FeatureNotSupported):
                    translate_script(report.script, target)

    def test_translated_scripts_respect_target_native_types(self, corpus):
        """No Oracle spellings survive translation into PG/MS/IB."""
        for report in corpus.reported_for("OR"):
            for target in report.runnable_on - {"OR"}:
                translated = translate_script(report.script, target)
                assert "VARCHAR2" not in translated, (report.bug_id, target)
                assert "NUMBER(" not in translated.replace("NUMBER (", "NUMBER("), (
                    report.bug_id, target,
                )
