"""Property test: rendering any corpus statement back to SQL and
reparsing it must preserve its traits and its static verdicts.

This is the contract the translator's reparse self-check and the
analyzer both lean on: ``render_statement`` is only trustworthy if the
round trip is semantically lossless for every statement shape the
corpus actually uses (including the CREATE TABLE / ALTER TABLE forms
the renderer gained alongside the analyzer)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ScriptSchema, analyze_statement
from repro.bugs import build_corpus
from repro.sqlengine.analysis import extract_traits
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.sqlgen import render_statement
from repro.study.runner import split_statements

CORPUS = build_corpus()


@given(index=st.integers(min_value=0, max_value=len(CORPUS) - 1))
@settings(max_examples=80, deadline=None)
def test_render_reparse_preserves_traits_and_verdicts(index):
    report = CORPUS.reports[index]
    schema = ScriptSchema()
    reparsed_schema = ScriptSchema()
    for sql in split_statements(report.script):
        stmt = parse_statement(sql)
        reparsed = parse_statement(render_statement(stmt))

        original = extract_traits(stmt)
        roundtrip = extract_traits(reparsed)
        assert roundtrip.kind == original.kind, sql
        assert roundtrip.tags == original.tags, sql
        assert roundtrip.relations == original.relations, sql

        # Verdicts computed against independently grown schemas must
        # agree too — the round trip may not lose keys, view bodies, or
        # column facts the order/access proofs depend on.
        assert analyze_statement(
            reparsed, reparsed_schema, traits=roundtrip
        ) == analyze_statement(stmt, schema, traits=original), sql

        schema.observe(stmt)
        reparsed_schema.observe(reparsed)


def test_every_corpus_statement_renders():
    # Exhaustive sweep (not sampled): render_statement must not raise on
    # any statement kind the corpus contains.
    for report in CORPUS:
        for sql in split_statements(report.script):
            render_statement(parse_statement(sql))
