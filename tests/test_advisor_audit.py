"""Deployment advisor and fault-audit tests."""


from repro.faults.audit import audit_faults, dead_faults, shared_fault_coverage
from repro.reliability.advisor import advise, recommend, score_configuration


class TestAdvisor:
    def test_scores_match_table3_evidence(self, study):
        ib_pg = score_configuration(study, ("IB", "PG"))
        assert ib_pg.shared_failure_bugs == 1     # 223512
        assert ib_pg.nondetectable_bugs == 1      # identical DDL acceptance
        ib_or = score_configuration(study, ("IB", "OR"))
        assert ib_or.shared_failure_bugs == 0
        assert ib_or.nondetectable_bugs == 0

    def test_pairs_with_no_shared_bugs_rank_first(self, study):
        ranked = recommend(study, sizes=(2,))
        best = ranked[0]
        assert best.shared_failure_bugs == 0
        assert best.nondetectable_bugs == 0
        assert set(best.members) in ({"IB", "OR"}, {"OR", "MS"})

    def test_worst_pair_is_pg_ms(self, study):
        ranked = recommend(study, sizes=(2,))
        worst = ranked[-1]
        assert set(worst.members) == {"PG", "MS"}  # 7 coincident bugs

    def test_required_product_pins_membership(self, study):
        ranked = recommend(study, required="PG")
        assert all("PG" in score.members for score in ranked)

    def test_triples_prefer_masking(self, study):
        ranked = recommend(study, sizes=(3,))
        assert all(score.can_mask for score in ranked)
        # Striking consequence of the study's four non-detectable bugs:
        # the poisoned pairs (IB+PG, IB+MS, PG+MS) intersect every
        # possible triple, so NO 3-of-4 configuration is free of
        # identical coincident failures — only the pair OR+{IB,MS} is.
        assert all(score.nondetectable_bugs >= 1 for score in ranked)
        best = ranked[0]
        assert best.nondetectable_bugs == 1

    def test_advise_text(self, study):
        text = advise(study, "OR")
        assert "Current product: OR" in text
        assert "non-detectable" in text


class TestFaultAudit:
    def test_no_dead_faults_in_corpus(self, study):
        """Every deterministic seeded fault fires somewhere: the corpus
        scripts and triggers are in sync."""
        assert dead_faults(study) == []

    def test_heisenbugs_never_fire_in_normal_study(self, study):
        audit = audit_faults(study)
        for entries in audit.values():
            for entry in entries:
                if entry.heisenbug:
                    assert entry.fired_on_bugs == [], entry.fault_id

    def test_shared_pg_fault_covers_six_scripts(self, study):
        coverage = shared_fault_coverage(study)
        assert coverage.get("PG-CLUSTERED-INDEX") == 6

    def test_audit_totals(self, study):
        audit = audit_faults(study)
        assert set(audit) == {"IB", "PG", "OR", "MS"}
        assert len(audit["PG"]) == len(study.corpus.faults_for("PG"))
