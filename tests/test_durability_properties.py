"""The power-cut property: recovery is prefix-consistent everywhere.

The WAL scan discards everything past the first invalid record, so no
matter where a power cut (truncation) or bit rot (corruption) lands in
the log — any byte boundary, including mid-header and mid-payload —
restart recovery must land on a state some *prefix* of the committed
run produces, never a gapped or invented one.  The oracle is exact:
every prefix state is precomputed by pristine replay, recovery's
result must be a member, and running recovery twice must be a fixed
point (idempotence).

The default tests sweep every truncation boundary exhaustively and
sample corruptions with Hypothesis; the ``soak`` test (deselected by
default, run with ``pytest -m soak``) additionally rots every byte of
a longer log with checkpoints in play.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import DurableSession, MemoryMedium, engine_state_signature
from repro.errors import SqlError
from repro.servers import make_server

SCRIPT_STATEMENTS = [
    "CREATE TABLE t (id INT PRIMARY KEY, v DECIMAL(8,2))",
    "INSERT INTO t VALUES (1, 10.00)",
    "INSERT INTO t VALUES (2, 20.00)",
    "UPDATE t SET v = 15.50 WHERE id = 1",
    "INSERT INTO t VALUES (3, 30.00)",
    "DELETE FROM t WHERE id = 2",
]


def build_scenario(statements, checkpoint_interval):
    """One committed run plus the oracle: the signature of every
    prefix of its WAL, by pristine replay."""
    session = DurableSession(
        make_server("IB"), name="IB", checkpoint_interval=checkpoint_interval
    )
    for statement in statements:
        session.execute(statement)
    records = [record.sql for record in session.wal.scan().records]
    prefixes = set()
    replay = make_server("IB")
    prefixes.add(engine_state_signature(replay.engine))
    for sql in records:
        try:
            replay.execute(sql)
        except SqlError:
            pass
        prefixes.add(engine_state_signature(replay.engine))
    return session.power_cut(), prefixes


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(SCRIPT_STATEMENTS, checkpoint_interval=3)


def recover_image(image, checkpoint_interval=3):
    recovered, report = DurableSession.resume(
        make_server("IB"), image, name="IB", checkpoint_interval=checkpoint_interval
    )
    return recovered, report


def assert_acceptable(image, prefixes, checkpoint_interval=3):
    """Recovery lands in the prefix set, and is idempotent."""
    recovered, _ = recover_image(image, checkpoint_interval)
    signature = engine_state_signature(recovered.product.engine)
    assert signature in prefixes
    again, report = recover_image(recovered.power_cut(), checkpoint_interval)
    assert engine_state_signature(again.product.engine) == signature
    assert report.stopped is None  # the first pass truncated the damage
    return signature


def test_truncation_at_every_byte_boundary(scenario):
    disk, prefixes = scenario
    total = disk.size("IB/wal")
    assert total > 0
    for cut in range(total + 1):
        image = disk.clone()
        image.truncate("IB/wal", cut)
        assert_acceptable(image, prefixes)


@settings(max_examples=80, deadline=None)
@given(position=st.integers(min_value=0, max_value=10**9),
       xor=st.integers(min_value=1, max_value=255))
def test_corruption_of_any_byte(scenario, position, xor):
    disk, prefixes = scenario
    image = disk.clone()
    image.corrupt("IB/wal", position % image.size("IB/wal"), xor=xor)
    assert_acceptable(image, prefixes)


@settings(max_examples=40, deadline=None)
@given(cut=st.integers(min_value=0, max_value=10**9),
       position=st.integers(min_value=0, max_value=10**9),
       xor=st.integers(min_value=1, max_value=255))
def test_truncation_and_corruption_compose(scenario, cut, position, xor):
    """A torn tail plus bit rot in what survives: still a prefix."""
    disk, prefixes = scenario
    image = disk.clone()
    image.truncate("IB/wal", cut % (image.size("IB/wal") + 1))
    if image.size("IB/wal"):
        image.corrupt("IB/wal", position % image.size("IB/wal"), xor=xor)
    assert_acceptable(image, prefixes)


@pytest.mark.soak
def test_soak_every_byte_of_a_longer_log():
    """Exhaustive truncate *and* rot sweep over a longer run with
    checkpoints in play — the full power-cut drill."""
    statements = ["CREATE TABLE t (id INT PRIMARY KEY, v DECIMAL(8,2))"]
    statements += [f"INSERT INTO t VALUES ({i}, {i}.50)" for i in range(1, 16)]
    statements += [f"UPDATE t SET v = {i}.75 WHERE id = {i}" for i in range(1, 6)]
    disk, prefixes = build_scenario(statements, checkpoint_interval=5)
    total = disk.size("IB/wal")
    for cut in range(total + 1):
        image = disk.clone()
        image.truncate("IB/wal", cut)
        assert_acceptable(image, prefixes, checkpoint_interval=5)
    for position in range(total):
        image = disk.clone()
        image.corrupt("IB/wal", position, xor=0x01)
        assert_acceptable(image, prefixes, checkpoint_interval=5)


def test_checkpoint_files_rotting_still_recovers(scenario):
    """Damage every checkpoint too: recovery falls back to full redo."""
    disk, prefixes = scenario
    image = disk.clone()
    for name in image.names("IB/ckpt"):
        image.corrupt(name, 10, xor=0x7F)
    recovered, report = recover_image(image)
    assert report.checkpoint is None  # checksum-invalid stores are unreadable
    assert report.redone == report.wal_records  # full-history redo
    assert engine_state_signature(recovered.product.engine) in prefixes


def test_memory_medium_clone_is_independent(scenario):
    disk, _ = scenario
    image = disk.clone()
    image.truncate("IB/wal", 1)
    assert disk.size("IB/wal") > 1


def test_empty_disk_recovers_to_fresh_install():
    recovered, report = DurableSession.resume(make_server("IB"), MemoryMedium())
    assert report.wal_records == 0
    assert report.checkpoint is None
    assert recovered.product.engine.storage.tables() == []
