"""DML execution: INSERT/UPDATE/DELETE, constraints, defaults."""

from decimal import Decimal

import pytest

from repro.errors import CatalogError, ConstraintViolation, SqlError, TypeMismatch


class TestInsert:
    def test_insert_rowcount(self, seeded_engine):
        result = seeded_engine.execute(
            "INSERT INTO product (id, name) VALUES (10, 'a'), (11, 'b')"
        )
        assert result.rowcount == 2

    def test_insert_without_column_list(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER, b VARCHAR(5))")
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        assert engine.execute("SELECT * FROM t").rows == [(1, "x")]

    def test_missing_columns_get_null(self, seeded_engine):
        seeded_engine.execute("INSERT INTO product (id, name) VALUES (10, 'a')")
        row = seeded_engine.execute("SELECT price, qty FROM product WHERE id = 10").rows[0]
        assert row == (None, None)

    def test_width_mismatch_raises(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        with pytest.raises(SqlError):
            engine.execute("INSERT INTO t (a, b) VALUES (1)")

    def test_values_cast_to_column_type(self, engine):
        engine.execute("CREATE TABLE t (a NUMERIC(6,2))")
        engine.execute("INSERT INTO t VALUES ('3.456')")
        assert engine.execute("SELECT a FROM t").scalar() == Decimal("3.46")

    def test_string_into_int_rejected(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(TypeMismatch):
            engine.execute("INSERT INTO t VALUES ('ABC')")

    def test_insert_select(self, seeded_engine):
        seeded_engine.execute("CREATE TABLE archive (id INTEGER, name VARCHAR(30))")
        result = seeded_engine.execute(
            "INSERT INTO archive (id, name) SELECT id, name FROM product WHERE qty > 50"
        )
        assert result.rowcount == 2

    def test_insert_into_view_rejected(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v AS SELECT id FROM product")
        with pytest.raises(CatalogError):
            seeded_engine.execute("INSERT INTO v (id) VALUES (99)")

    def test_duplicate_column_in_insert_rejected(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(SqlError):
            engine.execute("INSERT INTO t (a, a) VALUES (1, 2)")

    def test_multi_row_insert_atomic_on_constraint_failure(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (1), (1)")
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == 0


class TestConstraints:
    def test_primary_key_uniqueness(self, seeded_engine):
        with pytest.raises(ConstraintViolation):
            seeded_engine.execute("INSERT INTO product (id, name) VALUES (1, 'dup')")

    def test_primary_key_not_null(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER PRIMARY KEY)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (NULL)")

    def test_composite_primary_key(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
        engine.execute("INSERT INTO t VALUES (1, 1), (1, 2)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (1, 2)")

    def test_not_null(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (NULL)")

    def test_check_constraint_on_column(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER CHECK (a > 0))")
        engine.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (-1)")

    def test_check_constraint_null_passes(self, engine):
        # SQL: CHECK is satisfied unless it evaluates to FALSE.
        engine.execute("CREATE TABLE t (a INTEGER CHECK (a > 0))")
        engine.execute("INSERT INTO t VALUES (NULL)")
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_table_level_check(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER, b INTEGER, CHECK (a < b))")
        engine.execute("INSERT INTO t VALUES (1, 2)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (2, 1)")

    def test_unique_column_allows_nulls(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER UNIQUE)")
        engine.execute("INSERT INTO t VALUES (NULL), (NULL)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (1), (1)")

    def test_unique_index_enforced(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("CREATE UNIQUE INDEX ix_a ON t (a)")
        engine.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            engine.execute("INSERT INTO t VALUES (1)")


class TestDefaults:
    def test_default_applied(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER, b INTEGER DEFAULT 7)")
        engine.execute("INSERT INTO t (a) VALUES (1)")
        assert engine.execute("SELECT b FROM t").scalar() == 7

    def test_default_string(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER, b VARCHAR(5) DEFAULT 'none')")
        engine.execute("INSERT INTO t (a) VALUES (1)")
        assert engine.execute("SELECT b FROM t").scalar() == "none"

    def test_wrong_type_default_rejected_at_create(self, engine):
        # SQL-92 conformant behaviour (bug 217042 is this check skipped).
        with pytest.raises(TypeMismatch):
            engine.execute("CREATE TABLE t (a INTEGER DEFAULT 'ABC')")

    def test_numeric_string_default_allowed(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER DEFAULT '5')")
        engine.execute("INSERT INTO t (a) VALUES (1)")


class TestUpdate:
    def test_update_rowcount_and_values(self, seeded_engine):
        result = seeded_engine.execute("UPDATE product SET qty = qty + 1 WHERE qty > 50")
        assert result.rowcount == 2
        assert seeded_engine.execute(
            "SELECT qty FROM product WHERE id = 3"
        ).scalar() == 101

    def test_update_all_rows(self, seeded_engine):
        assert seeded_engine.execute("UPDATE product SET qty = 0").rowcount == 4

    def test_update_casts_value(self, seeded_engine):
        seeded_engine.execute("UPDATE product SET price = '5.555' WHERE id = 1")
        assert seeded_engine.execute(
            "SELECT price FROM product WHERE id = 1"
        ).scalar() == Decimal("5.56")

    def test_update_respects_pk(self, seeded_engine):
        with pytest.raises(ConstraintViolation):
            seeded_engine.execute("UPDATE product SET id = 2 WHERE id = 1")

    def test_update_respects_not_null(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        engine.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintViolation):
            engine.execute("UPDATE t SET a = NULL")

    def test_update_uses_old_row_values(self, seeded_engine):
        seeded_engine.execute("UPDATE product SET qty = qty * 2, price = price WHERE id = 2")
        assert seeded_engine.execute("SELECT qty FROM product WHERE id = 2").scalar() == 4

    def test_update_view_rejected(self, seeded_engine):
        seeded_engine.execute("CREATE VIEW v AS SELECT id FROM product")
        with pytest.raises(CatalogError):
            seeded_engine.execute("UPDATE v SET id = 1")


class TestDelete:
    def test_delete_with_where(self, seeded_engine):
        result = seeded_engine.execute("DELETE FROM product WHERE qty < 10")
        assert result.rowcount == 2
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 2

    def test_delete_all(self, seeded_engine):
        assert seeded_engine.execute("DELETE FROM product").rowcount == 4

    def test_delete_nothing(self, seeded_engine):
        assert seeded_engine.execute("DELETE FROM product WHERE id = 99").rowcount == 0

    def test_delete_with_subquery(self, seeded_engine):
        seeded_engine.execute(
            "DELETE FROM product WHERE id IN (SELECT id FROM product WHERE qty > 50)"
        )
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 2
