"""Transaction semantics: rollback-and-retry is the baseline fault
tolerance the paper contrasts diversity against."""

import pytest

from repro.errors import TransactionError


class TestBasicTransactions:
    def test_commit_keeps_changes(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("DELETE FROM product WHERE id = 1")
        seeded_engine.execute("COMMIT")
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 3

    def test_rollback_restores_deletes(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("DELETE FROM product")
        seeded_engine.execute("ROLLBACK")
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 4

    def test_rollback_restores_updates(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("UPDATE product SET qty = 0")
        seeded_engine.execute("ROLLBACK")
        assert seeded_engine.execute("SELECT SUM(qty) FROM product").scalar() == 187

    def test_rollback_removes_inserts(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("INSERT INTO product (id, name) VALUES (10, 'x')")
        seeded_engine.execute("ROLLBACK")
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 4

    def test_rollback_undoes_ddl(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("CREATE TABLE temp_t (a INTEGER)")
        seeded_engine.execute("ROLLBACK")
        assert not seeded_engine.catalog.has_table("temp_t")

    def test_rollback_restores_dropped_table(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("DROP TABLE product")
        seeded_engine.execute("ROLLBACK")
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 4

    def test_autocommit_outside_transaction(self, seeded_engine):
        seeded_engine.execute("DELETE FROM product WHERE id = 1")
        with pytest.raises(TransactionError):
            seeded_engine.execute("ROLLBACK")

    def test_nested_begin_rejected(self, engine):
        engine.execute("BEGIN")
        with pytest.raises(TransactionError):
            engine.execute("BEGIN")

    def test_commit_without_begin_rejected(self, engine):
        with pytest.raises(TransactionError):
            engine.execute("COMMIT")

    def test_changes_visible_within_transaction(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("UPDATE product SET qty = 1 WHERE id = 1")
        assert seeded_engine.execute("SELECT qty FROM product WHERE id = 1").scalar() == 1
        seeded_engine.execute("ROLLBACK")


class TestSavepoints:
    def test_rollback_to_savepoint_partial(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("DELETE FROM product WHERE id = 1")
        seeded_engine.execute("SAVEPOINT sp1")
        seeded_engine.execute("DELETE FROM product WHERE id = 2")
        seeded_engine.execute("ROLLBACK TO SAVEPOINT sp1")
        seeded_engine.execute("COMMIT")
        ids = [r[0] for r in seeded_engine.execute("SELECT id FROM product ORDER BY id").rows]
        assert ids == [2, 3, 4]

    def test_unknown_savepoint_rejected(self, engine):
        engine.execute("BEGIN")
        with pytest.raises(TransactionError):
            engine.execute("ROLLBACK TO SAVEPOINT ghost")

    def test_savepoint_requires_transaction(self, engine):
        with pytest.raises(TransactionError):
            engine.execute("SAVEPOINT sp1")

    def test_later_savepoints_invalidated(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("SAVEPOINT a")
        seeded_engine.execute("DELETE FROM product WHERE id = 1")
        seeded_engine.execute("SAVEPOINT b")
        seeded_engine.execute("ROLLBACK TO SAVEPOINT a")
        with pytest.raises(TransactionError):
            seeded_engine.execute("ROLLBACK TO SAVEPOINT b")
        seeded_engine.execute("ROLLBACK")

    def test_savepoint_then_full_rollback(self, seeded_engine):
        seeded_engine.execute("BEGIN")
        seeded_engine.execute("SAVEPOINT sp1")
        seeded_engine.execute("DELETE FROM product")
        seeded_engine.execute("ROLLBACK")
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 4


class TestCrashInteraction:
    def test_crash_aborts_open_transaction(self):
        from repro.faults import CrashEffect, FaultInjector, FaultSpec, TagTrigger
        from repro.sqlengine import Engine
        from repro.errors import EngineCrash

        injector = FaultInjector(
            "t",
            [
                FaultSpec(
                    "crash-on-groupby",
                    "crash",
                    TagTrigger(required=["clause.group_by"]),
                    CrashEffect(),
                )
            ],
        )
        engine = Engine("t", injector=injector)
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("INSERT INTO t VALUES (1)")
        engine.execute("BEGIN")
        engine.execute("DELETE FROM t")
        with pytest.raises(EngineCrash):
            engine.execute("SELECT a, COUNT(*) FROM t GROUP BY a")
        engine.restart()
        # The open transaction was rolled back by the crash.
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == 1
