"""Type system and casting tests."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import TypeMismatch
from repro.sqlengine.typenames import resolve_type
from repro.sqlengine.types import (
    BOOLEAN,
    DATE,
    INTEGER,
    TIMESTAMP,
    cast_value,
    char,
    format_numeric,
    infer_literal_type,
    numeric,
    parse_date,
    varchar,
)


class TestResolveType:
    @pytest.mark.parametrize(
        "name,family",
        [
            ("INTEGER", "integer"),
            ("INT", "integer"),
            ("SMALLINT", "integer"),
            ("BIGINT", "integer"),
            ("NUMERIC", "decimal"),
            ("NUMBER", "decimal"),
            ("DECIMAL", "decimal"),
            ("FLOAT", "float"),
            ("REAL", "float"),
            ("DOUBLE PRECISION", "float"),
            ("CHAR", "character"),
            ("VARCHAR", "character"),
            ("VARCHAR2", "character"),
            ("TEXT", "character"),
            ("DATE", "date"),
            ("TIMESTAMP", "timestamp"),
            ("DATETIME", "timestamp"),
            ("BOOLEAN", "boolean"),
        ],
    )
    def test_known_spellings(self, name, family):
        assert resolve_type(name).family.value == family

    def test_case_insensitive(self):
        assert resolve_type("varchar", (20, None)).length == 20

    def test_numeric_precision_scale(self):
        t = resolve_type("NUMERIC", (8, 2))
        assert t.precision == 8 and t.scale == 2

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatch):
            resolve_type("BLOBBY")

    def test_render_roundtrip(self):
        assert resolve_type("VARCHAR", (10, None)).render() == "VARCHAR(10)"
        assert resolve_type("NUMERIC", (8, 2)).render() == "NUMERIC(8,2)"


class TestCasts:
    def test_null_passes_any_cast(self):
        assert cast_value(None, INTEGER) is None

    def test_int_from_string(self):
        assert cast_value("42", INTEGER) == 42

    def test_int_from_decimal_truncates(self):
        assert cast_value(Decimal("3.9"), INTEGER) == 3

    def test_int_from_garbage_raises(self):
        with pytest.raises(TypeMismatch):
            cast_value("abc", INTEGER)

    def test_decimal_scale_quantised(self):
        value = cast_value("3.14159", numeric(8, 2))
        assert value == Decimal("3.14")

    def test_char_padding(self):
        assert cast_value("ab", char(5)) == "ab   "

    def test_varchar_overflow_raises(self):
        with pytest.raises(TypeMismatch):
            cast_value("toolongvalue", varchar(4))

    def test_varchar_trailing_spaces_truncated_silently(self):
        assert cast_value("ab   ", varchar(3)) == "ab "

    def test_number_to_string(self):
        assert cast_value(42, varchar(10)) == "42"
        assert cast_value(Decimal("1.50"), varchar(10)) == "1.50"

    def test_boolean_from_strings(self):
        assert cast_value("true", BOOLEAN) is True
        assert cast_value("f", BOOLEAN) is False

    def test_boolean_from_garbage_raises(self):
        with pytest.raises(TypeMismatch):
            cast_value("maybe", BOOLEAN)

    def test_date_from_string(self):
        assert cast_value("2004-06-28", DATE) == datetime.date(2004, 6, 28)

    def test_date_single_digit_components(self):
        assert parse_date("2000-9-6") == datetime.date(2000, 9, 6)

    def test_timestamp_from_date(self):
        value = cast_value(datetime.date(2004, 6, 28), TIMESTAMP)
        assert value == datetime.datetime(2004, 6, 28)

    def test_date_from_timestamp_truncates(self):
        value = cast_value(datetime.datetime(2004, 6, 28, 10, 30), DATE)
        assert value == datetime.date(2004, 6, 28)

    def test_invalid_date_raises(self):
        with pytest.raises(TypeMismatch):
            cast_value("not-a-date", DATE)


class TestImplicitStorageCasts:
    """Stricter rules used when storing into typed columns — the exact
    validation Interbase bug 217042 shows being skipped."""

    def test_numeric_string_allowed(self):
        assert cast_value("9.50", numeric(8, 2), implicit=True) == Decimal("9.50")

    def test_non_numeric_string_rejected(self):
        with pytest.raises(TypeMismatch):
            cast_value("ABC", INTEGER, implicit=True)

    def test_explicit_cast_of_same_string_also_rejected(self):
        with pytest.raises(TypeMismatch):
            cast_value("ABC", INTEGER)


class TestInference:
    @pytest.mark.parametrize(
        "value,family",
        [
            (None, "null"),
            (True, "boolean"),
            (1, "integer"),
            (Decimal("1.5"), "decimal"),
            (1.5, "float"),
            ("x", "character"),
            (datetime.date(2004, 1, 1), "date"),
            (datetime.datetime(2004, 1, 1), "timestamp"),
        ],
    )
    def test_literal_inference(self, value, family):
        assert infer_literal_type(value).family.value == family

    def test_uninferable_raises(self):
        with pytest.raises(TypeMismatch):
            infer_literal_type(object())


class TestFormatting:
    def test_whole_float_formats_as_int(self):
        assert format_numeric(5.0) == "5"

    def test_fractional_float(self):
        assert format_numeric(2.5) == "2.5"

    def test_decimal_preserves_scale(self):
        assert format_numeric(Decimal("10.00")) == "10.00"
        assert format_numeric(Decimal("10.50")) == "10.50"
        assert format_numeric(Decimal("7")) == "7"
