"""Workload end-state integrity: the TPC-C-style transactions preserve
their business invariants, and identical runs yield identical states —
the property the middleware's cross-replica comparison relies on."""

from decimal import Decimal


from repro.servers import make_server
from repro.workload import TpccGenerator, WorkloadRunner


def run_on(key, seed=31, transactions=80):
    server = make_server(key)
    runner = WorkloadRunner(server, seed=seed)
    runner.setup()
    metrics = runner.run(transactions, generator=TpccGenerator(seed=seed))
    assert metrics.failure_free
    return server


class TestBusinessInvariants:
    def test_warehouse_ytd_equals_district_ytd_sum(self):
        server = run_on("PG")
        w_ytd = server.execute("SELECT w_ytd FROM warehouse WHERE w_id = 1").scalar()
        d_sum = server.execute("SELECT SUM(d_ytd) FROM district WHERE d_w_id = 1").scalar()
        # Both started offset (300000 vs 2x30000) and grow by the same
        # payment amounts.
        assert w_ytd - Decimal("300000.00") == d_sum - Decimal("60000.00")

    def test_order_lines_match_order_counts(self):
        server = run_on("IB")
        orders = server.execute(
            "SELECT o_id, o_d_id, o_ol_cnt FROM orders"
        ).rows
        for o_id, d_id, ol_cnt in orders:
            lines = server.execute(
                f"SELECT COUNT(*) FROM order_line "
                f"WHERE ol_o_id = {o_id} AND ol_d_id = {d_id} AND ol_w_id = 1"
            ).scalar()
            assert lines == ol_cnt

    def test_stock_ytd_accounts_for_orders(self):
        server = run_on("MS")
        total_ordered = server.execute(
            "SELECT SUM(ol_quantity) FROM order_line"
        ).scalar()
        stock_ytd = server.execute("SELECT SUM(s_ytd) FROM stock").scalar()
        assert total_ordered == stock_ytd

    def test_customer_payment_counts_match_history(self):
        server = run_on("OR")
        payments = server.execute("SELECT COUNT(*) FROM history").scalar()
        counted = server.execute(
            "SELECT SUM(c_payment_cnt) FROM customer"
        ).scalar()
        base = server.execute("SELECT COUNT(*) FROM customer").scalar()
        assert counted - base == payments  # everyone starts at 1


class TestCrossServerDeterminism:
    def test_identical_state_across_products(self):
        """The same transaction stream leaves byte-identical state on
        all four products — the invariant that makes the middleware's
        comparison sound on fault-free replicas."""
        from repro.middleware.normalizer import normalize_row

        def state_of(server):
            tables = sorted(t.name for t in server.engine.catalog.tables())
            return {
                name: sorted(
                    normalize_row(row)
                    for row in server.engine.storage.get(name).snapshot()
                )
                for name in tables
            }

        states = [state_of(run_on(key, seed=7, transactions=50))
                  for key in ("IB", "PG", "OR", "MS")]
        assert states[0] == states[1] == states[2] == states[3]

    def test_different_seed_different_state(self):
        first = run_on("PG", seed=1, transactions=30)
        second = run_on("PG", seed=2, transactions=30)
        a = first.execute("SELECT COUNT(*) FROM order_line").scalar()
        b = second.execute("SELECT COUNT(*) FROM order_line").scalar()
        assert (a, first.execute("SELECT w_ytd FROM warehouse").scalar()) != (
            b, second.execute("SELECT w_ytd FROM warehouse").scalar(),
        )
