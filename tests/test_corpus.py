"""Corpus invariants: the 181-report sample matches the paper's ground
truth before any execution happens."""

from collections import Counter


from repro.bugs import build_corpus
from repro.bugs import groundtruth as gt
from repro.bugs.notable import notable_bugs
from repro.dialects import dialect
from repro.sqlengine.analysis import script_traits
from repro.sqlengine.parser import parse_script


class TestCorpusShape:
    def test_181_reports(self, corpus):
        assert len(corpus) == 181

    def test_per_server_totals(self, corpus):
        counts = Counter(r.reported_for for r in corpus)
        assert counts == {"IB": 55, "PG": 57, "OR": 18, "MS": 51}

    def test_unique_ids(self, corpus):
        assert len({r.bug_id for r in corpus}) == 181

    def test_deterministic_build(self, corpus):
        other = build_corpus()
        assert [r.bug_id for r in other] == [r.bug_id for r in corpus]
        assert [r.script for r in other] == [r.script for r in corpus]

    def test_heisenbug_count(self, corpus):
        # 8 + 5 + 4 + 12 home-no-failure reports.
        assert sum(1 for r in corpus if r.heisenbug) == 29

    def test_coincident_bugs_are_the_twelve(self, corpus):
        coincident = {r.bug_id for r in corpus.coincident()}
        assert coincident == {
            "IB-223512", "IB-217042", "IB-222476", "PG-43", "PG-77",
            "OR-1059835", "MS-58544", "MS-54428", "MS-56516", "MS-58158",
            "MS-58253", "MS-351180",
        }

    def test_notable_bugs_all_present(self, corpus):
        for notable in notable_bugs():
            assert corpus.get(notable.bug_id).title == notable.title


class TestScripts:
    def test_every_script_parses(self, corpus):
        for report in corpus:
            assert parse_script(report.script)

    def test_home_dialect_accepts_every_script(self, corpus):
        for report in corpus:
            traits = script_traits(parse_script(report.script))
            missing = dialect(report.reported_for).missing_tags(traits)
            assert missing == [], f"{report.bug_id}: {missing}"

    def test_gate_features_match_runnable_set(self, corpus):
        """A script's gate features must be supported exactly by the
        servers in runnable_on plus translation_pending."""
        for report in corpus:
            traits = script_traits(parse_script(report.script))
            natural = {
                server
                for server in gt.SERVER_KEYS
                if not dialect(server).missing_tags(traits)
            }
            expected = set(report.runnable_on) | set(report.translation_pending)
            assert natural == expected, report.bug_id

    def test_scripts_use_disjoint_tables(self, corpus):
        seen: dict[str, str] = {}
        for report in corpus:
            traits = script_traits(parse_script(report.script))
            for relation in traits.relations:
                owner = seen.setdefault(relation, report.bug_id)
                assert owner == report.bug_id, (
                    f"table {relation} shared by {owner} and {report.bug_id}"
                )

    def test_oracle_scripts_use_oracle_spellings(self, corpus):
        generic_or = [
            r for r in corpus.reported_for("OR") if r.bug_id.startswith("OR-106")
        ]
        assert generic_or
        for report in generic_or:
            assert "VARCHAR2" in report.script or "NUMBER" in report.script


class TestGroundTruthMarginals:
    def test_group_sizes(self, corpus):
        groups = Counter(gt.canonical_group(r.runnable_on) for r in corpus)
        for group, (total, *_rest) in gt.PAPER_TABLE2.items():
            assert groups.get(group, 0) == total, group

    def test_run_counts_per_reported_target(self, corpus):
        for reported, targets in gt.PAPER_TABLE1.items():
            reports = corpus.reported_for(reported)
            for target, expected in targets.items():
                runnable = sum(1 for r in reports if target in r.runnable_on)
                pending = sum(1 for r in reports if target in r.translation_pending)
                assert runnable == expected["run"], (reported, target)
                assert pending == expected["further_work"], (reported, target)

    def test_home_failure_totals(self, corpus):
        for reported, targets in gt.PAPER_TABLE1.items():
            expected = targets[reported]
            failing = sum(
                1 for r in corpus.reported_for(reported) if r.home_failure is not None
            )
            assert failing == expected["failure"]

    def test_faults_scoped_to_affected_servers(self, corpus):
        for report in corpus:
            for server in report.faults:
                assert server in gt.SERVER_KEYS

    def test_shared_pg_clustered_fault_present_once(self, corpus):
        pg_faults = corpus.faults_for("PG")
        shared = [f for f in pg_faults if f.fault_id == "PG-CLUSTERED-INDEX"]
        assert len(shared) == 1
