"""Whole-script dataflow: def/use graphs, slices, minimization."""

import pytest

from repro.analysis import build_graph, minimize_report, minimize_script
from repro.analysis.dataflow import statement_def_use
from repro.analysis.schema import ScriptSchema
from repro.middleware.pipeline import StatementPipeline
from repro.sqlengine.analysis import extract_traits
from repro.sqlengine.parser import parse_statement
from repro.study.runner import split_statements


def def_use(sql, schema=None):
    stmt = parse_statement(sql)
    return statement_def_use(stmt, schema, extract_traits(stmt))


class TestDefUse:
    def test_create_table_defines_schema_and_columns(self):
        du = def_use("CREATE TABLE t (id INTEGER PRIMARY KEY, v CHAR(4))")
        assert ("t", "@schema") in du.defs
        assert ("t", "*") in du.defs
        assert ("t", "id") in du.defs and ("t", "v") in du.defs
        assert du.uses == frozenset()

    def test_foreign_key_reads_referenced_table_existence(self):
        du = def_use(
            "CREATE TABLE c (id INTEGER, p INTEGER REFERENCES parent (id))"
        )
        assert ("parent", "@schema") in du.uses

    def test_insert_defines_data_and_reads_prior_content(self):
        du = def_use("INSERT INTO t (id) VALUES (1)")
        assert ("t", "*") in du.defs
        # Constraint checks read the rows already there.
        assert ("t", "*") in du.uses and ("t", "@schema") in du.uses

    def test_update_defines_assigned_columns_only(self):
        schema = ScriptSchema()
        schema.observe(parse_statement("CREATE TABLE t (id INTEGER, v INTEGER)"))
        du = def_use("UPDATE t SET v = v + 1 WHERE id > 2", schema)
        assert du.defs == frozenset({("t", "v")})
        assert ("t", "id") in du.uses and ("t", "v") in du.uses

    def test_select_resolves_columns_against_schema(self):
        schema = ScriptSchema()
        schema.observe(parse_statement("CREATE TABLE t (id INTEGER, v INTEGER)"))
        du = def_use("SELECT v FROM t WHERE id = 1", schema)
        assert du.defs == frozenset()
        assert ("t", "id") in du.uses and ("t", "v") in du.uses
        assert ("t", "@schema") in du.uses

    def test_select_star_reads_whole_relation(self):
        du = def_use("SELECT * FROM t")
        assert ("t", "*") in du.uses

    def test_subqueries_are_crossed(self):
        schema = ScriptSchema()
        schema.observe(parse_statement("CREATE TABLE t (id INTEGER)"))
        schema.observe(parse_statement("CREATE TABLE u (id INTEGER)"))
        du = def_use("SELECT id FROM t WHERE id IN (SELECT id FROM u)", schema)
        assert ("u", "id") in du.uses

    def test_unique_index_reads_content(self):
        assert ("t", "*") in def_use("CREATE UNIQUE INDEX ix ON t (a)").uses
        assert ("t", "*") not in def_use("CREATE INDEX ix ON t (a)").uses

    def test_transaction_control_is_a_barrier(self):
        assert def_use("COMMIT").barrier
        assert def_use("ROLLBACK").barrier
        assert not def_use("SELECT 1 FROM t").barrier


class TestGraph:
    SCRIPT = (
        "CREATE TABLE a (id INTEGER, v INTEGER);\n"
        "CREATE TABLE b (id INTEGER);\n"
        "INSERT INTO a (id, v) VALUES (1, 10);\n"
        "INSERT INTO b (id) VALUES (7);\n"
        "SELECT v FROM a WHERE id = 1;"
    )

    def test_backward_slice_drops_unrelated_statements(self):
        graph = build_graph(self.SCRIPT)
        assert graph.backward_slice([4]) == [0, 2, 4]

    def test_data_write_does_not_satisfy_schema_use(self):
        # INSERT INTO b defines (b, "*"), which must not feed a later
        # statement's (b, "@schema") existence dependence.
        graph = build_graph(
            "CREATE TABLE b (id INTEGER);\n"
            "INSERT INTO b (id) VALUES (1);\n"
            "CREATE VIEW vb AS SELECT id FROM b;\n"
            "DROP VIEW vb;"
        )
        assert graph.backward_slice([3]) == [0, 2, 3]

    def test_view_reading_select_depends_on_base_inserts(self):
        graph = build_graph(
            "CREATE TABLE b (id INTEGER);\n"
            "CREATE VIEW vb AS SELECT id FROM b;\n"
            "INSERT INTO b (id) VALUES (1);\n"
            "SELECT id FROM vb;"
        )
        # The view expands at query time: the SELECT reads b's data,
        # including the INSERT that happened after CREATE VIEW.
        assert graph.backward_slice([3]) == [0, 1, 2, 3]

    def test_barrier_pins_everything_before_it(self):
        graph = build_graph(
            "CREATE TABLE a (id INTEGER);\n"
            "INSERT INTO a (id) VALUES (1);\n"
            "COMMIT;\n"
            "SELECT id FROM a;"
        )
        assert graph.backward_slice([3]) == [0, 1, 2, 3]

    def test_dead_statements(self):
        graph = build_graph(self.SCRIPT)
        # INSERT INTO b feeds no SELECT; CREATE TABLE b feeds only it.
        assert graph.dead_statements() == [1, 3]

    def test_dead_columns(self):
        graph = build_graph(
            "CREATE TABLE t (id INTEGER, unused VARCHAR(8));\n"
            "SELECT id FROM t;"
        )
        assert graph.dead_columns() == [("t", "unused")]

    def test_dead_columns_respects_star(self):
        graph = build_graph(
            "CREATE TABLE t (id INTEGER, v VARCHAR(8));\n"
            "SELECT * FROM t;"
        )
        assert graph.dead_columns() == []


class TestMinimize:
    def test_minimize_script_keeps_targets_and_deps(self):
        sliced = minimize_script(TestGraph.SCRIPT, targets=[4])
        assert sliced.kept == (0, 2, 4)
        assert sliced.dropped == (1, 3)
        assert len(split_statements(sliced.sql)) == 3

    def test_minimize_report_keeps_trigger_statements(self, corpus):
        checked = 0
        for report in corpus.reports[:30]:
            sliced = minimize_report(report)
            anchors = dict(sliced.anchors)
            assert anchors, report.bug_id
            assert all(index in sliced.kept for index in anchors), report.bug_id
            checked += 1
        assert checked == 30

    def test_minimize_report_preserves_portability(self, corpus):
        from repro.analysis import predicted_hosts

        for report in corpus.reports[:30]:
            sliced = minimize_report(report)
            if not sliced.dropped:
                continue
            assert predicted_hosts(sliced.sql) == predicted_hosts(report.script), (
                report.bug_id
            )

    def test_corpus_wide_reduction_is_substantial(self, corpus):
        total = kept = 0
        for report in corpus:
            sliced = minimize_report(report)
            total += len(sliced.kept) + len(sliced.dropped)
            kept += len(sliced.kept)
        assert (total - kept) / total > 0.1

    def test_slice_result_reduction(self):
        sliced = minimize_script(TestGraph.SCRIPT, targets=[4])
        assert sliced.reduction == pytest.approx(2 / 5)


class TestPipelineMemoization:
    def test_def_use_is_cached_per_generation(self):
        pipeline = StatementPipeline()
        schema = ScriptSchema()
        sql = "SELECT id FROM t"
        stmt, traits, _ = pipeline.parsed(sql)
        first = pipeline.def_use(sql, stmt, schema, traits)
        second = pipeline.def_use(sql, stmt, schema, traits)
        assert first is second
        assert pipeline.stats.dataflow_hits == 1
        assert pipeline.stats.dataflow_misses == 1
        pipeline.bump_generation()
        pipeline.def_use(sql, stmt, schema, traits)
        assert pipeline.stats.dataflow_misses == 2

    def test_build_graph_uses_pipeline(self):
        pipeline = StatementPipeline()
        build_graph(TestGraph.SCRIPT, pipeline=pipeline)
        build_graph(TestGraph.SCRIPT, pipeline=pipeline)
        assert pipeline.stats.parse_hits >= 5
        assert pipeline.stats.dataflow_hits >= 5
