"""Statement deadlines, hang/stall faults, and straggler-tolerant
adjudication: the watchdog layer of the diverse middleware."""

import math

import pytest

from repro.errors import SqlError, StatementTimeout
from repro.faults import (
    CrashEffect,
    FaultSpec,
    HangEffect,
    RecoveryTrigger,
    SqlPatternTrigger,
    StallEffect,
    TimeoutAuditEntry,
)
from repro.middleware import (
    DiverseServer,
    ReplicaState,
    SupervisorPolicy,
)
from repro.middleware.comparator import ReplicaAnswer
from repro.reliability import QuarantinePolicyModel, TimeoutPolicyModel
from repro.servers import make_server
from repro.workload import WorkloadRunner
from repro.workload.generator import TpccGenerator


def hang_on_accounts_select():
    return FaultSpec(
        "T-HANG",
        "never returns from accounts selects",
        SqlPatternTrigger(r"SELECT.*FROM\s+accounts"),
        HangEffect("latch wedged"),
    )


def stall_on(pattern, delay=100.0, *, once=False, fault_id="T-STALL"):
    return FaultSpec(
        fault_id,
        f"stalls {delay} cost units on {pattern}",
        SqlPatternTrigger(pattern),
        StallEffect(delay=delay, once=once),
    )


def triple(ib_faults=(), **kwargs):
    return DiverseServer(
        [make_server("IB", list(ib_faults)), make_server("OR"), make_server("MS")],
        adjudication="majority",
        **kwargs,
    )


def seed_accounts(server):
    server.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)")
    server.execute("INSERT INTO accounts (id, balance) VALUES (1, 100), (2, 200)")
    return server


class TestHangAndStallEffects:
    def seeded_product(self, fault):
        product = make_server("IB", [fault])
        product.execute(
            "CREATE TABLE accounts (id INTEGER PRIMARY KEY, balance INTEGER)"
        )
        product.execute("INSERT INTO accounts (id, balance) VALUES (1, 100)")
        return product

    def test_hang_costs_infinitely_much(self):
        product = self.seeded_product(hang_on_accounts_select())
        result = product.execute("SELECT id FROM accounts")
        # The statement still "answers" in the synchronous simulation —
        # its infinite virtual cost is what makes it a hang: no finite
        # deadline ever sees the answer arrive.
        assert math.isinf(result.virtual_cost)
        assert [row[0] for row in result.rows] == [1]

    def test_stall_adds_virtual_cost(self):
        product = self.seeded_product(stall_on(r"SELECT.*FROM\s+accounts", 400.0))
        baseline = product.execute("SELECT 1").virtual_cost
        result = product.execute("SELECT id FROM accounts")
        assert result.virtual_cost == pytest.approx(baseline + 400.0)

    def test_stall_once_fires_once(self):
        product = self.seeded_product(
            stall_on(r"SELECT.*FROM\s+accounts", 400.0, once=True)
        )
        first = product.execute("SELECT id FROM accounts")
        second = product.execute("SELECT id FROM accounts")
        assert first.virtual_cost > 400.0
        assert second.virtual_cost < 400.0

    def test_stall_requires_positive_delay(self):
        with pytest.raises(ValueError):
            StallEffect(delay=0.0)
        with pytest.raises(ValueError):
            StallEffect(delay=-1.0)

    def test_audit_entry_classifies_kind_and_overrun(self):
        hang = TimeoutAuditEntry(
            replica="IB", sql="SELECT 1", virtual_cost=math.inf, deadline=50.0, at=3.0
        )
        stall = TimeoutAuditEntry(
            replica="IB", sql="SELECT 1", virtual_cost=101.0, deadline=50.0, at=3.0
        )
        assert hang.kind == "hang" and math.isinf(hang.overrun)
        assert stall.kind == "stall" and stall.overrun == pytest.approx(51.0)
        assert not hang.during_recovery


class TestStatementDeadline:
    def test_hung_replica_masked_quarantined_and_replayed(self):
        # The ISSUE's acceptance demo: three replicas, one hung; the
        # client gets a correct within-deadline answer, the hung replica
        # is quarantined and rebuilt from checkpoint + log tail, and the
        # event shows up in both the stats and the timeout audit.
        server = seed_accounts(
            triple(
                [hang_on_accounts_select()],
                policy=SupervisorPolicy(statement_deadline=50.0, checkpoint_interval=2),
            )
        )
        for i in range(3, 8):
            server.execute(f"INSERT INTO accounts (id, balance) VALUES ({i}, {i})")
        assert server.stats.checkpoints >= 1
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert [row[0] for row in result.rows] == list(range(1, 8))
        ib = server.replica("IB")
        assert ib.state is ReplicaState.ACTIVE  # recovered in-statement
        assert ib.stats.timeouts == 1
        assert server.stats.statement_timeouts == 1
        assert server.stats.quarantines == 1
        assert server.stats.recoveries == 1
        assert server.stats.checkpoint_replays >= 1
        entry = server.timeout_audit[-1]
        assert entry.replica == "IB"
        assert entry.kind == "hang"
        assert not entry.during_recovery
        assert server.verify_consistency() == {}

    def test_timeouts_are_detection_events(self):
        server = seed_accounts(
            triple(
                [hang_on_accounts_select()],
                policy=SupervisorPolicy(statement_deadline=50.0),
            )
        )
        before = server.stats.detection_events
        server.execute("SELECT id FROM accounts")
        assert server.stats.detection_events > before

    def test_transient_stall_saved_by_read_retry(self):
        server = seed_accounts(
            triple(
                [stall_on(r"SELECT.*FROM\s+accounts", 400.0, once=True)],
                policy=SupervisorPolicy(statement_deadline=50.0),
            )
        )
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert [row[0] for row in result.rows] == [1, 2]
        # The once-only stall cleared on retry: no quarantine, no audit.
        assert server.stats.statement_retries == 1
        assert server.stats.retries_saved == 1
        assert server.stats.statement_timeouts == 0
        assert server.stats.quarantines == 0
        assert server.timeout_audit == []
        assert server.replica("IB").state is ReplicaState.ACTIVE

    def test_stalled_write_never_rerun(self):
        # A write over deadline is excluded and the replica rebuilt by
        # replay — re-executing the statement would double-apply it.
        server = seed_accounts(
            triple(
                [stall_on(r"INSERT\s+INTO\s+accounts.*VALUES\s*\(3", 100.0)],
                policy=SupervisorPolicy(
                    statement_deadline=50.0, recovery_deadline=1000.0
                ),
            )
        )
        retries_before = server.stats.statement_retries
        server.execute("INSERT INTO accounts (id, balance) VALUES (3, 300)")
        assert server.stats.statement_retries == retries_before
        assert server.stats.statement_timeouts == 1
        assert server.timeout_audit[-1].kind == "stall"
        assert server.stats.quarantines == 1
        # Replay (under the looser recovery deadline) rebuilt the
        # replica with the stalled write applied exactly once.
        assert server.replica("IB").state is ReplicaState.ACTIVE
        assert server.verify_consistency() == {}

    def test_all_replicas_hung_raises_statement_timeout(self):
        faults = [
            FaultSpec(
                f"T-HANG-{key}",
                "hangs on accounts selects",
                SqlPatternTrigger(r"SELECT.*FROM\s+accounts"),
                HangEffect(),
            )
            for key in ("IB", "OR", "MS")
        ]
        server = DiverseServer(
            [make_server(key, [fault]) for key, fault in zip(("IB", "OR", "MS"), faults)],
            adjudication="majority",
            policy=SupervisorPolicy(statement_deadline=50.0),
        )
        seed_accounts(server)
        with pytest.raises(StatementTimeout) as excinfo:
            server.execute("SELECT id FROM accounts")
        assert excinfo.value.deadline == 50.0
        for key in ("IB", "OR", "MS"):
            assert key in str(excinfo.value)

    def test_without_deadline_hang_is_invisible_to_the_watchdog(self):
        server = seed_accounts(triple([hang_on_accounts_select()]))
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        # The hung replica's answer participates (and even agrees); only
        # the cost-ratio check notices anything, and only because this
        # simulation delivers the answer eventually.
        assert [row[0] for row in result.rows] == [1, 2]
        assert server.stats.statement_timeouts == 0
        assert server.stats.quarantines == 0
        assert server.stats.performance_anomalies == 1

    def test_primary_path_timeout_excludes_replica(self):
        server = DiverseServer(
            [make_server("IB", [hang_on_accounts_select()]), make_server("OR")],
            adjudication="primary",
            policy=SupervisorPolicy(statement_deadline=50.0),
        )
        seed_accounts(server)
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        # The hung primary was excluded; the next replica answered.
        assert [row[0] for row in result.rows] == [1, 2]
        assert server.stats.statement_timeouts == 1
        assert server.timeout_audit[-1].replica == "IB"


class TestStallDuringRecovery:
    def test_recovery_stall_hits_circuit_breaker_not_a_loop(self):
        # Satellite S3: a replica that stalls while *replaying* the
        # write log must fail the recovery attempt — and eventually the
        # circuit breaker — instead of wedging the recovery loop.
        server = seed_accounts(
            triple(
                [
                    FaultSpec(
                        "T-CRASH",
                        "crashes on accounts selects",
                        SqlPatternTrigger(r"SELECT.*FROM\s+accounts"),
                        CrashEffect("scheduler deadlock"),
                    ),
                    FaultSpec(
                        "T-RECOVERY-STALL",
                        "stalls while replaying the write log",
                        RecoveryTrigger(),
                        StallEffect(delay=1000.0),
                    ),
                ],
                policy=SupervisorPolicy(statement_deadline=50.0),
            )
        )
        server.execute("SELECT id FROM accounts")  # quarantine; replay stalls
        ib = server.replica("IB")
        assert ib.state is ReplicaState.QUARANTINED
        for _ in range(16):
            server.execute("SELECT 1")
            if ib.state is ReplicaState.RETIRED:
                break
        assert ib.state is ReplicaState.RETIRED
        assert server.stats.retirements == 1
        assert server.stats.recovery_timeouts >= server.policy.circuit_threshold
        entries = [e for e in server.timeout_audit if e.during_recovery]
        assert entries and all(e.kind == "stall" for e in entries)
        # The healthy pair kept serving throughout.
        result = server.execute("SELECT id FROM accounts ORDER BY id")
        assert [row[0] for row in result.rows] == [1, 2]

    def test_recovery_deadline_falls_back_to_statement_deadline(self):
        assert SupervisorPolicy(
            statement_deadline=50.0
        ).effective_recovery_deadline == 50.0
        assert SupervisorPolicy(
            statement_deadline=50.0, recovery_deadline=200.0
        ).effective_recovery_deadline == 200.0
        assert SupervisorPolicy().effective_recovery_deadline is None


class TestPerformanceRatioEpsilon:
    def answers(self, costs):
        return [
            ReplicaAnswer(replica=f"R{i}", status="ok", virtual_cost=cost)
            for i, cost in enumerate(costs)
        ]

    def flagged(self, costs):
        server = DiverseServer(
            [make_server("IB"), make_server("OR")], adjudication="compare"
        )
        server._check_performance(self.answers(costs))
        return server.stats.performance_anomalies == 1

    def test_sub_unit_costs_are_not_masked(self):
        # Satellite S1: the old check clamped the fastest cost up to
        # 1.0, so a 500x straggler among sub-unit costs went unseen.
        assert self.flagged([0.001, 0.5])

    def test_ratio_boundary(self):
        assert not self.flagged([1.0, 100.0])
        assert self.flagged([1.0, 100.0 + 1e-6])

    def test_zero_cost_does_not_blow_up(self):
        assert self.flagged([0.0, 1e-6])
        assert not self.flagged([0.0, 1e-12])


class FlakyEndpoint:
    """Raises SqlError for the first ``failures`` statements."""

    def __init__(self, failures):
        self.failures = failures

    def execute(self, sql):
        if self.failures > 0 and sql.strip().upper() not in ("ROLLBACK",):
            self.failures -= 1
            raise SqlError("synthetic failure")
        return None


class SlowEndpoint:
    """Answers everything, at a fixed virtual cost per statement."""

    class _Result:
        def __init__(self, virtual_cost):
            self.virtual_cost = virtual_cost

    def __init__(self, cost_per_statement):
        self.cost = cost_per_statement

    def execute(self, sql):
        return self._Result(self.cost)


class TestWorkloadAccounting:
    def run_one(self, endpoint, **kwargs):
        runner = WorkloadRunner(endpoint, **kwargs)
        return runner.run(1, generator=TpccGenerator(seed=1))

    def test_aborted_transactions_not_double_counted(self):
        # Satellite S2: a transaction burning its whole retry budget is
        # ONE aborted transaction over four aborted attempts.
        metrics = self.run_one(FlakyEndpoint(failures=10 ** 6), retries=3)
        assert metrics.transactions == 1
        assert metrics.aborted_transactions == 1
        assert metrics.aborted_attempts == 4
        assert metrics.exhausted_retries == 1
        assert metrics.retried_successes == 0

    def test_retried_success_still_counts_one_abort(self):
        metrics = self.run_one(FlakyEndpoint(failures=1), retries=3)
        assert metrics.aborted_transactions == 1
        assert metrics.aborted_attempts == 1
        assert metrics.retried_successes == 1
        assert metrics.exhausted_retries == 0

    def test_transaction_deadline_aborts_over_budget_attempts(self):
        metrics = self.run_one(
            SlowEndpoint(cost_per_statement=300.0), transaction_deadline=500.0
        )
        assert metrics.deadline_aborts == 1
        assert metrics.timed_out_statements == 1
        assert metrics.aborted_transactions == 1
        assert not metrics.failure_free

    def test_transaction_deadline_validation(self):
        with pytest.raises(ValueError):
            WorkloadRunner(SlowEndpoint(1.0), transaction_deadline=0.0)

    def test_client_sees_middleware_statement_timeout(self):
        # End to end: every replica hangs on the stock-level query, so
        # the middleware's StatementTimeout reaches the client, which
        # aborts and accounts for it.
        faults = {
            key: FaultSpec(
                f"T-HANG-{key}",
                "hangs on stock-level analysis queries",
                SqlPatternTrigger(r"COUNT\s*\(\s*DISTINCT\s+s_i_id"),
                HangEffect(),
            )
            for key in ("IB", "OR", "MS")
        }
        server = DiverseServer(
            [make_server(key, [fault]) for key, fault in faults.items()],
            adjudication="majority",
            policy=SupervisorPolicy(statement_deadline=50.0),
        )
        runner = WorkloadRunner(server, seed=3)
        runner.setup()
        metrics = runner.run(40)
        assert metrics.timed_out_statements >= 1
        assert metrics.deadline_aborts >= 1
        assert not metrics.failure_free


class TestTimeoutPolicyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeoutPolicyModel(deadline=0.0)
        with pytest.raises(ValueError):
            TimeoutPolicyModel(deadline=10.0, cost_median=0.0)
        with pytest.raises(ValueError):
            TimeoutPolicyModel(deadline=10.0, cost_sigma=-1.0)

    def test_hangs_always_detected_at_the_deadline(self):
        model = TimeoutPolicyModel(deadline=50.0)
        assert model.hang_detection_probability == 1.0
        assert model.detection_latency == 50.0

    def test_false_positive_rate_falls_as_deadline_grows(self):
        rates = [
            TimeoutPolicyModel(deadline=d).false_positive_rate for d in (2.0, 5.0, 20.0)
        ]
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] < 1e-6

    def test_stall_detection_falls_as_deadline_grows(self):
        tight = TimeoutPolicyModel(deadline=50.0, stall_delay=100.0)
        loose = TimeoutPolicyModel(deadline=300.0, stall_delay=100.0)
        # A deadline inside the stall delay cannot miss the stall.
        assert tight.stall_detection_probability == 1.0
        assert loose.stall_detection_probability < tight.stall_detection_probability

    def test_deterministic_costs_make_a_step_function(self):
        below = TimeoutPolicyModel(deadline=0.9, cost_median=1.0, cost_sigma=0.0)
        above = TimeoutPolicyModel(deadline=1.1, cost_median=1.0, cost_sigma=0.0)
        assert below.false_positive_rate == 1.0
        assert above.false_positive_rate == 0.0

    def test_spurious_failures_inflate_effective_failure_rate(self):
        model = TimeoutPolicyModel(deadline=3.0, cost_sigma=1.0)
        repair = QuarantinePolicyModel(success_probability=0.9)
        watched = model.effective_replica(0.001, repair, statement_rate=10.0)
        unwatched = repair.effective_replica(0.001)
        assert model.spurious_failure_rate(10.0) > 0.0
        assert watched.failure_rate > unwatched.failure_rate
        assert 0.0 < watched.availability < unwatched.availability
        with pytest.raises(ValueError):
            model.spurious_failure_rate(-1.0)
