"""Static transaction-conflict analysis and the admission path it unlocks.

Three layers under test: the statement-pair classifier and footprint
certificates, the whole-interleaving serializability verdicts (with the
concurrency-anomaly bank the lint gates), and the served dispatcher's
conflict-aware admission — commuting reads served mid-transaction,
everything unproven parked exactly as before.
"""

import dataclasses

import pytest

from repro.analysis import statement_def_use
from repro.analysis.conflicts import (
    AnomalyKind,
    ConflictKind,
    VerdictStatus,
    analyze_sessions,
    classify_statements,
    commutes_with_footprint,
    concurrency_fault_bank,
    session_transactions,
)
from repro.analysis.schema import ScriptSchema
from repro.faults import (
    Detectability,
    FailureKind,
    FaultSpec,
    LostUpdateEffect,
    SqlPatternTrigger,
)
from repro.faults.audit import dead_concurrency_faults
from repro.middleware import DiverseServer
from repro.net import (
    ClientPolicy,
    NetPolicy,
    NetServer,
    SessionSupervisor,
    SimulatedNetwork,
)
from repro.net import protocol
from repro.servers import make_server
from repro.sqlengine.analysis import extract_traits
from repro.sqlengine.parser import parse_statement
from repro.workload import WorkloadRunner, run_interleaved

TABLE_T = "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT)"
TABLE_U = "CREATE TABLE u (id INT PRIMARY KEY, x INT)"


def schema_for(*ddl):
    schema = ScriptSchema()
    for sql in ddl:
        schema.observe(parse_statement(sql))
    return schema


def def_use_of(sql, schema):
    stmt = parse_statement(sql)
    return statement_def_use(stmt, schema, extract_traits(stmt))


class TestPairClassifier:
    def classify(self, sql_a, sql_b):
        return classify_statements(sql_a, sql_b, schema_for(TABLE_T, TABLE_U))

    def test_two_reads_commute(self):
        pair = self.classify(
            "SELECT a FROM t WHERE id = 1", "SELECT a FROM t WHERE id = 2"
        )
        assert pair.kind is ConflictKind.COMMUTES
        assert pair.cells == ()

    def test_read_of_written_column_is_rw(self):
        pair = self.classify(
            "SELECT a FROM t WHERE id = 1", "UPDATE t SET a = 5 WHERE id = 1"
        )
        assert pair.kind is ConflictKind.RW_CONFLICT
        assert ("t", "a") in pair.cells

    def test_read_of_untouched_column_commutes(self):
        pair = self.classify(
            "SELECT b FROM t WHERE id = 2", "UPDATE t SET a = 5 WHERE id = 1"
        )
        assert pair.kind is ConflictKind.COMMUTES

    def test_overlapping_writes_are_ww(self):
        pair = self.classify(
            "UPDATE t SET a = 5 WHERE id = 1", "UPDATE t SET a = 9 WHERE id = 1"
        )
        assert pair.kind is ConflictKind.WW_CONFLICT
        assert ("t", "a") in pair.cells

    def test_insert_against_read_is_phantom_risk(self):
        pair = self.classify(
            "SELECT b FROM t WHERE a > 3", "INSERT INTO t VALUES (9, 1, 2)"
        )
        assert pair.kind is ConflictKind.PHANTOM_RISK

    def test_cross_table_statements_commute(self):
        pair = self.classify(
            "UPDATE t SET a = 5 WHERE id = 1", "SELECT x FROM u WHERE id = 1"
        )
        assert pair.kind is ConflictKind.COMMUTES

    def test_txn_barrier_conflicts_with_everything(self):
        pair = self.classify("COMMIT", "SELECT a FROM t WHERE id = 1")
        assert pair.kind is ConflictKind.WW_CONFLICT
        assert pair.cells == ()


class TestFootprintCertificates:
    SCHEMA = (TABLE_T, TABLE_U)

    def certificate(self, sql, writes):
        schema = schema_for(*self.SCHEMA)
        return commutes_with_footprint(def_use_of(sql, schema), writes)

    def test_disjoint_read_commutes(self):
        assert self.certificate("SELECT b FROM t WHERE id = 2", {("t", "a")})
        assert self.certificate("SELECT x FROM u WHERE id = 1", {("t", "a")})

    def test_read_of_written_cell_does_not(self):
        assert not self.certificate("SELECT a FROM t WHERE id = 1", {("t", "a")})

    def test_star_read_never_commutes_with_table_write(self):
        assert not self.certificate("SELECT * FROM t", {("t", "a")})

    def test_membership_write_blocks_any_read_of_relation(self):
        # An INSERT/DELETE in the footprint widens to (t, *): the row
        # set is in flux, so even a disjoint-column read must park.
        assert not self.certificate("SELECT b FROM t WHERE id = 2", {("t", "*")})

    def test_writes_never_commute_even_when_disjoint(self):
        assert not self.certificate("UPDATE u SET x = 1 WHERE id = 1", {("t", "a")})

    def test_barriers_never_commute(self):
        assert not self.certificate("COMMIT", set())


class TestSessionSegmentation:
    SCRIPT = (
        "INSERT INTO t VALUES (3, 1, 2);\n"
        "BEGIN;\n"
        "SELECT a FROM t WHERE id = 1;\n"
        "UPDATE t SET a = 5 WHERE id = 1;\n"
        "COMMIT;\n"
        "BEGIN;\n"
        "UPDATE t SET b = 9 WHERE id = 2;\n"
        "ROLLBACK;\n"
        "BEGIN;\n"
        "SELECT b FROM t WHERE id = 2"
    )

    def test_segments_explicit_and_autocommit(self):
        txns = session_transactions(self.SCRIPT, 3, setup=TABLE_T)
        assert [t.label for t in txns] == ["S3.T0", "S3.T1", "S3.T2", "S3.T3"]
        assert [t.explicit for t in txns] == [False, True, True, True]
        # ROLLBACK closes T2 uncommitted; the unterminated trailing
        # BEGIN is conservatively uncommitted too.
        assert [t.committed for t in txns] == [True, True, False, False]
        assert [len(t.statements) for t in txns] == [1, 2, 1, 1]

    def test_statement_indices_count_barriers(self):
        txns = session_transactions(self.SCRIPT, 0, setup=TABLE_T)
        # BEGIN/COMMIT consume script positions: T1's statements sit at
        # indices 2 and 3 of the raw statement list.
        assert [s.index for s in txns[1].statements] == [2, 3]

    def test_footprints_aggregate_over_statements(self):
        txns = session_transactions(self.SCRIPT, 0, setup=TABLE_T)
        assert ("t", "a") in txns[1].writes
        assert ("t", "a") in txns[1].reads
        assert txns[1].multi_statement
        assert not txns[0].multi_statement


class TestInterleavingVerdicts:
    def test_disjoint_tables_prove_serializable(self):
        report = analyze_sessions(
            (
                "BEGIN; SELECT a FROM t WHERE id = 1; "
                "UPDATE t SET a = 2 WHERE id = 1; COMMIT",
                "BEGIN; SELECT x FROM u WHERE id = 1; "
                "UPDATE u SET x = 2 WHERE id = 1; COMMIT",
            ),
            setup=f"{TABLE_T};\n{TABLE_U}",
        )
        assert report.verdict.status is VerdictStatus.SERIALIZABLE_PROVEN
        assert report.verdict.anomalies == ()
        assert report.pair_counts[ConflictKind.COMMUTES] > 0

    def test_unparseable_script_is_unknown(self):
        report = analyze_sessions(("FROBNICATE THE THING",))
        assert report.verdict.status is VerdictStatus.UNKNOWN
        assert "defeated" in report.verdict.reason

    def test_bank_anomalies_are_all_predicted(self):
        for entry in concurrency_fault_bank():
            report = analyze_sessions(entry.sessions, setup=entry.setup)
            assert report.verdict.status is VerdictStatus.ANOMALY_POSSIBLE
            assert entry.anomaly.value in report.verdict.anomaly_kinds, entry.bug_id

    def test_lost_update_witness_is_a_wedge(self):
        entry = next(
            e for e in concurrency_fault_bank()
            if e.anomaly is AnomalyKind.LOST_UPDATE
        )
        report = analyze_sessions(entry.sessions, setup=entry.setup)
        witness = next(
            w for w in report.verdict.anomalies
            if w.kind is AnomalyKind.LOST_UPDATE
        )
        assert ("account", "balance") in witness.cells
        assert set(witness.transactions) == {"S0.T0", "S1.T0"}
        # The schedule wedges one whole transaction inside the other:
        # first and last steps belong to the outer transaction's session.
        sessions = [step.session for step in witness.schedule]
        outer = sessions[0]
        assert sessions[-1] == outer
        assert any(s != outer for s in sessions[1:-1])
        assert str(witness.schedule[0]).startswith(f"S{outer}[")

    def test_write_skew_needs_no_ww_overlap(self):
        entry = next(
            e for e in concurrency_fault_bank()
            if e.anomaly is AnomalyKind.WRITE_SKEW
        )
        report = analyze_sessions(entry.sessions, setup=entry.setup)
        assert report.pair_counts[ConflictKind.RW_CONFLICT] > 0
        assert "write_skew" in report.verdict.anomaly_kinds


# -- the served admission path ----------------------------------------------

SETUP = (
    TABLE_T,
    "INSERT INTO t VALUES (1, 10, 100)",
    "INSERT INTO t VALUES (2, 20, 200)",
    TABLE_U,
    "INSERT INTO u VALUES (1, 7)",
)

HOLDER_WRITE = "UPDATE t SET a = 11 WHERE id = 1"


def deployment(conflict_admission=True, **policy_kwargs):
    server = DiverseServer(
        [make_server("IB"), make_server("OR"), make_server("MS")],
        adjudication="majority",
    )
    policy_kwargs.setdefault("idle_deadline", 100_000.0)
    policy_kwargs.setdefault("queue_deadline", 50_000.0)
    policy = NetPolicy(conflict_admission=conflict_admission, **policy_kwargs)
    net_server = NetServer(server, policy)
    return server, net_server, SimulatedNetwork(net_server)


def handshake(network):
    port = network.connect()
    welcome = port.request(protocol.hello(), 8.0)
    return port, welcome["session"], welcome["token"]


def open_holder(network):
    """Schema + population, then a transaction left open mid-write."""
    port, session, token = handshake(network)
    seq = 0
    for sql in SETUP + ("BEGIN", HOLDER_WRITE):
        seq += 1
        reply = port.request(protocol.execute(session, token, seq, sql), 8.0)
        assert reply["type"] == "result", reply
    return port, session, token, seq


class TestConflictAdmission:
    def test_commuting_read_served_mid_transaction(self):
        _, net_server, network = deployment()
        open_holder(network)
        port, session, token = handshake(network)
        reply = port.request(
            protocol.execute(session, token, 1, "SELECT b FROM t WHERE id = 2"), 8.0
        )
        assert reply["type"] == "result"
        assert reply["rows"] == [[200]]
        assert net_server.stats.admitted_commuting == 1
        assert net_server.stats.parked_statements == 0

    def test_conflicting_read_parks_and_drains_after_commit(self):
        _, net_server, network = deployment()
        holder, hsession, htoken, seq = open_holder(network)
        port, session, token = handshake(network)
        port.send(
            protocol.execute(session, token, 1, "SELECT a FROM t WHERE id = 1")
        )
        network.pump()
        assert net_server.stats.parked_statements == 1
        assert net_server.stats.admitted_commuting == 0
        holder.request(protocol.execute(hsession, htoken, seq + 1, "COMMIT"), 8.0)
        network.pump()
        reply = port.recv(4.0)
        assert reply["type"] == "result"
        # Drained after COMMIT, so the reader observes the committed
        # write — exactly the PR 7 parking semantics for conflicts.
        assert reply["rows"] == [[11]]

    def test_disjoint_write_still_parks(self):
        # A write would land inside the holder's engine transaction and
        # be erased by its ROLLBACK: no certificate, however disjoint.
        _, net_server, network = deployment()
        holder, hsession, htoken, seq = open_holder(network)
        port, session, token = handshake(network)
        port.send(
            protocol.execute(session, token, 1, "UPDATE u SET x = 8 WHERE id = 1")
        )
        network.pump()
        assert net_server.stats.parked_statements == 1
        holder.request(protocol.execute(hsession, htoken, seq + 1, "ROLLBACK"), 8.0)
        network.pump()
        reply = port.recv(4.0)
        assert reply["type"] == "result"
        probe = port.request(
            protocol.execute(session, token, 2, "SELECT x FROM u WHERE id = 1"), 8.0
        )
        assert probe["rows"] == [[8]]

    def test_prepare_is_always_admitted(self):
        _, net_server, network = deployment()
        open_holder(network)
        port, session, token = handshake(network)
        reply = port.request(
            protocol.prepare(session, token, 1, "SELECT a FROM t WHERE id = ?"), 8.0
        )
        assert reply["type"] == "prepared"
        assert net_server.stats.admitted_commuting == 1

    def test_unknown_handle_parks_as_unknown(self):
        _, net_server, network = deployment()
        holder, hsession, htoken, seq = open_holder(network)
        port, session, token = handshake(network)
        port.send(protocol.execute(session, token, 1, "", handle=999))
        network.pump()
        assert net_server.stats.parked_statements == 1
        assert net_server.stats.parked_unknown == 1
        holder.request(protocol.execute(hsession, htoken, seq + 1, "COMMIT"), 8.0)
        network.pump()
        assert port.recv(4.0)["type"] == "error"

    def test_knob_off_restores_blanket_parking(self):
        _, net_server, network = deployment(conflict_admission=False)
        open_holder(network)
        port, session, token = handshake(network)
        port.send(
            protocol.execute(session, token, 1, "SELECT b FROM t WHERE id = 2")
        )
        network.pump()
        assert net_server.stats.parked_statements == 1
        assert net_server.stats.admitted_commuting == 0

    def test_parked_queue_observability(self):
        _, net_server, network = deployment()
        holder, hsession, htoken, seq = open_holder(network)
        readers = [handshake(network) for _ in range(2)]
        for port, session, token in readers:
            port.send(
                protocol.execute(session, token, 1, "SELECT a FROM t WHERE id = 1")
            )
        network.pump()
        assert net_server.stats.max_parked_depth == 2
        holder.request(protocol.execute(hsession, htoken, seq + 1, "COMMIT"), 8.0)
        network.pump()
        stats = net_server.stats
        assert stats.parked_wait_total >= stats.parked_wait_max > 0
        exported = stats.as_dict()
        for key in (
            "admitted_commuting",
            "parked_unknown",
            "max_parked_depth",
            "parked_wait_total",
            "parked_wait_max",
        ):
            assert key in exported


class TestInterleavedConflictingTerminals:
    def test_unknown_granularity_is_rejected(self):
        with pytest.raises(ValueError):
            run_interleaved([], 1, granularity="bogus")

    def test_statement_granularity_served_terminals_stay_consistent(self):
        # Two TPC-C terminals interleaved after *every statement*, so
        # each terminal's statements land inside the other's open
        # transactions: commuting reads get admitted, conflicts park
        # (and shed at the queue deadline, absorbed by client retries).
        server, net_server, network = deployment(queue_deadline=12.0)
        supervisors = [
            SessionSupervisor(
                network,
                policy=ClientPolicy(request_timeout=24.0, circuit_threshold=16),
            )
            for _ in range(2)
        ]
        runners = [
            WorkloadRunner(supervisor, seed=11 + i, retries=6)
            for i, supervisor in enumerate(supervisors)
        ]
        runners[0].setup()
        metrics = run_interleaved(runners, 5, granularity="statement")
        assert metrics.transactions == 10
        assert metrics.statements > 0
        assert metrics.detected_disagreements == 0
        assert metrics.crashes == 0
        stats = net_server.stats
        assert stats.admitted_commuting + stats.parked_statements > 0
        assert not server.verify_consistency()

    def test_transaction_granularity_never_interleaves_mid_txn(self):
        server, net_server, network = deployment()
        supervisors = [
            SessionSupervisor(network, policy=ClientPolicy(request_timeout=16.0))
            for _ in range(2)
        ]
        runners = [
            WorkloadRunner(supervisor, seed=21 + i, retries=2)
            for i, supervisor in enumerate(supervisors)
        ]
        runners[0].setup()
        metrics = run_interleaved(runners, 4, granularity="transaction")
        assert metrics.transactions == 8
        # Whole transactions rotate: nothing ever arrives mid-txn, so
        # the admission path has no decisions to make.
        assert net_server.stats.admitted_commuting == 0
        assert net_server.stats.parked_statements == 0
        assert not server.verify_consistency()


# -- the lint gates ----------------------------------------------------------


def unreachable_entry():
    """A bank entry whose fault trigger matches none of its statements."""
    entry = concurrency_fault_bank()[0]
    dead = FaultSpec(
        "CONC-DEAD",
        "trigger pattern matches nothing in the repro",
        SqlPatternTrigger(r"ZZZ_NEVER_MATCHES"),
        LostUpdateEffect(delta=1),
        kind=FailureKind.CONCURRENCY,
        detectability=Detectability.NON_SELF_EVIDENT,
    )
    return dataclasses.replace(entry, bug_id="CONC-DEAD", fault=dead)


class TestConcurrencyLintGates:
    def test_shipped_bank_has_no_dead_faults(self):
        assert dead_concurrency_faults(concurrency_fault_bank()) == []

    def test_dead_trigger_is_detected(self):
        dead = dead_concurrency_faults([unreachable_entry()])
        assert [d.fault_id for d in dead] == ["CONC-DEAD"]

    def test_lint_flags_dead_concurrency_fault(self, monkeypatch):
        from repro.analysis import lint as lint_module

        monkeypatch.setattr(
            "repro.analysis.conflicts.concurrency_fault_bank",
            lambda: [unreachable_entry()],
        )
        findings = lint_module._check_concurrency_bank()
        assert [f.check for f in findings] == ["concurrency-dead-fault"]
        assert all(f.severity == "error" for f in findings)

    def test_lint_flags_certificate_drift(self, monkeypatch):
        from repro.analysis import lint as lint_module

        # Sessions on disjoint tables are serializable-proven: the bank
        # claiming a lost update there is certificate drift.
        entry = dataclasses.replace(
            concurrency_fault_bank()[0],
            sessions=(
                "SELECT balance FROM account WHERE acct_id = 1",
                "SELECT balance FROM account WHERE acct_id = 1",
            ),
        )
        monkeypatch.setattr(
            "repro.analysis.conflicts.concurrency_fault_bank", lambda: [entry]
        )
        findings = lint_module._check_concurrency_bank()
        assert "concurrency-certificate-drift" in [f.check for f in findings]

    def test_lint_exits_nonzero_on_dead_concurrency_fault(
        self, monkeypatch, corpus
    ):
        from repro.analysis import run_lint

        monkeypatch.setattr(
            "repro.analysis.conflicts.concurrency_fault_bank",
            lambda: [unreachable_entry()],
        )
        lines = []
        assert run_lint(corpus, emit=lines.append) == 1
        assert any("concurrency-dead-fault" in line for line in lines)

    def test_dead_code_findings_are_warnings(self, corpus):
        from repro.analysis import lint as lint_module

        findings = lint_module._check_dead_code(corpus)
        assert findings
        assert all(f.severity == "warning" for f in findings)
        dead_statements = [f for f in findings if f.check == "dead-statement"]
        assert dead_statements
        assert all(f.statement_index is not None for f in dead_statements)
