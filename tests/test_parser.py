"""Parser unit tests."""

from decimal import Decimal

import pytest

from repro.errors import ParseError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.parser import parse_script, parse_statement


def select_core(sql) -> ast.SelectCore:
    stmt = parse_statement(sql)
    assert isinstance(stmt, ast.SelectStatement)
    assert isinstance(stmt.body, ast.SelectCore)
    return stmt.body


class TestSelect:
    def test_simple_select(self):
        core = select_core("SELECT a, b FROM t")
        assert len(core.items) == 2
        assert isinstance(core.from_items[0], ast.TableRef)
        assert core.from_items[0].name == "t"

    def test_select_star(self):
        core = select_core("SELECT * FROM t")
        assert isinstance(core.items[0].expression, ast.Star)

    def test_qualified_star(self):
        core = select_core("SELECT t.* FROM t")
        star = core.items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "t"

    def test_aliases(self):
        core = select_core("SELECT a AS x, b y FROM t")
        assert core.items[0].alias == "x"
        assert core.items[1].alias == "y"

    def test_distinct(self):
        assert select_core("SELECT DISTINCT a FROM t").distinct
        assert not select_core("SELECT ALL a FROM t").distinct

    def test_where_group_having(self):
        core = select_core(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a HAVING COUNT(*) > 2"
        )
        assert core.where is not None
        assert len(core.group_by) == 1
        assert core.having is not None

    def test_order_by_and_limit(self):
        stmt = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 5")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 5

    def test_select_without_from(self):
        core = select_core("SELECT 1")
        assert core.from_items == []
        assert isinstance(core.items[0].expression, ast.Literal)

    def test_table_alias(self):
        core = select_core("SELECT p.a FROM product p")
        assert core.from_items[0].alias == "p"
        assert core.from_items[0].binding_name == "p"

    def test_derived_table(self):
        core = select_core("SELECT x FROM (SELECT a AS x FROM t) d")
        sub = core.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "d"

    def test_derived_table_requires_alias(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT x FROM (SELECT a FROM t)")


class TestJoins:
    @pytest.mark.parametrize(
        "sql,kind",
        [
            ("SELECT 1 FROM a JOIN b ON a.x = b.x", "INNER"),
            ("SELECT 1 FROM a INNER JOIN b ON a.x = b.x", "INNER"),
            ("SELECT 1 FROM a LEFT JOIN b ON a.x = b.x", "LEFT"),
            ("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x", "LEFT"),
            ("SELECT 1 FROM a RIGHT OUTER JOIN b ON a.x = b.x", "RIGHT"),
            ("SELECT 1 FROM a FULL OUTER JOIN b ON a.x = b.x", "FULL"),
            ("SELECT 1 FROM a CROSS JOIN b", "CROSS"),
        ],
    )
    def test_join_kinds(self, sql, kind):
        core = select_core(sql)
        join = core.from_items[0]
        assert isinstance(join, ast.Join)
        assert join.kind == kind

    def test_join_chain_left_associative(self):
        core = select_core("SELECT 1 FROM a JOIN b ON 1=1 JOIN c ON 2=2")
        outer = core.from_items[0]
        assert isinstance(outer.left, ast.Join)
        assert outer.right.name == "c"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM a JOIN b")

    def test_comma_join(self):
        core = select_core("SELECT 1 FROM a, b")
        assert len(core.from_items) == 2


class TestSetOperations:
    def test_union(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(stmt.body, ast.SetOperation)
        assert stmt.body.op == "UNION"
        assert not stmt.body.all

    def test_union_all(self):
        stmt = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.body.all

    @pytest.mark.parametrize("op", ["INTERSECT", "EXCEPT"])
    def test_other_set_ops(self, op):
        stmt = parse_statement(f"SELECT a FROM t {op} SELECT b FROM u")
        assert stmt.body.op == op

    def test_parenthesised_operands(self):
        stmt = parse_statement("(SELECT a FROM t) UNION (SELECT b FROM u)")
        assert isinstance(stmt.body, ast.SetOperation)

    def test_cores_helper(self):
        stmt = parse_statement("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert len(stmt.cores()) == 3


class TestExpressions:
    def test_precedence_multiplication_before_addition(self):
        core = select_core("SELECT 1 + 2 * 3")
        expr = core.items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_and_or(self):
        core = select_core("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert core.where.op == "OR"
        assert core.where.right.op == "AND"

    def test_not(self):
        core = select_core("SELECT 1 FROM t WHERE NOT a = 1")
        assert isinstance(core.where, ast.UnaryOp)
        assert core.where.op == "NOT"

    def test_comparison_normalisation(self):
        core = select_core("SELECT 1 FROM t WHERE a != 1")
        assert core.where.op == "<>"

    def test_literals(self):
        core = select_core("SELECT 1, 1.5, 'x', NULL, TRUE, FALSE")
        values = [item.expression.value for item in core.items]
        assert values == [1, Decimal("1.5"), "x", None, True, False]

    def test_scientific_literal_is_float(self):
        core = select_core("SELECT 1e3")
        assert isinstance(core.items[0].expression.value, float)

    def test_unary_minus(self):
        core = select_core("SELECT -5")
        expr = core.items[0].expression
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"

    def test_between(self):
        core = select_core("SELECT 1 FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(core.where, ast.BetweenPredicate)

    def test_not_between(self):
        core = select_core("SELECT 1 FROM t WHERE a NOT BETWEEN 1 AND 10")
        assert core.where.negated

    def test_like_with_escape(self):
        core = select_core("SELECT 1 FROM t WHERE a LIKE 'x%' ESCAPE '!'")
        assert isinstance(core.where, ast.LikePredicate)
        assert core.where.escape is not None

    def test_in_list(self):
        core = select_core("SELECT 1 FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(core.where, ast.InPredicate)
        assert len(core.where.values) == 3

    def test_in_subquery(self):
        core = select_core("SELECT 1 FROM t WHERE a IN (SELECT b FROM u)")
        assert core.where.subquery is not None

    def test_not_in_union_subquery(self):
        core = select_core(
            "SELECT 1 FROM t WHERE a NOT IN ((SELECT b FROM u) UNION (SELECT c FROM v))"
        )
        assert core.where.negated
        assert isinstance(core.where.subquery.body, ast.SetOperation)

    def test_exists(self):
        core = select_core("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(core.where, ast.ExistsPredicate)

    def test_is_null_and_is_not_null(self):
        core = select_core("SELECT 1 FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert isinstance(core.where.left, ast.IsNullPredicate)
        assert core.where.right.negated

    def test_scalar_subquery(self):
        core = select_core("SELECT (SELECT MAX(a) FROM t)")
        assert isinstance(core.items[0].expression, ast.ScalarSubquery)

    def test_case_searched(self):
        core = select_core("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
        expr = core.items[0].expression
        assert isinstance(expr, ast.CaseExpr)
        assert expr.operand is None

    def test_case_simple(self):
        core = select_core("SELECT CASE a WHEN 1 THEN 'one' END FROM t")
        assert core.items[0].expression.operand is not None

    def test_case_without_when_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT CASE ELSE 1 END")

    def test_cast(self):
        core = select_core("SELECT CAST(a AS VARCHAR(10)) FROM t")
        expr = core.items[0].expression
        assert isinstance(expr, ast.CastExpr)
        assert expr.type_name == "VARCHAR"
        assert expr.type_args == (10, None)

    def test_function_call(self):
        core = select_core("SELECT UPPER(name) FROM t")
        assert core.items[0].expression.name == "UPPER"

    def test_count_star(self):
        core = select_core("SELECT COUNT(*) FROM t")
        assert core.items[0].expression.star

    def test_count_distinct(self):
        core = select_core("SELECT COUNT(DISTINCT a) FROM t")
        assert core.items[0].expression.distinct

    def test_concat_operator(self):
        core = select_core("SELECT a || b FROM t")
        assert core.items[0].expression.op == "||"

    def test_qualified_column(self):
        core = select_core("SELECT t.a FROM t")
        ref = core.items[0].expression
        assert ref.table == "t" and ref.name == "a"


class TestDDL:
    def test_create_table_columns(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10) NOT NULL, "
            "c NUMERIC(8,2) DEFAULT 0, d INTEGER CHECK (d > 0), e INTEGER UNIQUE)"
        )
        assert isinstance(stmt, ast.CreateTable)
        a, b, c, d, e = stmt.columns
        assert a.primary_key and a.not_null
        assert b.not_null
        assert isinstance(c.default, ast.Literal)
        assert d.check is not None
        assert e.unique

    def test_create_table_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b), "
            "UNIQUE (b), CHECK (a < b))"
        )
        kinds = [c.kind for c in stmt.constraints]
        assert kinds == ["PRIMARY KEY", "UNIQUE", "CHECK"]

    def test_create_table_multiword_type(self):
        stmt = parse_statement("CREATE TABLE t (x DOUBLE PRECISION)")
        assert stmt.columns[0].type_name == "DOUBLE PRECISION"

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v (x) AS SELECT a FROM t")
        assert isinstance(stmt, ast.CreateView)
        assert stmt.column_names == ["x"]

    def test_create_index_variants(self):
        plain = parse_statement("CREATE INDEX ix ON t (a)")
        unique = parse_statement("CREATE UNIQUE INDEX ix ON t (a, b)")
        clustered = parse_statement("CREATE CLUSTERED INDEX ix ON t (a)")
        assert not plain.unique and not plain.clustered
        assert unique.unique and unique.columns == ["a", "b"]
        assert clustered.clustered

    def test_drop_statements(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTable)
        assert isinstance(parse_statement("DROP VIEW v"), ast.DropView)
        assert isinstance(parse_statement("DROP INDEX ix"), ast.DropIndex)

    def test_alter_add_column(self):
        stmt = parse_statement("ALTER TABLE t ADD COLUMN x INTEGER DEFAULT 1")
        assert isinstance(stmt, ast.AlterTableAddColumn)
        assert stmt.column.name == "x"

    def test_references_clause(self):
        stmt = parse_statement("CREATE TABLE t (a INTEGER REFERENCES u (id))")
        assert stmt.columns[0].references == ("u", "id")


class TestDML:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_statement("INSERT INTO t VALUES (1)")
        assert stmt.columns is None

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t (a) SELECT b FROM u")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None


class TestTransactions:
    def test_begin_commit_rollback(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginTransaction)
        assert isinstance(parse_statement("BEGIN WORK"), ast.BeginTransaction)
        assert isinstance(parse_statement("COMMIT"), ast.Commit)
        assert isinstance(parse_statement("ROLLBACK"), ast.Rollback)

    def test_savepoints(self):
        assert parse_statement("SAVEPOINT sp1").name == "sp1"
        stmt = parse_statement("ROLLBACK TO SAVEPOINT sp1")
        assert stmt.savepoint == "sp1"


class TestScripts:
    def test_parse_script_multiple(self):
        statements = parse_script("SELECT 1; SELECT 2; SELECT 3;")
        assert len(statements) == 3

    def test_empty_statements_skipped(self):
        assert len(parse_script(";;SELECT 1;;")) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")

    def test_helpful_error_on_nonsense(self):
        with pytest.raises(ParseError):
            parse_statement("FROB the data")
