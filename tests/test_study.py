"""Study harness tests: classifier units plus the headline result —
the executed study reproduces the paper's Tables 1-4."""


from repro.bugs import groundtruth as gt
from repro.faults.spec import FailureKind
from repro.study import (
    OutcomeKind,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    failure_type_shares,
)
from repro.study.classify import ScriptOutcome, StatementOutcome, classify_run
from repro.study.runner import split_statements
from repro.study.tables import heisenbug_extras


def ok(rows=((1,),), cost=1.0, columns=("a",)):
    return StatementOutcome(
        status="ok", columns=columns, rows=tuple(rows), rowcount=len(rows),
        virtual_cost=cost,
    )


def err():
    return StatementOutcome(status="error", error="boom")


class TestClassifier:
    def test_identical_runs_are_no_failure(self):
        outcome = classify_run(
            ScriptOutcome([ok(), ok()]), ScriptOutcome([ok(), ok()])
        )
        assert outcome.kind is OutcomeKind.NO_FAILURE

    def test_crash_classified(self):
        faulty = ScriptOutcome([ok(), StatementOutcome(status="crash")], crashed=True)
        outcome = classify_run(faulty, ScriptOutcome([ok(), ok()]))
        assert outcome.failure_kind is FailureKind.ENGINE_CRASH
        assert outcome.self_evident

    def test_spurious_error_is_self_evident_incorrect(self):
        outcome = classify_run(ScriptOutcome([err()]), ScriptOutcome([ok()]))
        assert outcome.failure_kind is FailureKind.INCORRECT_RESULT
        assert outcome.self_evident

    def test_wrong_rows_are_non_self_evident(self):
        outcome = classify_run(
            ScriptOutcome([ok(rows=((1,), (2,)))]), ScriptOutcome([ok(rows=((1,),))])
        )
        assert outcome.failure_kind is FailureKind.INCORRECT_RESULT
        assert not outcome.self_evident

    def test_silent_acceptance_is_non_self_evident(self):
        # Faulty succeeds where the oracle errors (DROP TABLE on a view).
        outcome = classify_run(ScriptOutcome([ok()]), ScriptOutcome([err()]))
        assert outcome.kind is OutcomeKind.FAILURE
        assert not outcome.self_evident
        assert outcome.failure_kind is FailureKind.INCORRECT_RESULT

    def test_matching_errors_are_no_failure(self):
        outcome = classify_run(ScriptOutcome([err()]), ScriptOutcome([err()]))
        assert outcome.kind is OutcomeKind.NO_FAILURE

    def test_performance_failure(self):
        outcome = classify_run(
            ScriptOutcome([ok(cost=500.0)]), ScriptOutcome([ok(cost=1.0)])
        )
        assert outcome.failure_kind is FailureKind.PERFORMANCE
        assert outcome.self_evident

    def test_performance_needs_correct_output(self):
        # Wrong rows dominate slowness: classified as incorrect result.
        outcome = classify_run(
            ScriptOutcome([ok(rows=((9,),), cost=500.0)]),
            ScriptOutcome([ok(rows=((1,),), cost=1.0)]),
        )
        assert outcome.failure_kind is FailureKind.INCORRECT_RESULT

    def test_rowcount_only_diff_is_other(self):
        faulty = StatementOutcome(status="ok", columns=("a",), rows=((1,),), rowcount=5)
        outcome = classify_run(ScriptOutcome([faulty]), ScriptOutcome([ok()]))
        assert outcome.failure_kind is FailureKind.OTHER
        assert not outcome.self_evident

    def test_column_name_diff_is_failure(self):
        faulty = ok(columns=("",))
        outcome = classify_run(ScriptOutcome([faulty]), ScriptOutcome([ok()]))
        assert outcome.kind is OutcomeKind.FAILURE
        assert not outcome.self_evident


class TestSplitStatements:
    def test_splits_on_semicolons(self):
        assert len(split_statements("SELECT 1; SELECT 2; SELECT 3")) == 3

    def test_string_semicolons_preserved(self):
        parts = split_statements("SELECT 'a;b'; SELECT 2")
        assert len(parts) == 2
        assert "a;b" in parts[0]

    def test_empty_statements_skipped(self):
        assert len(split_statements(";;SELECT 1;;")) == 1


class TestStudyReproducesPaper:
    """The headline: our executed study reproduces the published tables."""

    def test_table1_exact(self, study):
        table = build_table1(study)
        for reported, targets in gt.PAPER_TABLE1.items():
            for target, expected in targets.items():
                for key, value in expected.items():
                    assert table[reported][target][key] == value, (
                        reported, target, key,
                    )

    def test_table2_within_documented_deviations(self, study):
        table = build_table2(study)
        for group, paper in gt.PAPER_TABLE2.items():
            expected = gt.TABLE2_KNOWN_DEVIATIONS.get(group, paper)
            row = table[group]
            assert (row.total, row.none_fail, row.one_fails, row.two_fail) == expected, group

    def test_no_bug_fails_more_than_two_servers(self, study):
        table = build_table2(study)
        assert all(row.more_than_two == 0 for row in table.values())

    def test_table3_exact(self, study):
        table = build_table3(study)
        for pair, expected in gt.PAPER_TABLE3.items():
            row = table[pair]
            assert (
                row.run,
                row.fail_any,
                row.one_se,
                row.one_nse,
                row.both_nondetectable,
                row.both_detectable_se,
                row.both_detectable_nse,
            ) == expected, pair

    def test_table4_exact(self, study):
        table = build_table4(study)
        for reported, columns in gt.PAPER_TABLE4.items():
            for target, value in columns.items():
                assert table[reported][target] == value, (reported, target)

    def test_only_four_nondetectable_bugs(self, study):
        table = build_table3(study)
        assert sum(row.both_nondetectable for row in table.values()) == 4

    def test_identical_pairs_triage(self, study):
        """The four non-detectable cells are genuinely identical wrong
        answers: the shared evaluator renders identically, so none is a
        dialect artifact and none is left unexplained."""
        from repro.study import separate_identical_pairs

        breakdown = separate_identical_pairs(study)
        assert len(breakdown.identical_incorrect) == 4
        assert breakdown.dialect_artifacts == []
        assert breakdown.unexplained == []

    def test_detectability_at_least_94_percent(self, study):
        # Section 4.3: "diversity allows detection of failures for at
        # least 94% of these bugs" in every 2-version pair.
        table = build_table3(study)
        for pair, row in table.items():
            assert row.detectable_fraction >= 0.94, pair

    def test_heisenbug_extra_is_56775(self, study):
        extras = heisenbug_extras(study)
        assert len(extras) == 1
        bug_id, failed = extras[0]
        assert bug_id == "MS-56775" and failed == frozenset({"PG"})

    def test_failure_shares_match_section7(self, study):
        shares = failure_type_shares(study)
        assert shares.total_failures == 152
        assert round(100 * shares.incorrect_fraction, 1) == 64.5
        assert round(100 * shares.crash_fraction, 1) == 17.1

    def test_oracle_never_fails_foreign_bugs(self, study):
        # Section 7: "Oracle was the only server that never failed when
        # running on it the reported bugs of the other servers."
        for report in study.corpus:
            if report.reported_for == "OR":
                continue
            assert not study.outcome(report.bug_id, "OR").failed, report.bug_id

    def test_ground_truth_classifications_match_observations(self, study):
        """Every bug's observed (kind, detectability) matches the corpus
        ground truth on every server — the corpus is executable truth,
        not just metadata."""
        for report in study.corpus:
            for server in gt.SERVER_KEYS:
                cell = study.outcome(report.bug_id, server)
                expected = report.failure_on(server)
                if expected is None:
                    assert not cell.failed, (report.bug_id, server)
                else:
                    assert cell.failed, (report.bug_id, server)
                    assert (cell.failure_kind, cell.detectability) == expected, (
                        report.bug_id, server,
                    )


class TestStressMode:
    def test_heisenbugs_surface_under_stress(self, corpus):
        """Section 3.2: re-running Heisenbugs in a stressful environment
        should make some of them produce failures."""
        from repro.study import run_study

        stressed = run_study(corpus, stress_mode=True, seed=11)
        heisen = [r for r in corpus if r.heisenbug]
        failing_now = [
            r.bug_id
            for r in heisen
            if stressed.outcome(r.bug_id, r.reported_for).failed
        ]
        assert failing_now  # some Heisenbugs now fail...
        assert len(failing_now) < len(heisen)  # ...but not all
