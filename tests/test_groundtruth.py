"""Arithmetic self-checks on the frozen ground truth: the solved cell
tables must be internally consistent with the published marginals
before any SQL runs (fast guards for future edits)."""


from repro.bugs import groundtruth as gt
from repro.bugs.notable import NOTABLE_CELLS


class TestCellArithmetic:
    def test_cell_totals_match_server_counts(self):
        expected = {"IB": 55, "PG": 57, "OR": 18, "MS": 51}
        for server, cells in gt.CELLS.items():
            assert sum(n for _, n, _, _ in cells) == expected[server]

    def test_failing_never_exceeds_total(self):
        for server, cells in gt.CELLS.items():
            for group, total, failing, self_evident in cells:
                assert 0 <= self_evident <= failing <= total, (server, group)

    def test_group_totals_match_table2(self):
        sums: dict[str, int] = {}
        for cells in gt.CELLS.values():
            for group, total, _, _ in cells:
                sums[group] = sums.get(group, 0) + total
        for group, (total, *_rest) in gt.PAPER_TABLE2.items():
            assert sums.get(group, 0) == total, group

    def test_home_failures_match_table1(self):
        for server, cells in gt.CELLS.items():
            failing = sum(f for _, _, f, _ in cells)
            assert failing == gt.PAPER_TABLE1[server][server]["failure"]

    def test_se_pools_match_table1_self_evident_totals(self):
        from repro.faults.spec import FailureKind as K

        for server, pool in gt.SE_POOLS.items():
            home = gt.PAPER_TABLE1[server][server]
            assert len(pool) == (
                home["perf"] + home["crash"] + home["inc_se"] + home["other_se"]
            )
            assert pool.count(K.PERFORMANCE) == home["perf"]
            assert pool.count(K.ENGINE_CRASH) == home["crash"]

    def test_nse_pools_match_table1(self):
        from repro.faults.spec import FailureKind as K

        for server, pool in gt.NSE_POOLS.items():
            home = gt.PAPER_TABLE1[server][server]
            assert pool.count(K.INCORRECT_RESULT) == home["inc_nse"]
            assert pool.count(K.OTHER) == home["other_nse"]

    def test_run_counts_match_cells(self):
        short = {"IB": "I", "PG": "P", "OR": "O", "MS": "M"}
        for server, cells in gt.CELLS.items():
            for target, expected in gt.PAPER_TABLE1[server].items():
                runnable = sum(
                    n for group, n, _, _ in cells if short[target] in group
                )
                assert runnable == expected["run"], (server, target)

    def test_further_work_totals(self):
        for server, targets in gt.FURTHER_WORK.items():
            for target, allocations in targets.items():
                expected = gt.PAPER_TABLE1[server][target]["further_work"]
                assert sum(count for _, count in allocations) == expected

    def test_further_work_fits_inside_cells(self):
        cell_sizes = {
            (server, group): total
            for server, cells in gt.CELLS.items()
            for group, total, _, _ in cells
        }
        notable_per_cell: dict[tuple, int] = {}
        for cell in NOTABLE_CELLS.values():
            notable_per_cell[cell] = notable_per_cell.get(cell, 0) + 1
        for server, targets in gt.FURTHER_WORK.items():
            per_cell: dict[str, int] = {}
            for allocations in targets.values():
                for group, count in allocations:
                    per_cell[group] = per_cell.get(group, 0) + count
            for group, used in per_cell.items():
                capacity = cell_sizes[(server, group)] - notable_per_cell.get(
                    (server, group), 0
                )
                assert used <= capacity, (server, group)

    def test_feature_choices_cover_all_needed_support_sets(self):
        needed = set()
        for cells in gt.CELLS.values():
            for group, *_ in cells:
                needed.add(group)
        for targets in gt.FURTHER_WORK.values():
            for target, allocations in targets.items():
                for group, _ in allocations:
                    expanded = gt.expand_group(group) | {target}
                    needed.add(gt.canonical_group(frozenset(expanded)))
        for group in needed:
            assert group in gt.FEATURE_CHOICES, group

    def test_notable_cells_reference_real_cells(self):
        cell_keys = {
            (server, group)
            for server, cells in gt.CELLS.items()
            for group, *_ in cells
        }
        for bug_id, cell in NOTABLE_CELLS.items():
            assert cell in cell_keys, bug_id
