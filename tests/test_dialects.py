"""Dialect gate and translator tests."""

import pytest

from repro.dialects import DIALECTS, dialect, missing_features, translate_script
from repro.dialects.translator import render_tokens
from repro.errors import FeatureNotSupported, ParseError
from repro.sqlengine.analysis import script_traits
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse_script


def missing_for(sql, server):
    return missing_features(script_traits(parse_script(sql)), server)


class TestDescriptors:
    def test_four_products(self):
        assert set(DIALECTS) == {"IB", "PG", "OR", "MS"}

    def test_lookup_case_insensitive(self):
        assert dialect("pg").product == "PostgreSQL"

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            dialect("XX")

    def test_products_and_versions(self):
        assert dialect("IB").version == "6.0"
        assert dialect("OR").product == "Oracle"
        assert dialect("MS").version == "7"


class TestFeatureGates:
    def test_pg_lacks_outer_joins(self):
        sql = "SELECT 1 FROM a LEFT OUTER JOIN b ON 1=1"
        assert "join.left" in missing_for(sql, "PG")
        for server in ("IB", "OR", "MS"):
            assert missing_for(sql, server) == []

    def test_pg_lacks_union_in_views(self):
        # The paper's own dialect-specific example (Interbase bug 217138).
        sql = "CREATE VIEW v AS SELECT a FROM t UNION SELECT b FROM u"
        assert "view.union" in missing_for(sql, "PG")
        assert missing_for(sql, "MS") == []

    def test_ib_lacks_case(self):
        sql = "SELECT CASE WHEN 1=1 THEN 2 END"
        assert "clause.case" in missing_for(sql, "IB")
        assert missing_for(sql, "PG") == []

    def test_mod_only_pg_and_or(self):
        sql = "SELECT MOD(a, 2) FROM t"
        assert missing_for(sql, "PG") == []
        assert missing_for(sql, "OR") == []
        assert "fn.MOD" in missing_for(sql, "IB")
        assert "fn.MOD" in missing_for(sql, "MS")

    def test_clustered_index_only_pg_and_ms(self):
        sql = "CREATE CLUSTERED INDEX ix ON t (a)"
        assert missing_for(sql, "PG") == []
        assert missing_for(sql, "MS") == []
        assert "index.clustered" in missing_for(sql, "OR")

    @pytest.mark.parametrize(
        "sql,owner",
        [
            ("SELECT GEN_ID(a, 1) FROM t", "IB"),
            ("SELECT a FROM t LIMIT 1", "PG"),
            ("SELECT DECODE(a, 1, 'x') FROM t", "OR"),
            ("SELECT GETDATE() FROM t", "MS"),
        ],
    )
    def test_single_server_extensions(self, sql, owner):
        assert missing_for(sql, owner) == []
        for server in set(DIALECTS) - {owner}:
            assert missing_for(sql, server) != []

    def test_validator_raises(self):
        from repro.sqlengine.parser import parse_statement
        from repro.sqlengine.analysis import extract_traits

        stmt = parse_statement("SELECT a FROM t LIMIT 1")
        with pytest.raises(FeatureNotSupported):
            dialect("IB").validate(stmt, extract_traits(stmt))

    def test_unknown_function_missing_everywhere(self):
        sql = "SELECT FROBNICATE(a) FROM t"
        for server in DIALECTS:
            assert missing_for(sql, server) != []


class TestTranslation:
    def test_type_renames_to_ms(self):
        out = translate_script("CREATE TABLE t (a VARCHAR2(10), b NUMBER(8,2))", "MS")
        assert "VARCHAR" in out and "VARCHAR2" not in out
        assert "NUMERIC" in out and "NUMBER" not in out

    def test_timestamp_to_datetime_for_ms(self):
        out = translate_script("CREATE TABLE t (a TIMESTAMP)", "MS")
        assert "DATETIME" in out

    def test_function_renames(self):
        assert "SUBSTRING" in translate_script("SELECT SUBSTR(a, 1, 2) FROM t", "MS")
        assert "SUBSTR" in translate_script("SELECT SUBSTRING(a, 1, 2) FROM t", "OR")
        assert "NVL" in translate_script("SELECT COALESCE(a, 0) FROM t", "OR")

    def test_untranslatable_raises(self):
        with pytest.raises(FeatureNotSupported):
            translate_script("SELECT a FROM t LIMIT 1", "MS")

    def test_translated_script_reparses(self):
        out = translate_script(
            "CREATE TABLE t (a VARCHAR2(10)); INSERT INTO t VALUES ('x''y');"
            "SELECT SUBSTR(a, 1, 2) FROM t WHERE a LIKE 'x%'",
            "MS",
        )
        assert len(parse_script(out)) == 3

    def test_string_escapes_survive(self):
        out = translate_script("SELECT 'it''s' FROM t", "PG")
        assert "'it''s'" in out

    def test_identity_translation_for_home_dialect(self):
        source = "SELECT id, name FROM t WHERE id > 1 ORDER BY id"
        out = translate_script(source, "IB")
        assert parse_script(out)  # still valid; spelling may normalise

    def test_invalid_sql_raises_parse_error(self):
        with pytest.raises(ParseError):
            translate_script("SELECT FROM WHERE", "PG")


class TestRenderTokens:
    def test_roundtrip_spacing(self):
        tokens = tokenize("SELECT a,b FROM t WHERE a>=1;")
        text = render_tokens(tokens)
        assert text == "SELECT a, b FROM t WHERE a >= 1;"

    def test_quoted_identifier_preserved(self):
        tokens = tokenize('SELECT "Mixed Name" FROM t')
        assert '"Mixed Name"' in render_tokens(tokens)

    def test_comments_are_dropped(self):
        tokens = tokenize("SELECT 1 -- hidden\n")
        assert "hidden" not in render_tokens(tokens)
