"""Trait extraction tests: the walker feeding dialect gates and fault
triggers."""

from repro.sqlengine.analysis import extract_traits, script_traits
from repro.sqlengine.parser import parse_script, parse_statement


def traits_of(sql):
    return extract_traits(parse_statement(sql))


class TestStatementKinds:
    def test_kinds(self):
        assert traits_of("SELECT 1").kind == "select"
        assert traits_of("INSERT INTO t VALUES (1)").kind == "insert"
        assert traits_of("UPDATE t SET a = 1").kind == "update"
        assert traits_of("DELETE FROM t").kind == "delete"
        assert traits_of("CREATE TABLE t (a INTEGER)").kind == "create_table"
        assert traits_of("DROP VIEW v").kind == "drop_view"
        assert traits_of("BEGIN").kind == "begin"

    def test_kind_tag_present(self):
        assert "stmt.select" in traits_of("SELECT 1").tags


class TestRelations:
    def test_from_tables_collected(self):
        traits = traits_of("SELECT a FROM t1, t2 WHERE a IN (SELECT b FROM t3)")
        assert traits.relations == {"t1", "t2", "t3"}

    def test_dml_target_collected(self):
        assert "t" in traits_of("INSERT INTO t VALUES (1)").relations
        assert "t" in traits_of("UPDATE t SET a = 1").relations

    def test_join_tables_collected(self):
        traits = traits_of("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert traits.relations == {"a", "b"}

    def test_case_insensitive(self):
        assert "mytable" in traits_of("SELECT 1 FROM MyTable").relations


class TestFeatureTags:
    def test_join_tags(self):
        assert "join.left" in traits_of("SELECT 1 FROM a LEFT JOIN b ON 1=1").tags
        assert "join.full" in traits_of("SELECT 1 FROM a FULL OUTER JOIN b ON 1=1").tags

    def test_set_op_tags(self):
        traits = traits_of("SELECT 1 UNION ALL SELECT 2")
        assert "set.union" in traits.tags and "set.union_all" in traits.tags

    def test_union_in_subquery_tag(self):
        traits = traits_of(
            "SELECT 1 FROM t WHERE a IN ((SELECT b FROM u) UNION (SELECT c FROM v))"
        )
        assert "set.union_in_subquery" in traits.tags
        assert "subquery.in" in traits.tags

    def test_top_level_union_is_not_subquery_union(self):
        traits = traits_of("SELECT 1 UNION SELECT 2")
        assert "set.union_in_subquery" not in traits.tags

    def test_function_and_aggregate_tags(self):
        traits = traits_of("SELECT UPPER(name), AVG(price) FROM t")
        assert "fn.UPPER" in traits.tags
        assert "agg.AVG" in traits.tags

    def test_operator_tags(self):
        assert "op.concat" in traits_of("SELECT a || b FROM t").tags
        assert "op.modulo" in traits_of("SELECT a % 2 FROM t").tags

    def test_clause_tags(self):
        traits = traits_of(
            "SELECT DISTINCT a FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 1"
        )
        for tag in ("clause.distinct", "clause.group_by", "clause.having",
                    "clause.order_by", "clause.limit"):
            assert tag in traits.tags

    def test_type_tags_in_ddl(self):
        traits = traits_of("CREATE TABLE t (a VARCHAR2(10), b NUMBER(8,2))")
        assert "type.VARCHAR2" in traits.tags
        assert "type.NUMBER" in traits.tags

    def test_default_and_check_tags(self):
        traits = traits_of("CREATE TABLE t (a INTEGER DEFAULT 1 CHECK (a > 0))")
        assert "clause.default" in traits.tags
        assert "clause.check" in traits.tags

    def test_view_body_tags_propagate(self):
        traits = traits_of("CREATE VIEW v AS SELECT id FROM t UNION SELECT b FROM u")
        assert "view.union" in traits.tags

    def test_view_distinct_tag(self):
        traits = traits_of("CREATE VIEW v AS SELECT DISTINCT a FROM t")
        assert "view.distinct" in traits.tags

    def test_clustered_index_tag(self):
        traits = traits_of("CREATE CLUSTERED INDEX ix ON t (a)")
        assert "index.clustered" in traits.tags

    def test_case_tag(self):
        assert "clause.case" in traits_of("SELECT CASE WHEN 1=1 THEN 2 END").tags

    def test_subquery_tags(self):
        assert "subquery.exists" in traits_of(
            "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)"
        ).tags
        assert "subquery.scalar" in traits_of("SELECT (SELECT MAX(a) FROM t)").tags
        assert "subquery.derived" in traits_of("SELECT x FROM (SELECT a x FROM t) d").tags

    def test_insert_select_walks_query(self):
        traits = traits_of("INSERT INTO t (a) SELECT b || 'x' FROM u")
        assert "op.concat" in traits.tags
        assert traits.relations == {"t", "u"}


class TestScriptTraits:
    def test_union_over_statements(self):
        statements = parse_script(
            "CREATE TABLE t (a TEXT); SELECT GEN_ID(a, 1) FROM t;"
        )
        traits = script_traits(statements)
        assert "type.TEXT" in traits.tags
        assert "fn.GEN_ID" in traits.tags
        assert traits.kind == "script"

    def test_has_helpers(self):
        traits = traits_of("SELECT a || b FROM t ORDER BY a")
        assert traits.has("op.concat", "clause.order_by")
        assert not traits.has("op.concat", "clause.limit")
        assert traits.has_any("clause.limit", "op.concat")
