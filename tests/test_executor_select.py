"""SELECT execution tests against a seeded engine."""

from decimal import Decimal

import pytest

from repro.errors import BindError, CatalogError, TypeMismatch


def rows(engine, sql):
    return engine.execute(sql).rows


class TestProjectionAndFilter:
    def test_select_star_order(self, seeded_engine):
        result = seeded_engine.execute("SELECT * FROM product ORDER BY id")
        assert result.columns == ["id", "name", "price", "qty"]
        assert result.rows[0] == (1, "widget", Decimal("9.50"), 5)

    def test_where_filters(self, seeded_engine):
        assert rows(seeded_engine, "SELECT id FROM product WHERE price > 1 ORDER BY id") == [
            (1,),
            (2,),
        ]

    def test_where_unknown_filters_out(self, seeded_engine):
        seeded_engine.execute("INSERT INTO product (id, name) VALUES (9, 'ghost')")
        assert (9,) not in rows(
            seeded_engine, "SELECT id FROM product WHERE price > 0"
        )

    def test_expression_projection(self, seeded_engine):
        result = seeded_engine.execute("SELECT id * 10 + 1 FROM product WHERE id = 2")
        assert result.rows == [(21,)]

    def test_string_comparison_coercion(self, seeded_engine):
        # The permissive PRICE >= '9.00' idiom used by the bug corpus.
        assert rows(
            seeded_engine,
            "SELECT id FROM product WHERE price >= '9.00' ORDER BY id",
        ) == [(1,), (2,)]

    def test_column_alias_in_output(self, seeded_engine):
        result = seeded_engine.execute("SELECT id AS product_id FROM product WHERE id = 1")
        assert result.columns == ["product_id"]

    def test_unknown_column_raises(self, seeded_engine):
        with pytest.raises(BindError):
            seeded_engine.execute("SELECT nonexistent FROM product")

    def test_unknown_table_raises(self, seeded_engine):
        with pytest.raises(CatalogError):
            seeded_engine.execute("SELECT 1 FROM missing_table")

    def test_ambiguous_column_raises(self, seeded_engine):
        with pytest.raises(BindError):
            seeded_engine.execute("SELECT id FROM product a, product b")

    def test_qualified_disambiguation(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT a.id FROM product a, product b WHERE a.id = 1 AND b.id = 2"
        )
        assert result.rows == [(1,)]

    def test_select_without_from(self, engine):
        assert engine.execute("SELECT 1 + 2").rows == [(3,)]

    def test_in_list(self, seeded_engine):
        assert rows(
            seeded_engine, "SELECT id FROM product WHERE id IN (1, 3) ORDER BY id"
        ) == [(1,), (3,)]

    def test_between(self, seeded_engine):
        assert rows(
            seeded_engine,
            "SELECT id FROM product WHERE price BETWEEN 0.30 AND 10 ORDER BY id",
        ) == [(1,), (4,)]

    def test_like(self, seeded_engine):
        assert rows(seeded_engine, "SELECT name FROM product WHERE name LIKE '%dget'") == [
            ("widget",),
            ("gadget",),
        ]

    def test_case_expression(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT CASE WHEN qty > 50 THEN 'bulk' ELSE 'unit' END FROM product ORDER BY id"
        )
        assert [r[0] for r in result.rows] == ["unit", "unit", "bulk", "bulk"]


class TestJoins:
    @pytest.fixture(autouse=True)
    def _extra(self, seeded_engine):
        seeded_engine.execute(
            "CREATE TABLE stock_info (product_id INTEGER, location VARCHAR(10))"
        )
        seeded_engine.execute(
            "INSERT INTO stock_info (product_id, location) VALUES "
            "(1, 'north'), (1, 'south'), (3, 'north')"
        )
        self.engine = seeded_engine

    def test_inner_join(self):
        result = self.engine.execute(
            "SELECT p.name, s.location FROM product p "
            "JOIN stock_info s ON p.id = s.product_id ORDER BY p.id, s.location"
        )
        assert result.rows == [
            ("widget", "north"),
            ("widget", "south"),
            ("nut", "north"),
        ]

    def test_left_outer_join_pads_nulls(self):
        result = self.engine.execute(
            "SELECT p.id, s.location FROM product p "
            "LEFT OUTER JOIN stock_info s ON p.id = s.product_id ORDER BY p.id"
        )
        assert (2, None) in result.rows
        assert (4, None) in result.rows
        assert len(result.rows) == 5

    def test_right_outer_join(self):
        self.engine.execute("INSERT INTO stock_info (product_id, location) VALUES (99, 'west')")
        result = self.engine.execute(
            "SELECT p.id, s.location FROM product p "
            "RIGHT OUTER JOIN stock_info s ON p.id = s.product_id"
        )
        assert (None, "west") in result.rows

    def test_full_outer_join(self):
        self.engine.execute("INSERT INTO stock_info (product_id, location) VALUES (99, 'west')")
        result = self.engine.execute(
            "SELECT p.id, s.location FROM product p "
            "FULL OUTER JOIN stock_info s ON p.id = s.product_id"
        )
        assert (None, "west") in result.rows
        assert (2, None) in result.rows

    def test_cross_join_cardinality(self):
        result = self.engine.execute("SELECT 1 FROM product CROSS JOIN stock_info")
        assert len(result.rows) == 4 * 3

    def test_join_condition_with_expression(self):
        result = self.engine.execute(
            "SELECT a.id, b.id FROM product a JOIN product b ON a.id = b.id - 1 "
            "ORDER BY a.id"
        )
        assert result.rows == [(1, 2), (2, 3), (3, 4)]


class TestAggregation:
    def test_count_star(self, seeded_engine):
        assert seeded_engine.execute("SELECT COUNT(*) FROM product").scalar() == 4

    def test_count_column_skips_nulls(self, seeded_engine):
        seeded_engine.execute("INSERT INTO product (id, name) VALUES (9, 'x')")
        assert seeded_engine.execute("SELECT COUNT(price) FROM product").scalar() == 4

    def test_sum_avg_min_max(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT SUM(qty), AVG(qty), MIN(qty), MAX(qty) FROM product"
        )
        total, avg, low, high = result.rows[0]
        assert total == 187
        assert avg == Decimal("46.75")
        assert (low, high) == (2, 100)

    def test_aggregates_on_empty_table(self, engine):
        engine.execute("CREATE TABLE empty_t (a INTEGER)")
        result = engine.execute("SELECT COUNT(*), SUM(a), MIN(a) FROM empty_t")
        assert result.rows == [(0, None, None)]

    def test_group_by(self, seeded_engine):
        seeded_engine.execute(
            "INSERT INTO product (id, name, price, qty) VALUES (5, 'nut', 0.30, 7)"
        )
        result = seeded_engine.execute(
            "SELECT name, COUNT(*), SUM(qty) FROM product GROUP BY name ORDER BY name"
        )
        assert ("nut", 2, 107) in result.rows
        assert len(result.rows) == 4

    def test_having_filters_groups(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT name FROM product GROUP BY name HAVING COUNT(*) >= 1 AND MAX(qty) > 50"
        )
        assert sorted(r[0] for r in result.rows) == ["bolt", "nut"]

    def test_count_distinct(self, seeded_engine):
        seeded_engine.execute(
            "INSERT INTO product (id, name, price, qty) VALUES (5, 'nut', 1.00, 1)"
        )
        assert (
            seeded_engine.execute("SELECT COUNT(DISTINCT name) FROM product").scalar() == 4
        )

    def test_group_by_expression(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT qty > 50, COUNT(*) FROM product GROUP BY qty > 50 ORDER BY 2"
        )
        assert sorted(r[1] for r in result.rows) == [2, 2]

    def test_aggregate_names_default(self, seeded_engine):
        result = seeded_engine.execute("SELECT AVG(price), SUM(price) FROM product")
        assert result.columns == ["AVG", "SUM"]


class TestDistinctOrderLimit:
    def test_distinct(self, seeded_engine):
        seeded_engine.execute(
            "INSERT INTO product (id, name, price, qty) VALUES (5, 'nut', 9.99, 1)"
        )
        result = seeded_engine.execute("SELECT DISTINCT name FROM product")
        assert len(result.rows) == 4

    def test_order_by_desc(self, seeded_engine):
        result = seeded_engine.execute("SELECT id FROM product ORDER BY price DESC")
        assert [r[0] for r in result.rows] == [2, 1, 4, 3]

    def test_order_by_ordinal(self, seeded_engine):
        result = seeded_engine.execute("SELECT name, price FROM product ORDER BY 2")
        assert result.rows[0][0] == "nut"

    def test_order_by_expression(self, seeded_engine):
        result = seeded_engine.execute("SELECT id FROM product ORDER BY qty * price DESC")
        assert result.rows[0] == (1,)  # widget: 5 * 9.50 = 47.50 is the largest

    def test_order_by_nulls_last_ascending(self, seeded_engine):
        seeded_engine.execute("INSERT INTO product (id, name) VALUES (9, 'noprice')")
        result = seeded_engine.execute("SELECT id FROM product ORDER BY price")
        assert result.rows[-1] == (9,)

    def test_order_by_nulls_first_descending(self, seeded_engine):
        seeded_engine.execute("INSERT INTO product (id, name) VALUES (9, 'noprice')")
        result = seeded_engine.execute("SELECT id FROM product ORDER BY price DESC")
        assert result.rows[0] == (9,)

    def test_limit(self, seeded_engine):
        result = seeded_engine.execute("SELECT id FROM product ORDER BY id LIMIT 2")
        assert result.rows == [(1,), (2,)]

    def test_order_by_bad_ordinal(self, seeded_engine):
        with pytest.raises(BindError):
            seeded_engine.execute("SELECT id FROM product ORDER BY 5")


class TestSetOperations:
    def test_union_removes_duplicates(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id FROM product UNION SELECT id FROM product ORDER BY id"
        )
        assert result.rows == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id FROM product UNION ALL SELECT id FROM product"
        )
        assert len(result.rows) == 8

    def test_intersect(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id FROM product WHERE id < 3 INTERSECT SELECT id FROM product WHERE id > 1"
        )
        assert result.rows == [(2,)]

    def test_except(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id FROM product EXCEPT SELECT id FROM product WHERE id > 2 ORDER BY id"
        )
        assert result.rows == [(1,), (2,)]

    def test_mismatched_arity_raises(self, seeded_engine):
        with pytest.raises(TypeMismatch):
            seeded_engine.execute("SELECT id FROM product UNION SELECT id, name FROM product")

    def test_union_column_names_from_left(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id AS left_name FROM product UNION SELECT qty FROM product"
        )
        assert result.columns == ["left_name"]


class TestSubqueries:
    def test_in_subquery(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT name FROM product WHERE id IN (SELECT id FROM product WHERE qty > 50)"
        )
        assert sorted(r[0] for r in result.rows) == ["bolt", "nut"]

    def test_not_in_with_union_subquery(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT id FROM product WHERE id NOT IN "
            "((SELECT id FROM product WHERE qty > 50) UNION "
            "(SELECT id FROM product WHERE price > 10)) ORDER BY id"
        )
        assert result.rows == [(1,)]

    def test_correlated_exists(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT p.name FROM product p WHERE EXISTS "
            "(SELECT 1 FROM product q WHERE q.id = p.id + 1 AND q.price < p.price)"
        )
        # Only gadget (20.00) is followed by a cheaper product (nut, 0.25).
        assert sorted(r[0] for r in result.rows) == ["gadget"]

    def test_scalar_subquery(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT name FROM product WHERE price = (SELECT MAX(price) FROM product)"
        )
        assert result.rows == [("gadget",)]

    def test_scalar_subquery_multiple_rows_raises(self, seeded_engine):
        with pytest.raises(TypeMismatch):
            seeded_engine.execute("SELECT (SELECT id FROM product)")

    def test_empty_scalar_subquery_is_null(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT (SELECT id FROM product WHERE id = 99)"
        )
        assert result.rows == [(None,)]

    def test_not_in_with_null_candidate_is_unknown(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("INSERT INTO t VALUES (1), (NULL)")
        # x NOT IN (1, NULL) is UNKNOWN for x != 1 -> no rows.
        result = engine.execute("SELECT a FROM t WHERE 2 NOT IN (SELECT a FROM t)")
        assert result.rows == []

    def test_derived_table(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT big.name FROM (SELECT name, qty FROM product WHERE qty > 50) big "
            "ORDER BY big.qty DESC"
        )
        assert result.rows == [("nut",), ("bolt",)]
