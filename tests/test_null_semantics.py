"""SQL NULL semantics across the engine: the subtle corners where
products historically disagreed (and where bug scripts poke)."""

import pytest



@pytest.fixture
def nully(engine):
    engine.execute("CREATE TABLE n (k INTEGER, v INTEGER)")
    engine.execute(
        "INSERT INTO n (k, v) VALUES (1, 10), (2, NULL), (3, 10), (4, NULL), (5, 20)"
    )
    return engine


class TestNullGrouping:
    def test_group_by_groups_nulls_together(self, nully):
        result = nully.execute("SELECT v, COUNT(*) FROM n GROUP BY v ORDER BY 2 DESC")
        groups = dict(result.rows)
        assert groups[None] == 2
        assert groups[10] == 2
        assert groups[20] == 1

    def test_distinct_collapses_nulls(self, nully):
        result = nully.execute("SELECT DISTINCT v FROM n")
        values = [row[0] for row in result.rows]
        assert values.count(None) == 1
        assert len(values) == 3

    def test_union_collapses_nulls(self, nully):
        result = nully.execute("SELECT v FROM n UNION SELECT v FROM n")
        assert [row[0] for row in result.rows].count(None) == 1

    def test_count_column_vs_count_star(self, nully):
        result = nully.execute("SELECT COUNT(*), COUNT(v) FROM n")
        assert result.rows == [(5, 3)]

    def test_avg_ignores_nulls(self, nully):
        from decimal import Decimal

        avg = nully.execute("SELECT AVG(v) FROM n").scalar()
        assert avg == Decimal("40") / 3


class TestNullPredicates:
    def test_equality_with_null_matches_nothing(self, nully):
        assert nully.execute("SELECT k FROM n WHERE v = NULL").rows == []
        assert nully.execute("SELECT k FROM n WHERE v <> NULL").rows == []

    def test_is_null(self, nully):
        rows = nully.execute("SELECT k FROM n WHERE v IS NULL ORDER BY k").rows
        assert rows == [(2,), (4,)]

    def test_where_not_condition_excludes_unknown(self, nully):
        # NOT (v = 10): UNKNOWN for NULL rows -> excluded from both sides.
        positive = nully.execute("SELECT COUNT(*) FROM n WHERE v = 10").scalar()
        negative = nully.execute("SELECT COUNT(*) FROM n WHERE NOT v = 10").scalar()
        assert positive == 2 and negative == 1
        assert positive + negative < 5  # the NULL rows vanish from both

    def test_null_in_join_condition_never_matches(self, nully):
        result = nully.execute(
            "SELECT x.k, y.k FROM n x JOIN n y ON x.v = y.v AND x.k < y.k"
        )
        # Only the two v=10 rows pair up; NULLs never join.
        assert result.rows == [(1, 3)]

    def test_null_ordering_stable(self, nully):
        ascending = [r[0] for r in nully.execute("SELECT v FROM n ORDER BY v, k").rows]
        assert ascending[-2:] == [None, None]

    def test_coalesce_in_where(self, nully):
        rows = nully.execute(
            "SELECT k FROM n WHERE COALESCE(v, 0) = 0 ORDER BY k"
        ).rows
        assert rows == [(2,), (4,)]


class TestNullArithmetic:
    def test_null_in_projection(self, nully):
        result = nully.execute("SELECT k, v + 1 FROM n WHERE k = 2")
        assert result.rows == [(2, None)]

    def test_sum_with_some_nulls(self, nully):
        assert nully.execute("SELECT SUM(v) FROM n").scalar() == 40

    def test_scalar_subquery_null_propagates(self, nully):
        result = nully.execute(
            "SELECT (SELECT v FROM n WHERE k = 2) + 5"
        )
        assert result.rows == [(None,)]

    def test_update_to_null_then_aggregate(self, nully):
        nully.execute("UPDATE n SET v = NULL WHERE v = 20")
        assert nully.execute("SELECT MAX(v) FROM n").scalar() == 10
