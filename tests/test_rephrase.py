"""Query-rephrasing wrapper tests (Section 7's non-diverse alternative)."""

import pytest

from repro.errors import AdjudicationFailure, SqlError
from repro.faults import ErrorEffect, FaultSpec, RelationTrigger, RowDropEffect, TagTrigger
from repro.middleware.rephrase import QueryRephraser, RephrasingWrapper
from repro.servers import make_server
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.sqlgen import render_statement

EQUIVALENCE_QUERIES = [
    "SELECT id FROM product WHERE price >= 1 AND qty < 50 ORDER BY id",
    "SELECT id FROM product WHERE id IN (1, 3) ORDER BY id",
    "SELECT id FROM product WHERE id NOT IN (2, 4) ORDER BY id",
    "SELECT id FROM product WHERE price BETWEEN 0.30 AND 10 ORDER BY id",
    "SELECT id FROM product WHERE price NOT BETWEEN 0.30 AND 10 ORDER BY id",
    "SELECT id FROM product WHERE name <> 'nut' ORDER BY id",
    "SELECT id FROM product WHERE id IN "
    "((SELECT id FROM product WHERE qty > 50) UNION "
    "(SELECT id FROM product WHERE price > 10)) ORDER BY id",
    "SELECT id FROM product WHERE id NOT IN "
    "((SELECT id FROM product WHERE qty > 50) UNION "
    "(SELECT id FROM product WHERE price > 10)) ORDER BY id",
    "SELECT id FROM product WHERE qty > 50 OR price > 10 ORDER BY id",
]


class TestRephraserEquivalence:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_rephrased_query_same_answer(self, seeded_engine, sql):
        rephrased = QueryRephraser().rephrase_sql(sql)
        original_rows = seeded_engine.execute(sql).rows
        rephrased_rows = seeded_engine.execute(rephrased).rows
        assert original_rows == rephrased_rows, rephrased

    def test_rephrasing_changes_the_shape(self):
        sql = ("SELECT id FROM t WHERE id NOT IN "
               "((SELECT a FROM u) UNION (SELECT b FROM v))")
        rephrased = QueryRephraser().rephrase_sql(sql)
        assert "UNION" not in rephrased
        assert "NOT IN" in rephrased and " AND " in rephrased

    def test_in_list_becomes_or_chain(self):
        rephrased = QueryRephraser().rephrase_sql("SELECT a FROM t WHERE a IN (1, 2)")
        assert "IN" not in rephrased.replace("INTO", "")
        assert "OR" in rephrased

    def test_between_becomes_comparisons(self):
        rephrased = QueryRephraser().rephrase_sql(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 2"
        )
        assert "BETWEEN" not in rephrased
        assert ">=" in rephrased and "<=" in rephrased

    def test_input_ast_not_mutated(self):
        stmt = parse_statement("SELECT a FROM t WHERE a IN (1, 2)")
        before = render_statement(stmt)
        QueryRephraser().rephrase(stmt)
        assert render_statement(stmt) == before

    def test_non_select_rejected(self):
        with pytest.raises(SqlError):
            QueryRephraser().rephrase_sql("DELETE FROM t")

    def test_null_semantics_preserved(self, engine):
        engine.execute("CREATE TABLE t (a INTEGER)")
        engine.execute("INSERT INTO t VALUES (1), (NULL)")
        for sql in [
            "SELECT COUNT(*) FROM t WHERE 2 NOT IN (SELECT a FROM t)",
            "SELECT COUNT(*) FROM t WHERE a IN (1, NULL)",
            "SELECT COUNT(*) FROM t WHERE a NOT BETWEEN 0 AND 0",
        ]:
            rephrased = QueryRephraser().rephrase_sql(sql)
            assert engine.execute(sql).rows == engine.execute(rephrased).rows, rephrased


class TestRephrasingWrapper:
    def _setup(self, faults=()):
        server = make_server("PG", list(faults))
        wrapper = RephrasingWrapper(server)
        wrapper.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, qty INTEGER)")
        wrapper.execute("INSERT INTO items (id, qty) VALUES (1, 5), (2, 50), (3, 500)")
        return wrapper

    def test_healthy_server_passes_through(self):
        wrapper = self._setup()
        result = wrapper.execute("SELECT id FROM items WHERE qty BETWEEN 1 AND 100 ORDER BY id")
        assert result.rows == [(1,), (2,)]
        assert wrapper.stats.disagreements == 0

    def test_masks_syntax_shaped_error(self):
        # PG-43 style: the bug's failure region is the BETWEEN spelling.
        fault = FaultSpec(
            "F-SHAPE", "errors on BETWEEN",
            TagTrigger(required=["clause.between"]) & RelationTrigger(["items"]),
            ErrorEffect("parse error near BETWEEN"),
        )
        wrapper = self._setup([fault])
        result = wrapper.execute(
            "SELECT id FROM items WHERE qty BETWEEN 1 AND 100 ORDER BY id"
        )
        assert result.rows == [(1,), (2,)]  # rephrased spelling dodged it
        assert wrapper.stats.masked_errors == 1

    def test_detects_when_rephrased_spelling_errors(self):
        # A fault on the ORIGINAL IN-list spelling would be masked by
        # the rephrased OR chain; flipped, the fault fires on the
        # rephrased shape only, so the wrapper can detect but not mask.
        fault_flipped = FaultSpec(
            "F-OR2", "errors when OR used without IN",
            TagTrigger(forbidden=["clause.in_list"], required=["stmt.select"])
            & RelationTrigger(["items"]),
            ErrorEffect("boom"),
        )
        wrapper = self._setup([fault_flipped])
        with pytest.raises(AdjudicationFailure):
            wrapper.execute("SELECT id FROM items WHERE id IN (1, 2) ORDER BY id")

    def test_cannot_catch_data_shaped_bug(self):
        # The limit the paper implies: failure regions defined by the
        # data touched, not the spelling, need real diversity.
        fault = FaultSpec(
            "F-DATA", "drops rows from items",
            RelationTrigger(["items"], kind="select"),
            RowDropEffect(keep_one_in=2),
        )
        wrapper = self._setup([fault])
        result = wrapper.execute("SELECT id FROM items WHERE qty > 0 ORDER BY id")
        assert len(result.rows) < 3  # wrong both times, identically
        assert wrapper.stats.disagreements == 0

    def test_genuine_error_propagates(self):
        wrapper = self._setup()
        with pytest.raises(SqlError):
            wrapper.execute("SELECT missing_col FROM items WHERE id IN (1, 2)")

    def test_corpus_pg43_masked_by_rephrasing(self, corpus):
        """The actual PG-43 bug: its failure region is the UNION-nested
        NOT IN; distributing the UNION dodges it on PostgreSQL."""
        from repro.study.runner import split_statements

        report = corpus.get("PG-43")
        server = make_server("PG", corpus.faults_for("PG"))
        wrapper = RephrasingWrapper(server)
        statements = split_statements(report.script)
        for statement in statements[:-1]:
            wrapper.execute(statement)
        result = wrapper.execute(statements[-1])
        assert wrapper.stats.masked_errors == 1
        # And the answer is the correct one (matches a pristine server).
        pristine = make_server("PG")
        for statement in statements[:-1]:
            pristine.execute(statement)
        expected = pristine.execute(statements[-1])
        assert result.rows == expected.rows
