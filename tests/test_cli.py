"""CLI smoke tests (python -m repro ...)."""

import json

from repro.__main__ import main


class TestCli:
    def test_tables_command_reports_exact(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "Table 1: EXACT" in output
        assert "Table 3: EXACT" in output
        assert "Table 4: EXACT" in output

    def test_tpcc_command(self, capsys):
        assert main(["tpcc", "10"]) == 0
        output = capsys.readouterr().out
        assert "1v IB" in output and "2v IB+OR" in output

    def test_crashstorm_command(self, capsys):
        assert main(["crashstorm", "30"]) == 0
        output = capsys.readouterr().out
        assert "crash storm" in output
        assert "quarantines=" in output
        assert "client-visible crashes=0 outages=0" in output

    def test_hangstorm_command(self, capsys):
        assert main(["hangstorm", "30"]) == 0
        output = capsys.readouterr().out
        assert "hang storm" in output
        assert "statement timeouts=" in output
        assert "client-visible timeouts=0" in output
        assert "IB final state: active" in output

    def test_netstorm_command(self, capsys):
        assert main(["netstorm", "20"]) == 0
        output = capsys.readouterr().out
        assert "network storm" in output
        assert "network errors=0" in output
        assert "exactly-once: duplicates suppressed=" in output
        assert "seq gaps=0" in output
        assert "replica consistency after storm: all replicas agree" in output

    def test_unknown_command_prints_usage(self, capsys):
        assert main(["bogus"]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_tpcc_rejects_non_integer_count(self, capsys):
        assert main(["tpcc", "abc"]) == 2
        err = capsys.readouterr().err
        assert "usage: python -m repro tpcc [N]" in err
        assert "'abc'" in err

    def test_storm_rejects_non_positive_count(self, capsys):
        assert main(["crashstorm", "-5"]) == 2
        err = capsys.readouterr().err
        assert "usage: python -m repro crashstorm [N]" in err
        assert "positive" in err

    def test_storm_rejects_non_integer_count(self, capsys):
        assert main(["netstorm", "soon"]) == 2
        assert "usage: python -m repro netstorm [N]" in capsys.readouterr().err

    def test_slice_command(self, capsys):
        assert main(["slice", "IB-223512"]) == 0
        output = capsys.readouterr().out
        assert "IB-223512: kept 3/5 statement(s), dropped [1, 2]" in output
        assert "anchor:" in output

    def test_slice_unknown_bug(self, capsys):
        assert main(["slice", "XX-0"]) == 2
        err = capsys.readouterr().err
        assert "usage: python -m repro slice BUG_ID" in err
        assert "unknown bug id" in err

    def test_slice_requires_bug_id(self, capsys):
        assert main(["slice"]) == 2
        assert "usage: python -m repro slice BUG_ID" in capsys.readouterr().err

    def test_lint_rejects_unknown_flag(self, capsys):
        assert main(["lint", "--jsn"]) == 2
        err = capsys.readouterr().err
        assert "usage: python -m repro lint [--json]" in err
        assert "--jsn" in err

    def test_study_rejects_stray_arguments(self, capsys):
        assert main(["study", "extra"]) == 2
        assert "usage: python -m repro study" in capsys.readouterr().err

    def test_conflicts_rejects_non_integer_count(self, capsys):
        assert main(["conflicts", "two"]) == 2
        assert "usage: python -m repro conflicts [N]" in capsys.readouterr().err

    def test_report_unwritable_path_exits_2(self, capsys):
        assert main(["export", "/nonexistent-dir/out.json"]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_explain_renders_plan(self, capsys):
        assert main(
            ["explain", "SELECT w_name FROM warehouse WHERE w_id = 7"]
        ) == 0
        output = capsys.readouterr().out
        assert "plan:" in output
        assert "IndexLookup warehouse" in output
        assert "rewrites:" in output

    def test_explain_requires_sql(self, capsys):
        assert main(["explain"]) == 2
        assert "usage: python -m repro explain" in capsys.readouterr().err

    def test_explain_rejects_unparseable_sql(self, capsys):
        assert main(["explain", "SELEKT 1"]) == 2
        err = capsys.readouterr().err
        assert "usage: python -m repro explain" in err
        assert "cannot explain" in err

    def test_lint_json_is_machine_readable(self, capsys):
        # The shipped corpus has no errors (warnings only), so --json
        # exits 0; every emitted line is one JSON finding record and the
        # human-readable summary is suppressed.
        assert main(["lint", "--json"]) == 0
        output = capsys.readouterr().out
        for line in output.splitlines():
            record = json.loads(line)
            assert {"code", "severity", "statement_index", "script_id"} <= set(record)
        assert "lint:" not in output


class TestLintJsonFindings:
    def test_findings_serialize(self):
        from repro.analysis.lint import LintFinding

        finding = LintFinding(
            check="dead-fault",
            subject="XX-1",
            detail="unreachable trigger",
            statement_index=3,
        )
        record = json.loads(finding.to_json())
        assert record == {
            "code": "dead-fault",
            "severity": "error",
            "statement_index": 3,
            "script_id": "XX-1",
            "detail": "unreachable trigger",
        }
        # And the plain renderer carries the statement index too.
        assert "(statement 3)" in str(finding)


class TestTlpCommand:
    def test_partitions_a_plain_select(self, capsys):
        assert main(["tlp", "SELECT id FROM hunt WHERE a > b"]) == 0
        output = capsys.readouterr().out
        assert "certificate:" in output
        assert "IS NULL" in output
        assert "NOT (a > b)" in output

    def test_reports_blockers(self, capsys):
        assert main(["tlp", "SELECT COUNT(id) FROM hunt WHERE a > 0"]) == 0
        assert "no TLP partition" in capsys.readouterr().out

    def test_requires_sql(self, capsys):
        assert main(["tlp"]) == 2
        assert "usage: python -m repro tlp" in capsys.readouterr().err

    def test_rejects_unparseable_sql(self, capsys):
        assert main(["tlp", "SELEKT 1"]) == 2
        err = capsys.readouterr().err
        assert "usage: python -m repro tlp" in err
        assert "cannot abstract" in err


class TestHuntCommand:
    def test_small_pristine_campaign_is_silent(self, capsys):
        assert main(["hunt", "8"]) == 0
        output = capsys.readouterr().out
        assert "hunt: 8 statement(s)" in output
        assert "no findings banked" in output

    def test_rejects_non_integer_count(self, capsys):
        assert main(["hunt", "lots"]) == 2
        assert "usage: python -m repro hunt [N]" in capsys.readouterr().err

    def test_rejects_non_positive_count(self, capsys):
        assert main(["hunt", "0"]) == 2
        assert "usage: python -m repro hunt [N]" in capsys.readouterr().err
