"""CLI smoke tests (python -m repro ...)."""


from repro.__main__ import main


class TestCli:
    def test_tables_command_reports_exact(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "Table 1: EXACT" in output
        assert "Table 3: EXACT" in output
        assert "Table 4: EXACT" in output

    def test_tpcc_command(self, capsys):
        assert main(["tpcc", "10"]) == 0
        output = capsys.readouterr().out
        assert "1v IB" in output and "2v IB+OR" in output

    def test_crashstorm_command(self, capsys):
        assert main(["crashstorm", "30"]) == 0
        output = capsys.readouterr().out
        assert "crash storm" in output
        assert "quarantines=" in output
        assert "client-visible crashes=0 outages=0" in output

    def test_hangstorm_command(self, capsys):
        assert main(["hangstorm", "30"]) == 0
        output = capsys.readouterr().out
        assert "hang storm" in output
        assert "statement timeouts=" in output
        assert "client-visible timeouts=0" in output
        assert "IB final state: active" in output

    def test_unknown_command_prints_usage(self, capsys):
        assert main(["bogus"]) == 2
        assert "Commands" in capsys.readouterr().out
