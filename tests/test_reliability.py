"""Reliability model and failure-process simulation tests."""

import pytest

from repro.reliability import (
    FailureProcessSimulator,
    PairGain,
    ReliabilityModel,
    pair_gains_from_study,
    profile_sensitivity,
)
from repro.reliability.model import gain_with_uncertainty
from repro.reliability.profiles import STANDARD_PROFILES, weighted_profiles
from repro.reliability.simulate import BugProfile, bug_profiles_from_study


class TestPairGains:
    def test_ratios_match_table4(self, study):
        gains = pair_gains_from_study(study)
        assert gains[("IB", "PG")].m_a == 47 and gains[("IB", "PG")].m_ab == 1
        assert gains[("MS", "PG")].m_ab == 5
        assert gains[("OR", "PG")].m_ab == 1
        assert gains[("PG", "OR")].m_ab == 0

    def test_ratio_and_gain_factor(self):
        gain = PairGain("A", "B", m_a=50, m_ab=2)
        assert gain.ratio == pytest.approx(0.04)
        assert gain.naive_gain_factor == 25.0

    def test_zero_shared_bugs_gives_infinite_gain(self):
        import math

        gain = PairGain("A", "B", m_a=50, m_ab=0)
        assert gain.ratio == 0.0
        assert math.isinf(gain.naive_gain_factor)

    def test_all_ratios_small(self, study):
        # The paper's conclusion: mAB/mA is small for every pair.
        for gain in pair_gains_from_study(study).values():
            assert gain.ratio <= 0.13


class TestReliabilityModel:
    def test_equal_rates_recover_naive_ratio(self):
        model = ReliabilityModel(shared_fraction=0.1, rate_dispersion=0.0)
        mean, low, high = model.expected_ratio(5, 45)
        assert mean == pytest.approx(0.1)
        assert low == high == pytest.approx(0.1)

    def test_dispersion_widens_uncertainty(self):
        model = ReliabilityModel(shared_fraction=0.1, rate_dispersion=2.0, seed=3)
        mean, low, high = model.expected_ratio(5, 45, samples=500)
        assert high > low
        assert 0.0 <= low <= mean <= high <= 1.0

    def test_underreporting_raises_shared_weight(self):
        base = ReliabilityModel(0.1, rate_dispersion=0.0, subtle_underreporting=1.0)
        biased = ReliabilityModel(0.1, rate_dispersion=0.0, subtle_underreporting=10.0)
        naive, *_ = base.expected_ratio(5, 45, shared_subtle=5, exclusive_subtle=0)
        skewed, *_ = biased.expected_ratio(5, 45, shared_subtle=5, exclusive_subtle=0)
        assert skewed > naive

    def test_empty_inputs(self):
        model = ReliabilityModel(0.0)
        assert model.expected_ratio(0, 0) == (0.0, 0.0, 0.0)

    def test_gain_with_uncertainty_from_study(self, study):
        mean, low, high = gain_with_uncertainty(
            study, "IB", "PG", rate_dispersion=1.0, samples=300, seed=5
        )
        assert 0.0 <= low <= mean <= high <= 0.5


class TestSimulator:
    def _profiles(self):
        return [
            BugProfile("B1", 0.01, frozenset({"IB"}), {"IB": False}, False),
            BugProfile("B2", 0.01, frozenset({"PG"}), {"PG": True}, False),
            BugProfile(
                "B3", 0.002, frozenset({"IB", "PG"}), {"IB": False, "PG": False}, True
            ),
        ]

    def test_single_version_failures(self):
        sim = FailureProcessSimulator(self._profiles(), seed=1)
        outcome = sim.run(["IB"], 20000)
        assert outcome.undetected_wrong > 0
        assert outcome.demands == 20000
        assert (
            outcome.correct + outcome.undetected_wrong + outcome.detected + outcome.masked
            == 20000
        )

    def test_pair_detects_most(self):
        sim = FailureProcessSimulator(self._profiles(), seed=1)
        single = sim.run(["IB"], 20000)
        sim2 = FailureProcessSimulator(self._profiles(), seed=1)
        pair = sim2.run(["IB", "PG"], 20000)
        assert pair.undetected_rate < single.undetected_rate

    def test_identical_coincident_failures_slip_through(self):
        profiles = [
            BugProfile("ND", 0.05, frozenset({"IB", "PG"}), {"IB": False, "PG": False}, True)
        ]
        sim = FailureProcessSimulator(profiles, seed=2)
        outcome = sim.run(["IB", "PG"], 5000)
        assert outcome.undetected_wrong > 0
        assert outcome.detected == 0

    def test_differing_coincident_failures_detected(self):
        profiles = [
            BugProfile("D", 0.05, frozenset({"IB", "PG"}), {"IB": False, "PG": False}, False)
        ]
        sim = FailureProcessSimulator(profiles, seed=2)
        outcome = sim.run(["IB", "PG"], 5000)
        assert outcome.detected > 0
        assert outcome.undetected_wrong == 0

    def test_triple_masks(self):
        sim = FailureProcessSimulator(self._profiles(), seed=3)
        outcome = sim.run(["IB", "PG", "OR"], 20000)
        assert outcome.masked > 0
        assert outcome.undetected_rate <= 0.001

    def test_from_study_diversity_wins(self, study):
        profiles = bug_profiles_from_study(study, base_rate=1e-3, seed=4)
        sim = FailureProcessSimulator(profiles, seed=4)
        results = sim.compare_configurations(4000)
        worst_single = max(
            results[name].undetected_rate for name in results if name.startswith("1v")
        )
        best_pair = min(
            results[name].undetected_rate for name in results if name.startswith("2v")
        )
        assert best_pair < worst_single


class TestUsageProfiles:
    def test_standard_profiles_exist(self):
        names = {p.name for p in STANDARD_PROFILES}
        assert {"uniform", "reporting", "oltp", "schema-churn", "analytics"} <= names

    def test_weighting_rescales_rates(self, study):
        base = bug_profiles_from_study(study, base_rate=1e-3, rate_dispersion=0.0)
        analytics = [p for p in STANDARD_PROFILES if p.name == "analytics"][0]
        weighted = weighted_profiles(study, base, analytics)
        assert any(
            w.rate > b.rate for w, b in zip(weighted, base)
        )

    def test_sensitivity_varies_across_profiles(self, study):
        base = bug_profiles_from_study(study, base_rate=2e-3, rate_dispersion=0.0)
        rates = profile_sensitivity(study, base, ["IB"], demands=4000, seed=6)
        assert len(rates) == len(STANDARD_PROFILES)
        assert len(set(rates.values())) > 1  # profiles actually differ
