"""Durability subsystem: WAL, checkpoints, recovery, rebuild, bank."""

import json
from datetime import date, datetime
from decimal import Decimal

import pytest

from repro.durability import (
    CheckpointStore,
    DurabilityManager,
    DurableSession,
    FileMedium,
    MemoryMedium,
    WriteAheadLog,
    build_checkpoint,
    classify_repro,
    encode_record,
    engine_state_signature,
    recover_engine,
    scan_records,
    storage_fault_bank,
    trigger_slice_signature,
)
from repro.durability.checkpoint import decode_value, encode_value
from repro.faults import (
    ChecksumCorruptionEffect,
    Detectability,
    FailureKind,
    FaultSpec,
    LostFlushEffect,
    SqlPatternTrigger,
    TornWriteEffect,
)
from repro.faults.audit import dead_storage_faults
from repro.middleware import DiverseServer, ReplicaState, ServerConfig, SupervisorPolicy
from repro.reliability import RebuildPolicyModel
from repro.servers import make_server


def wal_on(medium, name="t/wal"):
    return WriteAheadLog(medium, name)


class TestWal:
    def test_append_scan_roundtrip(self):
        wal = wal_on(MemoryMedium())
        wal.append("INSERT INTO t VALUES (1)", 3)
        wal.append("UPDATE t SET x = 2", 3)
        scan = wal.scan()
        assert scan.clean
        assert [r.sql for r in scan.records] == [
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET x = 2",
        ]
        assert [r.lsn for r in scan.records] == [0, 1]
        assert scan.records[0].generation == 3

    def test_next_lsn_recomputed_from_medium(self):
        medium = MemoryMedium()
        wal_on(medium).append("A", 0)
        wal_on(medium).append("B", 0)
        assert [r.lsn for r in wal_on(medium).scan().records] == [0, 1]

    def test_torn_header_and_payload(self):
        blob = encode_record(0, 0, "A") + encode_record(1, 0, "B")
        torn_header = scan_records(blob[:-len(encode_record(1, 0, "B")) + 3])
        assert torn_header.stopped == "torn-header"
        assert len(torn_header.records) == 1
        torn_payload = scan_records(blob[:-2])
        assert torn_payload.stopped == "torn-payload"
        assert len(torn_payload.records) == 1

    def test_checksum_mismatch_stops_scan(self):
        medium = MemoryMedium()
        wal = wal_on(medium)
        wal.append("A", 0)
        wal.append("B", 0)
        wal.append("C", 0)
        record_len = len(encode_record(0, 0, "A"))
        medium.corrupt("t/wal", record_len + 10, xor=0x20)
        scan = wal.scan()
        assert scan.stopped == "checksum-mismatch"
        assert [r.sql for r in scan.records] == ["A"]
        assert scan.dropped_bytes > 0

    def test_lost_flush_leaves_detectable_gap(self):
        wal = wal_on(MemoryMedium())
        wal.append("A", 0)
        wal.append("B", 0, mutate=lambda data: None)  # lost flush
        wal.append("C", 0)
        scan = wal.scan()
        assert scan.stopped == "lsn-gap"
        assert [r.sql for r in scan.records] == ["A"]

    def test_garbage_header_is_not_an_allocation(self):
        scan = scan_records(b"\xff" * 16)
        assert scan.stopped == "torn-header"
        assert scan.records == []

    def test_truncate_to_valid_is_idempotent(self):
        medium = MemoryMedium()
        wal = wal_on(medium)
        wal.append("A", 0)
        wal.append("B", 0)
        medium.corrupt("t/wal", len(encode_record(0, 0, "A")) + 9)
        assert wal.truncate_to_valid() > 0
        assert wal.scan().clean
        assert wal.truncate_to_valid() == 0
        assert wal.next_lsn == 1


class TestCheckpoint:
    def test_value_codec_roundtrip(self):
        values = [None, 1, 1.5, "x", True, Decimal("10.25"),
                  date(2004, 6, 28), datetime(2004, 6, 28, 12, 30, 0)]
        decoded = [decode_value(json.loads(json.dumps(encode_value(v)))) for v in values]
        assert decoded == values

    def test_store_save_load_prune(self):
        medium = MemoryMedium()
        store = CheckpointStore(medium, "IB", keep=2)
        product = make_server("IB")
        product.execute("CREATE TABLE t (x INT)")
        names = [
            store.save(build_checkpoint(product.engine, lsn=i, ddl=[], taken_at=0.0))
            for i in range(3)
        ]
        kept = medium.names("IB/")
        assert len(kept) == 2
        assert names[0] not in kept
        name, payload = store.load_latest()
        assert name == names[-1]
        assert payload["lsn"] == 2

    def test_corrupt_checkpoint_skipped(self):
        medium = MemoryMedium()
        store = CheckpointStore(medium, "IB", keep=2)
        product = make_server("IB")
        product.execute("CREATE TABLE t (x INT)")
        first = store.save(build_checkpoint(product.engine, lsn=0, ddl=[], taken_at=0.0))
        second = store.save(build_checkpoint(product.engine, lsn=1, ddl=[], taken_at=1.0))
        medium.corrupt(second, 12, xor=0x7F)
        name, payload = store.load_latest()
        assert name == first
        assert payload["lsn"] == 0


class TestRecovery:
    def script_session(self, interval=None):
        session = DurableSession(make_server("IB"), checkpoint_interval=interval)
        session.execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v DECIMAL(8,2));\n"
            "INSERT INTO t VALUES (1, 10.00);\n"
            "INSERT INTO t VALUES (2, 20.00);\n"
            "UPDATE t SET v = 15.50 WHERE id = 1;"
        )
        return session

    def test_full_redo_without_checkpoint(self):
        session = self.script_session()
        expected = engine_state_signature(session.product.engine)
        recovered, report = DurableSession.resume(make_server("IB"), session.power_cut())
        assert report.checkpoint is None
        assert report.redone == 4
        assert engine_state_signature(recovered.product.engine) == expected

    def test_checkpoint_plus_tail_redo(self):
        session = self.script_session(interval=2)
        expected = engine_state_signature(session.product.engine)
        recovered, report = DurableSession.resume(
            make_server("IB"), session.power_cut(), checkpoint_interval=2
        )
        assert report.checkpoint is not None
        assert report.watermark > 0
        assert report.redone == 4 - report.watermark
        assert engine_state_signature(recovered.product.engine) == expected
        assert len(recovered.ddl_history) == 1
        assert recovered.ddl_history[0].startswith("CREATE TABLE t")

    def test_checkpoint_beyond_salvaged_prefix_rejected(self):
        session = self.script_session(interval=4)  # checkpoint at lsn 4
        disk = session.power_cut()
        # Tear the log back to one record: the checkpoint's watermark
        # now vouches for history the log cannot.
        disk.truncate(f"{session.name}/wal", len(encode_record(0, 0, session.wal.scan().records[0].sql)))
        recovered, report = DurableSession.resume(
            make_server("IB"), disk, name=session.name, checkpoint_interval=4
        )
        assert report.checkpoint is None
        assert report.checkpoints_skipped >= 1
        assert report.redone == 1
        # Only the CREATE TABLE survives.
        assert recovered.product.engine.storage.get_optional("t").snapshot() == []

    def test_open_transaction_rolled_back(self):
        session = self.script_session()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (3, 30.00)")
        committed_rows = 2  # id 1 and 2; the in-flight insert must vanish
        recovered, report = DurableSession.resume(make_server("IB"), session.power_cut())
        assert report.aborted_transaction
        rows = recovered.product.engine.storage.get_optional("t").snapshot()
        assert len(rows) == committed_rows

    def test_recovery_idempotent(self):
        session = self.script_session(interval=2)
        disk = session.power_cut()
        disk.corrupt(f"{session.name}/wal", disk.size(f"{session.name}/wal") - 4)
        recovered, _ = DurableSession.resume(
            make_server("IB"), disk, name=session.name, checkpoint_interval=2
        )
        first = engine_state_signature(recovered.product.engine)
        again, report = DurableSession.resume(
            make_server("IB"), recovered.power_cut(), name=session.name,
            checkpoint_interval=2,
        )
        assert engine_state_signature(again.product.engine) == first
        assert report.stopped is None  # the first recovery truncated


class TestStorageEffects:
    def test_torn_write_keeps_proper_prefix(self):
        data = bytes(range(100))
        torn = TornWriteEffect(keep_fraction=0.5).apply_storage(None, data)
        assert torn == data[:50]
        assert TornWriteEffect(keep_fraction=0.0).apply_storage(None, data) == data[:1]
        assert len(TornWriteEffect(keep_fraction=1.0).apply_storage(None, data)) == 99

    def test_lost_flush_drops_record(self):
        assert LostFlushEffect().apply_storage(None, b"abc") is None

    def test_checksum_corruption_flips_payload_byte(self):
        data = encode_record(0, 0, "SELECT 1")
        rotted = ChecksumCorruptionEffect(offset=2, xor=0x10).apply_storage(None, data)
        assert rotted != data
        assert len(rotted) == len(data)
        assert rotted[:8] == data[:8]  # header untouched: payload rot
        assert scan_records(rotted).stopped == "checksum-mismatch"

    def test_injector_storage_phase_fires_and_records(self):
        fault = FaultSpec(
            "T-STOR", "tears inserts",
            SqlPatternTrigger(r"INSERT\s+INTO\s+t\b"), TornWriteEffect(),
            kind=FailureKind.STORAGE,
            detectability=Detectability.SELF_EVIDENT,
        )
        session = DurableSession(make_server("IB", [fault]))
        session.execute("CREATE TABLE t (x INT)")
        session.execute("INSERT INTO t VALUES (1)")
        assert session.storage_fault_log == [("INSERT INTO t VALUES (1)", "torn")]
        assert "T-STOR" in session.product.fired_faults()
        scan = session.wal.scan()
        assert scan.stopped in ("torn-payload", "checksum-mismatch")
        assert [r.sql for r in scan.records] == ["CREATE TABLE t (x INT)"]

    def test_storage_fault_does_not_disturb_service_results(self):
        fault = FaultSpec(
            "T-LOST", "loses inserts",
            SqlPatternTrigger(r"INSERT"), LostFlushEffect(),
            kind=FailureKind.STORAGE,
        )
        session = DurableSession(make_server("IB", [fault]))
        session.execute("CREATE TABLE t (x INT)")
        session.execute("INSERT INTO t VALUES (1)")
        result = session.execute("SELECT x FROM t")
        assert result.rows == [(1,)]  # in-service state is undamaged


class TestFileMedium:
    def test_roundtrip_and_names(self, tmp_path):
        medium = FileMedium(str(tmp_path / "disk"))
        medium.append("a/wal", b"xy")
        medium.append("a/wal", b"z")
        medium.write("a/ckpt-1", b"snap")
        assert medium.read("a/wal") == b"xyz"
        assert medium.names("a/") == ["a/ckpt-1", "a/wal"]
        medium.truncate("a/wal", 1)
        assert medium.read("a/wal") == b"x"
        medium.delete("a/ckpt-1")
        assert medium.names() == ["a/wal"]
        assert medium.read("missing") == b""

    def test_durable_session_survives_real_files(self, tmp_path):
        medium = FileMedium(str(tmp_path / "disk"))
        session = DurableSession(make_server("IB"), medium, name="IB",
                                 checkpoint_interval=2)
        session.execute_script(
            "CREATE TABLE t (x INT, v DECIMAL(8,2));\n"
            "INSERT INTO t VALUES (1, 10.25);\n"
            "INSERT INTO t VALUES (2, 20.50);"
        )
        assert session.product.engine.storage.get_optional("t").snapshot()
        expected = engine_state_signature(session.product.engine)
        fresh = FileMedium(str(tmp_path / "disk"))  # a new process
        recovered, report = DurableSession.resume(
            make_server("IB"), fresh, name="IB", checkpoint_interval=2
        )
        assert engine_state_signature(recovered.product.engine) == expected
        assert report.wal_records == 3


def durable_server(medium, *, ib_faults=(), policy=None, interval=8):
    return DiverseServer(
        [make_server("IB", ib_faults), make_server("OR"), make_server("MS")],
        config=ServerConfig(
            adjudication="majority",
            policy=policy,
            durability=DurabilityManager(medium, checkpoint_interval=interval),
        ),
    )


SCRIPT = (
    "CREATE TABLE t (id INT PRIMARY KEY, v INT);\n"
    + "\n".join(f"INSERT INTO t VALUES ({i}, {i * 10});" for i in range(1, 13))
)


def run_script(server, sql):
    from repro.study.runner import split_statements

    for statement in split_statements(sql):
        server.execute(statement)


class TestDurabilityManager:
    def test_logs_shared_and_per_replica(self):
        medium = MemoryMedium()
        server = durable_server(medium)
        run_script(server, SCRIPT)
        manager = server.durability
        assert len(manager._shared.scan().records) == 13
        for key in ("IB", "OR", "MS"):
            assert len(manager.store(key).wal.scan().records) == 13
        assert server.stats.wal_records == 39
        assert server.stats.durable_checkpoints >= 3

    def test_restart_recovers_all_replicas(self):
        medium = MemoryMedium()
        server = durable_server(medium)
        run_script(server, SCRIPT)
        expected = engine_state_signature(server.replica("IB").product.engine)

        restarted = durable_server(medium.clone())
        outcome = restarted.durability.recover_server()
        assert outcome.write_log == 13
        assert outcome.crashed == [] and outcome.healed == []
        assert outcome.residual_disagreements == {}
        for key in ("IB", "OR", "MS"):
            replica = restarted.replica(key)
            assert replica.state is ReplicaState.ACTIVE
            assert engine_state_signature(replica.product.engine) == expected
        # Service continues: the restored write log feeds adjudication.
        restarted.execute("INSERT INTO t VALUES (99, 990)")
        assert restarted.stats.durable_recoveries == 1

    def test_minority_damage_healed_by_majority(self):
        medium = MemoryMedium()
        server = durable_server(medium, interval=None)
        run_script(server, SCRIPT)
        image = medium.clone()
        # Chew a hole early in IB's WAL: its recovery loses rows.
        image.corrupt("IB/wal", 60, xor=0x55)

        restarted = durable_server(image)
        outcome = restarted.durability.recover_server()
        assert outcome.healed == ["IB"]
        # Supervisor replay repairs IB from the restored write log.
        restarted.recover("IB", force=True)
        assert restarted.verify_consistency() == {}

    def test_quarantined_replica_wal_stays_current(self):
        medium = MemoryMedium()
        server = durable_server(medium, interval=None)
        run_script(server, SCRIPT)
        ib = server.replica("IB")
        server.supervisor.quarantine(ib)
        server.execute("INSERT INTO t VALUES (50, 500)")
        # The write reached IB's WAL even though IB did not serve it.
        assert len(server.durability.store("IB").wal.scan().records) == 14


class TestOnlineRebuild:
    def test_rebuild_readmits_retired_replica(self):
        medium = MemoryMedium()
        server = durable_server(medium)
        run_script(server, SCRIPT)
        ib = server.replica("IB")
        server.supervisor.retire(ib)
        assert ib.state is ReplicaState.RETIRED

        assert server.rebuild("IB")
        assert ib.state is ReplicaState.REBUILDING
        # Live traffic keeps flowing while the rebuild advances.
        for i in range(60, 70):
            server.execute(f"INSERT INTO t VALUES ({i}, {i})")
        server.drive_rebuilds()
        assert ib.state is ReplicaState.ACTIVE
        assert server.stats.rebuilds_completed == 1
        assert ib.health.rebuilds == 1
        assert server.verify_consistency() == {}
        # Re-baseline checkpoint was written on admission.
        assert server.durability.store("IB").checkpoints.load_latest() is not None

    def test_rebuild_needs_live_donor(self):
        server = DiverseServer(
            [make_server("IB"), make_server("OR")],
            config=ServerConfig(adjudication="compare",
                                durability=DurabilityManager(MemoryMedium())),
        )
        server.execute("CREATE TABLE t (x INT)")
        for replica in server.replicas:
            server.supervisor.retire(replica)
        assert not server.rebuild("IB")

    def test_auto_rebuild_after_schedules_itself(self):
        medium = MemoryMedium()
        server = durable_server(
            medium, policy=SupervisorPolicy(auto_rebuild_after=5.0)
        )
        run_script(server, SCRIPT)
        ib = server.replica("IB")
        server.supervisor.retire(ib)
        for i in range(100, 130):
            server.execute(f"INSERT INTO t VALUES ({i}, {i})")
            if ib.state is ReplicaState.ACTIVE:
                break
        assert ib.state is ReplicaState.ACTIVE
        assert server.stats.rebuilds_started == 1


class TestStorageBank:
    def test_every_banked_repro_matches_ground_truth(self):
        for report in storage_fault_bank():
            observed = classify_repro(report)
            assert report.matches(observed), (report.bug_id, observed)

    def test_bank_covers_all_three_classes(self):
        assert {r.expected_bucket for r in storage_fault_bank()} == {
            "torn", "lost", "corrupt",
        }

    def test_trigger_slices_unique_and_minimal(self):
        bank = storage_fault_bank()
        signatures = {trigger_slice_signature(r) for r in bank}
        assert len(signatures) == len(bank)
        for report in bank:
            assert report.minimized().dropped, report.bug_id

    def test_dead_storage_fault_detected(self):
        assert dead_storage_faults(storage_fault_bank()) == []
        broken = storage_fault_bank()[0]
        dead = type(broken)(
            **{**broken.__dict__,
               "fault": FaultSpec(
                   "STOR-DEAD", "matches nothing",
                   SqlPatternTrigger(r"DELETE\s+FROM\s+nowhere"),
                   TornWriteEffect(), kind=FailureKind.STORAGE,
               )}
        )
        entries = dead_storage_faults([dead])
        assert [entry.fault_id for entry in entries] == ["STOR-DEAD"]


class TestRebuildPolicyModel:
    def test_seed_and_catchup_terms(self):
        model = RebuildPolicyModel(
            seed_rows=1000, seed_rate=100, replay_rate=50,
            write_arrival_rate=10, verify_cost=2.0,
        )
        assert model.seed_time == pytest.approx(10.0)
        # Backlog 10*10=100 statements drains at 40/s.
        assert model.catchup_time == pytest.approx(2.5)
        assert model.expected_rebuild_time() == pytest.approx(14.5)

    def test_idle_system_has_no_catchup(self):
        model = RebuildPolicyModel(seed_rows=500, seed_rate=50, replay_rate=10)
        assert model.catchup_time == 0.0
        assert model.expected_rebuild_time() == pytest.approx(10.0)

    def test_rebuild_that_cannot_catch_up(self):
        model = RebuildPolicyModel(
            seed_rows=100, seed_rate=10, replay_rate=5, write_arrival_rate=5
        )
        assert model.expected_rebuild_time() == float("inf")
        with pytest.raises(ValueError):
            model.effective_replica(0.01)

    def test_effective_replica_feeds_availability(self):
        model = RebuildPolicyModel(
            seed_rows=100, seed_rate=100, replay_rate=20, write_arrival_rate=2
        )
        replica = model.effective_replica(0.001)
        assert 0.99 < replica.availability < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RebuildPolicyModel(seed_rows=-1, seed_rate=1, replay_rate=1)
        with pytest.raises(ValueError):
            RebuildPolicyModel(seed_rows=1, seed_rate=0, replay_rate=1)


class TestDiskstormCli:
    def test_smoke(self, capsys):
        from repro.__main__ import main

        assert main(["diskstorm", "6"]) == 0
        out = capsys.readouterr().out
        assert "phase 2 -- power cut + restart" in out
        assert "IB final state: active" in out
