"""The generative hunt campaign: pristine silence, seeded predicate
bugs caught by the static TLP oracle on a single replica, dedup, and
repro minimization."""

import pytest

from repro.faults import (
    AlwaysTrigger,
    FaultSpec,
    PartitionDropBugEffect,
    PredicateFoldBugEffect,
)
from repro.hunt import run_hunt


def _spec(fault_id, effect):
    return FaultSpec(
        fault_id=fault_id,
        description=fault_id,
        trigger=AlwaysTrigger(),
        effect=effect,
    )


@pytest.fixture(scope="module")
def pristine_report():
    return run_hunt(30, seed=7)


@pytest.fixture(scope="module")
def fold_report():
    return run_hunt(
        30,
        seed=7,
        products=["IB"],
        faults={"IB": [_spec("fold-bug", PredicateFoldBugEffect())]},
    )


@pytest.fixture(scope="module")
def drop_report():
    return run_hunt(
        30,
        seed=7,
        products=["IB"],
        faults={"IB": [_spec("drop-bug", PartitionDropBugEffect())]},
    )


class TestPristineCampaign:
    def test_zero_findings(self, pristine_report):
        assert pristine_report.findings == []

    def test_oracles_actually_ran(self, pristine_report):
        assert pristine_report.statements == 30
        assert pristine_report.tlp_checks > 0
        assert pristine_report.pivot_checks > 0
        assert pristine_report.vote_checks > 0

    def test_no_execution_errors(self, pristine_report):
        assert pristine_report.errors == 0

    def test_payload_shape(self, pristine_report):
        payload = pristine_report.to_payload()
        assert payload["products"] == ["IB", "PG", "OR", "MS"]
        assert payload["findings"] == []
        assert payload["seed"] == 7


class TestSeededFoldBug:
    """NOT UNKNOWN -> TRUE: the NOT-partition over-returns, so the TLP
    union over-counts — on one replica, where voting sees nothing."""

    def test_tlp_catches_it(self, fold_report):
        assert any(
            finding.oracle == "tlp"
            and finding.product == "IB"
            and finding.direction == "partition-union-over-counts"
            for finding in fold_report.findings
        )

    def test_voting_is_structurally_blind(self, fold_report):
        # A single product means no cross-replica comparison ever runs:
        # only the intra-product TLP oracle can convict.
        assert fold_report.vote_checks == 0

    def test_repeated_hits_are_deduplicated(self, fold_report):
        tlp = [f for f in fold_report.findings if f.oracle == "tlp"]
        assert len(tlp) == 1
        assert tlp[0].duplicates > 0
        assert fold_report.duplicates_folded == tlp[0].duplicates

    def test_repro_is_minimized(self, fold_report):
        script = fold_report.findings[0].script
        assert "CREATE TABLE hunt" in script
        assert "decoy" not in script
        assert script.rstrip().endswith(";")


class TestSeededPartitionDropBug:
    """Composite IS NULL -> FALSE: the IS-NULL partition drops its
    rows, so the TLP union under-counts."""

    def test_tlp_catches_it(self, drop_report):
        assert any(
            finding.oracle == "tlp"
            and finding.product == "IB"
            and finding.direction == "partition-union-under-counts"
            for finding in drop_report.findings
        )

    def test_direction_distinguishes_the_two_bugs(self, fold_report, drop_report):
        fold_keys = {f.rekey() for f in fold_report.findings}
        drop_keys = {f.rekey() for f in drop_report.findings}
        assert fold_keys.isdisjoint(drop_keys)


class TestTriage:
    def test_triage_flag_is_accepted(self):
        # With pristine products there is nothing to filter either way;
        # the campaign must stay silent with triage off too (no false
        # alarms are BENIGN_DIALECT rescues in disguise).
        report = run_hunt(10, seed=11, triage=False)
        assert report.findings == []

    def test_determinism(self):
        first = run_hunt(8, seed=13).to_payload()
        second = run_hunt(8, seed=13).to_payload()
        assert first == second
