"""Front-end memoization for the prepared-statement pipeline.

Every ``DiverseServer.execute`` call runs the same front-end stages:
parse the statement, extract traits, translate it to each replica's
dialect, and (with static analysis on) compute order/access verdicts.
All of that work depends only on the statement *text* and — for the
verdicts and per-dialect artifacts — on the current schema, so it is
memoized here and amortized across repeated executions.

Cache keys and invalidation:

* **parsed** — keyed on statement text alone.  Parsing is
  schema-independent; name binding happens at execute time.
* **translation** — keyed on ``(dialect key, text, generation)``.  The
  token-level rewrite itself is schema-independent, but prepared
  handles derived from a translation are re-prepared after DDL, so the
  generation is part of the key (the satellite contract: dialect AND
  text AND schema generation).
* **verdict** — keyed on ``(text, generation)``.  Order verdicts read
  the schema's unique keys (``ORDER BY c`` is TOTAL only while ``c``
  is unique), so a stale entry after ``CREATE INDEX`` / ``ALTER
  TABLE`` would be wrong.  Bumping the generation on every DDL makes
  that impossible.
* **divergence** / **def_use** — keyed on ``(text, generation)`` for
  the same reason: both read declared column types/nullability and the
  view catalog from the schema.
* **abstraction** — keyed on ``(text, generation)``.  The ternary-logic
  predicate abstraction seeds its intervals and nullability from the
  schema's declared column types and constraints, so DDL invalidates
  it exactly like the verdict layers.

The generation mirrors the engines' ``Catalog.generation`` counter:
the middleware bumps it once per DDL statement it commits, which is
exactly when every replica catalog bumped its own.

Translation *refusals* (:class:`~repro.errors.FeatureNotSupported`)
are cached too — a dialect that rejects a statement rejects it every
time — and re-raised on each hit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Union

from repro.analysis.dataflow import DefUse, statement_def_use
from repro.analysis.divergence import StatementDivergence, analyze_divergence
from repro.analysis.predicates import StatementAbstraction, summarize_statement
from repro.analysis.schema import ScriptSchema
from repro.analysis.verdicts import StatementVerdict, analyze_statement
from repro.dialects.features import DialectDescriptor
from repro.dialects.translator import translate_script
from repro.errors import FeatureNotSupported
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.analysis import StatementTraits, extract_traits
from repro.sqlengine.parser import parse_prepared


@dataclass
class PipelineStats:
    """Hit/miss accounting for each cache layer."""

    parse_hits: int = 0
    parse_misses: int = 0
    translate_hits: int = 0
    translate_misses: int = 0
    verdict_hits: int = 0
    verdict_misses: int = 0
    divergence_hits: int = 0
    divergence_misses: int = 0
    dataflow_hits: int = 0
    dataflow_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    abstraction_hits: int = 0
    abstraction_misses: int = 0
    #: Schema-generation bumps (each one invalidates the keyed layers).
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return (
            self.parse_hits
            + self.translate_hits
            + self.verdict_hits
            + self.divergence_hits
            + self.dataflow_hits
            + self.plan_hits
            + self.abstraction_hits
        )

    @property
    def misses(self) -> int:
        return (
            self.parse_misses
            + self.translate_misses
            + self.verdict_misses
            + self.divergence_misses
            + self.dataflow_misses
            + self.plan_misses
            + self.abstraction_misses
        )


#: A parsed entry: (statement, traits, placeholder count).
ParsedEntry = tuple[ast.Statement, StatementTraits, int]


class StatementPipeline:
    """Bounded LRU memoization of the per-statement front-end stages."""

    def __init__(self, *, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("pipeline capacity must be positive")
        self.capacity = capacity
        self.generation = 0
        self.stats = PipelineStats()
        self._parsed: OrderedDict[str, ParsedEntry] = OrderedDict()
        self._translations: OrderedDict[
            tuple[str, str, int], Union[str, FeatureNotSupported]
        ] = OrderedDict()
        self._verdicts: OrderedDict[tuple[str, int], StatementVerdict] = OrderedDict()
        self._divergences: OrderedDict[
            tuple[str, int], StatementDivergence
        ] = OrderedDict()
        self._def_uses: OrderedDict[tuple[str, int], DefUse] = OrderedDict()
        self._plans: OrderedDict[tuple[str, int], str] = OrderedDict()
        self._abstractions: OrderedDict[
            tuple[str, int], StatementAbstraction
        ] = OrderedDict()

    def bump_generation(self) -> None:
        """Record a schema change: entries keyed on the old generation
        can no longer be returned."""
        self.generation += 1
        self.stats.invalidations += 1

    # -- stages ------------------------------------------------------------

    def parsed(self, sql: str) -> ParsedEntry:
        """Parse one statement and extract its traits, memoized."""
        entry = self._parsed.get(sql)
        if entry is not None:
            self._parsed.move_to_end(sql)
            self.stats.parse_hits += 1
            return entry
        statement, param_count = parse_prepared(sql)
        entry = (statement, extract_traits(statement), param_count)
        self._store(self._parsed, sql, entry)
        self.stats.parse_misses += 1
        return entry

    def translation(self, sql: str, descriptor: DialectDescriptor) -> str:
        """Translate ``sql`` to a dialect, memoized; cached refusals
        re-raise their :class:`FeatureNotSupported`."""
        key = (descriptor.key, sql, self.generation)
        cached = self._translations.get(key)
        if cached is not None:
            self._translations.move_to_end(key)
            self.stats.translate_hits += 1
            if isinstance(cached, FeatureNotSupported):
                raise cached
            return cached
        self.stats.translate_misses += 1
        try:
            translated = translate_script(sql, descriptor)
        except FeatureNotSupported as refusal:
            self._store(self._translations, key, refusal)
            raise
        self._store(self._translations, key, translated)
        return translated

    def verdict(
        self,
        sql: str,
        statement: ast.Statement,
        schema: ScriptSchema,
        traits: StatementTraits,
    ) -> StatementVerdict:
        """Static-analysis verdict for one statement, memoized per
        schema generation."""
        key = (sql, self.generation)
        cached = self._verdicts.get(key)
        if cached is not None:
            self._verdicts.move_to_end(key)
            self.stats.verdict_hits += 1
            return cached
        verdict = analyze_statement(statement, schema, traits=traits)
        self._store(self._verdicts, key, verdict)
        self.stats.verdict_misses += 1
        return verdict

    def divergence(
        self,
        sql: str,
        statement: ast.Statement,
        schema: ScriptSchema,
        traits: StatementTraits,
    ) -> StatementDivergence:
        """Dialect-divergence analysis for one statement, memoized per
        schema generation."""
        key = (sql, self.generation)
        cached = self._divergences.get(key)
        if cached is not None:
            self._divergences.move_to_end(key)
            self.stats.divergence_hits += 1
            return cached
        divergence = analyze_divergence(statement, schema, traits=traits)
        self._store(self._divergences, key, divergence)
        self.stats.divergence_misses += 1
        return divergence

    def def_use(
        self,
        sql: str,
        statement: ast.Statement,
        schema: ScriptSchema,
        traits: StatementTraits,
    ) -> DefUse:
        """Def/use sets for one statement, memoized per schema
        generation."""
        key = (sql, self.generation)
        cached = self._def_uses.get(key)
        if cached is not None:
            self._def_uses.move_to_end(key)
            self.stats.dataflow_hits += 1
            return cached
        def_use = statement_def_use(statement, schema, traits)
        self._store(self._def_uses, key, def_use)
        self.stats.dataflow_misses += 1
        return def_use

    def plan(self, sql: str, catalog) -> str:
        """Rendered logical plan (EXPLAIN text) for one statement,
        memoized per schema generation.  The index-selection rewrite
        reads the catalog's unique-key sets, so a stale entry after
        ``CREATE INDEX`` would show the wrong plan — the generation key
        makes that impossible."""
        from repro.sqlengine.plan import explain_statement

        key = (sql, self.generation)
        cached = self._plans.get(key)
        if cached is not None:
            self._plans.move_to_end(key)
            self.stats.plan_hits += 1
            return cached
        text = explain_statement(sql, catalog)
        self._store(self._plans, key, text)
        self.stats.plan_misses += 1
        return text

    def abstraction(
        self,
        sql: str,
        statement: ast.Statement,
        schema: ScriptSchema,
    ) -> StatementAbstraction:
        """Ternary-logic predicate abstraction for one statement —
        WHERE truth, dead predicates, TLP partition triple — memoized
        per schema generation (the abstraction seeds intervals and
        nullability from declared column constraints)."""
        key = (sql, self.generation)
        cached = self._abstractions.get(key)
        if cached is not None:
            self._abstractions.move_to_end(key)
            self.stats.abstraction_hits += 1
            return cached
        abstraction = summarize_statement(statement, schema)
        self._store(self._abstractions, key, abstraction)
        self.stats.abstraction_misses += 1
        return abstraction

    # -- plumbing ----------------------------------------------------------

    def _store(self, cache: OrderedDict, key, value) -> None:
        if len(cache) >= self.capacity:
            cache.popitem(last=False)
        cache[key] = value
