"""Replica supervision: the lifecycle layer of the diverse middleware.

The paper's Section 2.1 availability argument — "servers that are
diagnosed as correct can continue operation while recovery is performed
on the faulty server[s]" — needs more than fire-once log replay to hold
up under sustained load.  This module supplies the machinery real
replication middleware has:

* a per-replica health **state machine**
  (ACTIVE → SUSPECTED → QUARANTINED → FAILED/RETIRED) driven by an
  injectable deterministic :class:`VirtualClock`;
* **bounded recovery retries with exponential backoff** instead of a
  single synchronous replay attempt;
* a **circuit breaker** that permanently retires a replica caught in a
  crash loop (repeated failed recoveries inside a sliding window);
* **checkpointed recovery**: periodic engine-state snapshots so replay
  cost is bounded by writes-since-checkpoint, not the full history;
* **graceful degradation**: a configurable adjudication fallback chain
  (majority → compare → primary) with quorum-loss accounting when the
  active replica set drops below what the configured policy needs;
* a statement **watchdog**: per-statement deadline budgets in
  virtual-cost units (``statement_deadline``) so hung or stalled
  replicas are excluded, audited, and quarantined, plus a replay
  deadline (``recovery_deadline``) so a replica that stalls *during*
  recovery fails the attempt — and eventually the circuit breaker —
  instead of wedging the recovery loop.

Everything is deterministic: time is the virtual clock, which advances
one unit per statement executed through the middleware, so backoff
schedules, circuit-breaker windows, and checkpoint cadence reproduce
exactly across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.errors import EngineCrash, ReproError, SqlError
from repro.faults.audit import TimeoutAuditEntry
from repro.sqlengine.engine import EngineSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middleware.server import DiverseServer, Replica


class RecoveryStalled(ReproError):
    """A replayed statement blew the recovery deadline.

    Raised inside :meth:`ReplicaSupervisor._replay` and caught by
    :meth:`ReplicaSupervisor.attempt_recovery`: the attempt fails like a
    recovery crash, so stalls during replay feed the same backoff and
    circuit-breaker machinery instead of letting a hung replay wedge the
    recovery loop forever.
    """


class ReplicaState(Enum):
    """Health state of one replica inside the middleware.

    ``ACTIVE``
        Serving statements and voting.
    ``SUSPECTED``
        An anomaly (crash or out-vote) was just observed; the replica is
        given one retry before any eviction decision.  Transient.
    ``QUARANTINED``
        Removed from the active set; recovery attempts are scheduled
        with exponential backoff on the virtual clock.
    ``FAILED``
        Recovery was abandoned (per-incident retry budget exhausted, or
        supervision is disabled).  Manual :meth:`DiverseServer.recover`
        can still bring the replica back.
    ``RETIRED``
        The circuit breaker tripped: too many failed recoveries inside
        the window (a crash loop).  Exits only through an online
        rebuild (or a forced manual recovery).
    ``REBUILDING``
        Being re-seeded from a healthy-majority snapshot while the
        middleware keeps serving: seed restore, then write-delta
        replay, then a quorum consistency check gates re-admission.
    """

    ACTIVE = "active"
    SUSPECTED = "suspected"
    QUARANTINED = "quarantined"
    FAILED = "failed"
    RETIRED = "retired"
    REBUILDING = "rebuilding"


class VirtualClock:
    """Deterministic time source for the supervisor.

    The middleware advances the clock one unit per client statement, so
    backoff delays are measured in statements — reproducible and free of
    wall-clock flakiness.  Tests may advance it directly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float = 1.0) -> float:
        if delta < 0:
            raise ValueError("the virtual clock cannot run backwards")
        self._now += delta
        return self._now


#: Minimum active replicas each adjudication policy needs to deliver
#: its guarantee (majority voting is meaningless below three).
POLICY_QUORUM = {"majority": 3, "compare": 2, "monitor": 1, "primary": 1}


@dataclass
class SupervisorPolicy:
    """Tunable knobs of the replica supervision subsystem."""

    #: Re-execute a statement once on a crashed/out-voted replica before
    #: suspecting it, so probabilistic Heisenbug faults (Section 3.2)
    #: don't evict a healthy product.  Out-vote retries apply to reads
    #: and statically-proven re-execution-safe writes (see
    #: ``idempotent_write_retry``); other writes are never re-run.
    statement_retry: bool = True
    #: Allow the single-shot retry on *writes* the static analyzer
    #: proves re-execution-safe (state-idempotent with a reproducible
    #: rowcount — e.g. ``UPDATE t SET lbl = 'x' WHERE id = 1``).  Off
    #: reverts to the blanket "writes never retry" rule.
    idempotent_write_retry: bool = True
    #: Failed recovery attempts per incident before giving up (FAILED).
    max_recovery_attempts: int = 8
    #: Backoff before retry ``n`` is ``min(base * factor**(n-1), cap)``
    #: virtual-clock units; the first attempt of an incident is
    #: immediate.
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 64.0
    #: Circuit breaker: this many failed recoveries within
    #: ``circuit_window`` clock units retires the replica for good.
    circuit_threshold: int = 5
    circuit_window: float = 256.0
    #: Snapshot every active replica's engine after this many committed
    #: writes; ``None`` disables checkpointing (full replay always).
    checkpoint_interval: Optional[int] = 32
    #: Adjudication fallback order when active replicas drop below the
    #: configured policy's quorum (see :data:`POLICY_QUORUM`).
    degradation_chain: tuple[str, ...] = ("majority", "compare", "primary")
    #: Per-statement deadline budget in virtual-cost units.  A replica
    #: whose answer costs more is treated as timed out: its answer is
    #: excluded from adjudication, the event is audited as a
    #: self-evident performance failure, and the replica is quarantined
    #: exactly like a crash.  ``None`` disables the watchdog (a hung
    #: replica is then invisible until it answers, if ever).
    statement_deadline: Optional[float] = None
    #: Per-statement deadline while *replaying* the write log during
    #: recovery; a replayed statement costing more fails the recovery
    #: attempt (backoff, then circuit breaker).  ``None`` falls back to
    #: ``statement_deadline``.
    recovery_deadline: Optional[float] = None
    # -- online rebuild (RETIRED -> REBUILDING -> ACTIVE) ----------------
    #: Donor snapshot rows copied per clock tick while seeding a
    #: rebuild; the seed phase of a rebuild therefore costs
    #: ``ceil(donor rows / rebuild_seed_rows)`` ticks of live traffic.
    rebuild_seed_rows: int = 256
    #: Write-log statements replayed per tick while a rebuilding
    #: replica catches up with the delta accumulated since its seed
    #: snapshot.  Catch-up converges only while this exceeds the live
    #: write arrival rate (at most one write per tick).
    rebuild_batch: int = 8
    #: Start an automatic rebuild this many clock units after a replica
    #: is retired (or a rebuild attempt fails).  ``None`` means rebuilds
    #: are manual (:meth:`DiverseServer.rebuild`).
    auto_rebuild_after: Optional[float] = None

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (attempt 0 is immediate)."""
        if attempt <= 0:
            return 0.0
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1), self.backoff_cap)

    @property
    def effective_recovery_deadline(self) -> Optional[float]:
        """The replay-time deadline: explicit, or the statement one."""
        if self.recovery_deadline is not None:
            return self.recovery_deadline
        return self.statement_deadline


@dataclass
class Checkpoint:
    """One replica's engine snapshot plus its position in the write log."""

    log_position: int
    snapshot: EngineSnapshot
    taken_at: float


@dataclass
class RebuildProgress:
    """State of one in-flight online rebuild.

    The donor snapshot is captured when the rebuild starts; seeding is
    charged in ticks proportional to the donor's row count, after
    which the snapshot is installed and the write-log delta past
    ``cursor`` is replayed batch-by-batch until the replica has caught
    up with live traffic.
    """

    started_at: float
    snapshot: EngineSnapshot
    #: Next write-log index to replay once seeded.
    cursor: int
    #: Donor rows to copy during the seed phase, and progress so far.
    seed_rows_total: int
    seed_rows_loaded: int = 0
    seeded: bool = False
    #: Delta statements replayed so far.
    replayed: int = 0


@dataclass
class ReplicaHealth:
    """Supervision bookkeeping for one replica."""

    #: Failed recovery attempts in the current incident.
    attempts: int = 0
    #: Virtual time of the next scheduled recovery attempt.
    next_attempt_at: Optional[float] = None
    #: Virtual time the current incident started.
    quarantined_at: Optional[float] = None
    #: Virtual times of failed recoveries (pruned to the circuit window).
    failure_times: list[float] = field(default_factory=list)
    #: Total quarantine incidents.
    quarantines: int = 0
    #: Latest engine snapshot, if checkpointing is enabled.
    checkpoint: Optional[Checkpoint] = None
    #: Statements replayed by each successful recovery (bench telemetry).
    replay_lengths: list[int] = field(default_factory=list)
    #: Virtual time the last successful recovery took from quarantine.
    last_recovery_duration: float = 0.0
    #: Virtual time the replica was retired (schedules auto-rebuild).
    retired_at: Optional[float] = None
    #: The in-flight online rebuild, while state is REBUILDING.
    rebuild: Optional[RebuildProgress] = None
    #: Completed online rebuilds.
    rebuilds: int = 0
    #: Virtual time the last successful rebuild took (rebuild MTTR).
    last_rebuild_duration: float = 0.0


class ReplicaSupervisor:
    """Drives replica lifecycle for one :class:`DiverseServer`.

    The server reports incidents (:meth:`quarantine`) and ticks the
    clock once per statement (:meth:`tick`); the supervisor schedules
    and performs recoveries, takes checkpoints, trips the circuit
    breaker, and picks the effective adjudication policy under
    degradation.  All counters surface through ``MiddlewareStats``.
    """

    def __init__(
        self,
        policy: Optional[SupervisorPolicy] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self.clock = clock or VirtualClock()
        self._server: Optional["DiverseServer"] = None
        self._last_checkpoint_writes = 0

    def attach(self, server: "DiverseServer") -> None:
        self._server = server

    @property
    def stats(self):
        return self._server.stats

    # -- statement-time hooks ------------------------------------------------

    def tick(self) -> None:
        """Advance virtual time one statement and run due recoveries."""
        self.clock.advance(1.0)
        self.poll()

    def poll(self) -> None:
        """Attempt recovery on every quarantined replica whose backoff
        has elapsed, advance in-flight rebuilds one step, and start
        scheduled automatic rebuilds of retired replicas."""
        auto_after = self.policy.auto_rebuild_after
        for replica in self._server.replicas:
            health = replica.health
            if (
                replica.state is ReplicaState.QUARANTINED
                and health.next_attempt_at is not None
                and health.next_attempt_at <= self.clock.now
            ):
                self.attempt_recovery(replica)
            elif replica.state is ReplicaState.REBUILDING:
                self.advance_rebuild(replica)
            elif (
                replica.state is ReplicaState.RETIRED
                and auto_after is not None
                and health.retired_at is not None
                and self.clock.now - health.retired_at >= auto_after
            ):
                self.start_rebuild(replica)

    def maybe_checkpoint(self) -> None:
        """Snapshot all active replicas once enough writes accumulated.

        Skipped while a transaction is open (the write log's BEGIN/COMMIT
        markers must not straddle a checkpoint boundary) and retried on
        the next committed write.
        """
        interval = self.policy.checkpoint_interval
        if not interval:
            return
        if self.stats.writes - self._last_checkpoint_writes < interval:
            return
        active = self._server.active_replicas()
        if not active:
            return
        if any(r.product.engine.transactions.in_transaction for r in active):
            return
        position = len(self._server._write_log)
        for replica in active:
            replica.health.checkpoint = Checkpoint(
                log_position=position,
                snapshot=replica.product.snapshot(),
                taken_at=self.clock.now,
            )
        self.stats.checkpoints += 1
        self._last_checkpoint_writes = self.stats.writes

    # -- incidents -----------------------------------------------------------

    def quarantine(self, replica: "Replica") -> None:
        """Evict a replica from the active set and start recovering it.

        The first recovery attempt of an incident runs immediately;
        subsequent attempts back off exponentially.
        """
        health = replica.health
        replica.state = ReplicaState.QUARANTINED
        health.quarantines += 1
        health.attempts = 0
        health.quarantined_at = self.clock.now
        health.next_attempt_at = self.clock.now
        self.stats.quarantines += 1
        self.attempt_recovery(replica)

    def attempt_recovery(self, replica: "Replica", *, manual: bool = False) -> bool:
        """One recovery attempt: checkpoint restore + tail replay, or
        full replay when no checkpoint exists.  Returns success."""
        health = replica.health
        try:
            replayed = self._replay(replica)
        except (EngineCrash, RecoveryStalled):
            self._recovery_failed(replica, manual=manual)
            return False
        replica.state = ReplicaState.ACTIVE
        health.attempts = 0
        health.next_attempt_at = None
        health.retired_at = None
        health.replay_lengths.append(replayed)
        if health.quarantined_at is not None:
            health.last_recovery_duration = self.clock.now - health.quarantined_at
            health.quarantined_at = None
        self.stats.replayed_statements += replayed
        replica.stats.recoveries += 1
        self.stats.recoveries += 1
        self._server._replica_recovered(replica)
        return True

    def retire(self, replica: "Replica") -> None:
        """Circuit breaker action: take the replica out of service.

        With ``auto_rebuild_after`` set the retirement schedules an
        online rebuild; otherwise it is terminal unless forced.  The
        in-memory checkpoint is discarded — it may capture the very
        corruption that retired the replica.
        """
        replica.state = ReplicaState.RETIRED
        replica.health.next_attempt_at = None
        replica.health.retired_at = self.clock.now
        replica.health.checkpoint = None
        replica.health.rebuild = None
        self.stats.retirements += 1

    # -- online rebuild ------------------------------------------------------

    def start_rebuild(self, replica: "Replica") -> bool:
        """Begin re-seeding a RETIRED/FAILED replica from the healthy
        majority while the middleware keeps serving.

        Captures a snapshot of the first active replica (the donor) and
        the current write-log position; seeding and delta replay then
        proceed incrementally, one step per clock tick.  Returns False
        (and leaves the replica untouched) when no healthy donor is
        available or a transaction is open — the caller may retry.
        """
        if replica.state not in (ReplicaState.RETIRED, ReplicaState.FAILED):
            return False
        donors = self._server.active_replicas()
        if not donors:
            return False
        if any(r.product.engine.transactions.in_transaction for r in donors):
            return False
        donor = donors[0]
        replica.health.rebuild = RebuildProgress(
            started_at=self.clock.now,
            snapshot=donor.product.snapshot(),
            cursor=len(self._server._write_log),
            seed_rows_total=donor.product.engine.storage.row_count(),
        )
        replica.state = ReplicaState.REBUILDING
        self.stats.rebuilds_started += 1
        return True

    def advance_rebuild(self, replica: "Replica") -> None:
        """One tick of rebuild progress: seed-copy budgeted rows, or
        replay a batch of the write-log delta; admit when caught up."""
        rebuild = replica.health.rebuild
        if rebuild is None:  # pragma: no cover - state invariant
            replica.state = ReplicaState.RETIRED
            return
        product = replica.product
        if not rebuild.seeded:
            rebuild.seed_rows_loaded += max(1, self.policy.rebuild_seed_rows)
            if rebuild.seed_rows_loaded >= rebuild.seed_rows_total:
                product.restart()  # clear any crash flag before install
                product.restore(rebuild.snapshot)
                rebuild.seeded = True
            return
        log = self._server._write_log
        budget = max(1, self.policy.rebuild_batch)
        engine = product.engine
        deadline = self.policy.effective_recovery_deadline
        engine.phase = "recover"
        try:
            while budget > 0 and rebuild.cursor < len(log):
                sql = log[rebuild.cursor]
                rebuild.cursor += 1
                rebuild.replayed += 1
                budget -= 1
                self.stats.rebuild_replayed_statements += 1
                try:
                    translated = self._server.pipeline.translation(
                        sql, product.descriptor
                    )
                    result = product.execute(translated)
                except SqlError:
                    continue  # errored at commit time; errors again
                except EngineCrash:
                    self._rebuild_failed(replica)
                    return
                if deadline is not None and result.virtual_cost > deadline:
                    self._record_recovery_timeout(
                        replica, sql, result.virtual_cost, deadline
                    )
                    self._rebuild_failed(replica)
                    return
        finally:
            engine.phase = "serve"
        if rebuild.cursor >= len(log) and not engine.transactions.in_transaction:
            self._try_admit(replica)

    def _try_admit(self, replica: "Replica") -> None:
        """Re-admission gate: the rebuilt state must agree with the
        quorum of active replicas before the replica serves again."""
        active = self._server.active_replicas()
        if any(r.product.engine.transactions.in_transaction for r in active):
            return  # mid-transaction states are not comparable; retry
        if active and not self._matches_quorum(replica, active):
            self._rebuild_failed(replica)
            return
        rebuild = replica.health.rebuild
        health = replica.health
        replica.state = ReplicaState.ACTIVE
        health.attempts = 0
        health.next_attempt_at = None
        health.failure_times.clear()
        health.retired_at = None
        health.rebuilds += 1
        if rebuild is not None:
            health.last_rebuild_duration = self.clock.now - rebuild.started_at
        health.rebuild = None
        self.stats.rebuilds_completed += 1
        self._server._replica_recovered(replica)

    def _matches_quorum(self, replica: "Replica", active: list) -> bool:
        """True when the rebuilt replica's full normalized state equals
        a majority of the active replicas' states (the
        ``verify_consistency`` criterion applied at the admission
        gate)."""
        from repro.middleware.normalizer import normalize_row

        def dump(candidate) -> dict:
            engine = candidate.product.engine
            return {
                data.name.lower(): sorted(
                    normalize_row(row) for row in data.snapshot()
                )
                for data in engine.storage.tables()
            }

        target = dump(replica)
        matches = sum(1 for peer in active if dump(peer) == target)
        return 2 * matches > len(active)

    def _rebuild_failed(self, replica: "Replica") -> None:
        """A rebuild step crashed, stalled, or failed admission: back
        to RETIRED; ``auto_rebuild_after`` reschedules from now."""
        replica.state = ReplicaState.RETIRED
        replica.health.rebuild = None
        replica.health.retired_at = self.clock.now
        self.stats.rebuilds_failed += 1

    # -- degradation ---------------------------------------------------------

    def effective_adjudication(
        self, configured: str, active_count: int, total_count: int
    ) -> str:
        """The strongest policy in the degradation chain the current
        active replica count can support, starting from ``configured``.

        Quorum requirements are capped at the deployment's total replica
        count: a 2-replica ``majority`` configuration never had three
        voters, so it only degrades on actual replica loss.
        """

        def need(policy: str) -> int:
            return min(POLICY_QUORUM.get(policy, 1), total_count)

        if active_count >= need(configured):
            return configured
        chain = self.policy.degradation_chain
        if configured in chain:
            for candidate in chain[chain.index(configured) + 1:]:
                if active_count >= need(candidate):
                    return candidate
        return configured

    # -- internals -----------------------------------------------------------

    def _replay(self, replica: "Replica") -> int:
        """Rebuild a replica's engine state; returns statements replayed.

        With a checkpoint: restore the snapshot, replay only the write
        log tail past its position.  Without: reset to a fresh install
        and replay the full history.  The engine is flagged as being in
        its recovery phase so recovery-scoped faults
        (:class:`repro.faults.triggers.RecoveryTrigger`) can fire.
        """
        product = replica.product
        health = replica.health
        log = self._server._write_log
        if health.checkpoint is not None:
            product.restart()
            product.restore(health.checkpoint.snapshot)
            tail = log[health.checkpoint.log_position:]
            self.stats.checkpoint_replays += 1
        else:
            product.reset()
            product.restart()
            tail = list(log)
            self.stats.full_replays += 1
        pending = self._server._pending_write
        if pending is not None:
            tail = tail + [pending]
        engine = product.engine
        engine.phase = "recover"
        deadline = self.policy.effective_recovery_deadline
        try:
            for sql in tail:
                try:
                    translated = self._server.pipeline.translation(
                        sql, product.descriptor
                    )
                    result = product.execute(translated)
                except SqlError:
                    continue  # statements that legitimately error replay as errors
                if deadline is not None and result.virtual_cost > deadline:
                    self._record_recovery_timeout(replica, sql, result.virtual_cost, deadline)
                    raise RecoveryStalled(
                        f"replica {replica.key} stalled replaying {sql!r} "
                        f"(cost {result.virtual_cost} > deadline {deadline})"
                    )
        finally:
            engine.phase = "serve"
        return len(tail)

    def _record_recovery_timeout(
        self, replica: "Replica", sql: str, cost: float, deadline: float
    ) -> None:
        self.stats.recovery_timeouts += 1
        self._server.timeout_audit.append(
            TimeoutAuditEntry(
                replica=replica.key,
                sql=sql,
                virtual_cost=cost,
                deadline=deadline,
                at=self.clock.now,
                during_recovery=True,
            )
        )

    def _recovery_failed(self, replica: "Replica", *, manual: bool) -> None:
        health = replica.health
        now = self.clock.now
        health.failure_times.append(now)
        health.failure_times = [
            t for t in health.failure_times if now - t <= self.policy.circuit_window
        ]
        if manual and not self._server.supervised:
            replica.state = ReplicaState.FAILED
            return
        if len(health.failure_times) >= self.policy.circuit_threshold:
            self.retire(replica)
            return
        health.attempts += 1
        if health.attempts >= self.policy.max_recovery_attempts:
            replica.state = ReplicaState.FAILED
            health.next_attempt_at = None
            return
        replica.state = ReplicaState.QUARANTINED
        health.next_attempt_at = now + self.policy.backoff_delay(health.attempts)
        self.stats.backoff_waits += 1
