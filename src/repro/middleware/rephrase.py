"""Query rephrasing: fault tolerance *without* diversity.

Section 7 of the paper lists, as an alternative to diverse servers,
"wrappers rephrasing queries into alternative, logically equivalent
sets of statements to be sent to replicated, even non-diverse servers".
The idea: a bug's failure region is usually syntax-shaped, so running a
*different spelling* of the same query may dodge the bug; disagreement
between the original and the rephrased answers detects the failure on a
single (or non-diverse) deployment.

:class:`QueryRephraser` applies semantics-preserving rewrites:

* ``x [NOT] IN ((A) UNION (B))``  →  ``x [NOT] IN (A) OR/AND x [NOT] IN (B)``
* ``x BETWEEN a AND b``           →  ``x >= a AND x <= b`` (NOT likewise)
* ``x <> y``                      →  ``NOT (x = y)``
* ``a AND b`` / ``a OR b``        →  operand commutation
* ``x IN (v1, v2, ...)``          →  ``x = v1 OR x = v2 OR ...``

All rewrites are exact under SQL three-valued logic (``NOT IN`` over a
UNION distributes to a conjunction of ``NOT IN``; UNKNOWN propagates
identically).

:class:`RephrasingWrapper` wraps one server: SELECTs run in both
spellings and the normalised answers are compared; everything else
passes through.  The corpus shows both its power (it detects the
PG-43 family, whose failure region is the *nesting shape*) and its
limits (bugs triggered by the data touched, not the spelling, produce
the same wrong answer twice — which diversity would catch).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.errors import AdjudicationFailure, SqlError
from repro.middleware.normalizer import normalize_result
from repro.servers.product import ServerProduct
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Result
from repro.sqlengine.parser import parse_statement
from repro.sqlengine.sqlgen import render_statement


class QueryRephraser:
    """Applies semantics-preserving rewrites to SELECT statements."""

    def rephrase(self, stmt: ast.SelectStatement) -> ast.SelectStatement:
        """An equivalent statement with a different syntactic shape.

        The input is not modified; the result may equal the input
        textually when no rewrite applies.
        """
        clone = copy.deepcopy(stmt)
        self._rewrite_select(clone)
        return clone

    def rephrase_sql(self, sql: str) -> str:
        stmt = parse_statement(sql)
        if not isinstance(stmt, ast.SelectStatement):
            raise SqlError("only SELECT statements can be rephrased")
        return render_statement(self.rephrase(stmt))

    # -- tree rewriting ------------------------------------------------------

    def _rewrite_select(self, stmt: ast.SelectStatement) -> None:
        self._rewrite_body(stmt.body)

    def _rewrite_body(self, body) -> None:
        if isinstance(body, ast.SetOperation):
            self._rewrite_body(body.left)
            self._rewrite_body(body.right)
            return
        core: ast.SelectCore = body
        if core.where is not None:
            core.where = self._rewrite_expression(core.where)
        if core.having is not None:
            core.having = self._rewrite_expression(core.having)
        for item in core.from_items:
            self._rewrite_from_item(item)

    def _rewrite_from_item(self, item: ast.FromItem) -> None:
        if isinstance(item, ast.SubqueryRef):
            self._rewrite_select(item.subquery)
        elif isinstance(item, ast.Join):
            self._rewrite_from_item(item.left)
            self._rewrite_from_item(item.right)
            if item.condition is not None:
                item.condition = self._rewrite_expression(item.condition)

    def _rewrite_expression(self, expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.BinaryOp):
            expr.left = self._rewrite_expression(expr.left)
            expr.right = self._rewrite_expression(expr.right)
            if expr.op in ("AND", "OR"):
                # Commute: different parse shape, same 3VL semantics.
                expr.left, expr.right = expr.right, expr.left
                return expr
            if expr.op == "<>":
                return ast.UnaryOp(
                    op="NOT", operand=ast.BinaryOp(op="=", left=expr.left, right=expr.right)
                )
            return expr
        if isinstance(expr, ast.UnaryOp):
            expr.operand = self._rewrite_expression(expr.operand)
            return expr
        if isinstance(expr, ast.BetweenPredicate):
            operand = self._rewrite_expression(expr.operand)
            low = self._rewrite_expression(expr.low)
            high = self._rewrite_expression(expr.high)
            spread = ast.BinaryOp(
                op="AND",
                left=ast.BinaryOp(op=">=", left=operand, right=low),
                right=ast.BinaryOp(op="<=", left=copy.deepcopy(operand), right=high),
            )
            if expr.negated:
                return ast.UnaryOp(op="NOT", operand=spread)
            return spread
        if isinstance(expr, ast.InPredicate):
            return self._rewrite_in(expr)
        if isinstance(expr, ast.ExistsPredicate):
            self._rewrite_select(expr.subquery)
            return expr
        if isinstance(expr, ast.ScalarSubquery):
            self._rewrite_select(expr.subquery)
            return expr
        if isinstance(expr, ast.LikePredicate):
            expr.operand = self._rewrite_expression(expr.operand)
            return expr
        return expr

    def _rewrite_in(self, expr: ast.InPredicate) -> ast.Expression:
        expr.operand = self._rewrite_expression(expr.operand)
        if expr.values is not None:
            # IN-list -> chain of equalities (UNKNOWN semantics match:
            # x IN (a, b) == (x = a) OR (x = b) in SQL 3VL).
            chain: Optional[ast.Expression] = None
            for value in expr.values:
                equal = ast.BinaryOp(op="=", left=copy.deepcopy(expr.operand), right=value)
                chain = equal if chain is None else ast.BinaryOp(op="OR", left=chain, right=equal)
            if chain is None:  # pragma: no cover - grammar forbids empty lists
                return expr
            if expr.negated:
                return ast.UnaryOp(op="NOT", operand=chain)
            return chain
        # Subquery form: distribute over a top-level UNION.
        self._rewrite_select(expr.subquery)
        body = expr.subquery.body
        if isinstance(body, ast.SetOperation) and body.op == "UNION" and not body.all:
            left_stmt = ast.SelectStatement(body=body.left)
            right_stmt = ast.SelectStatement(body=body.right)
            left_in = ast.InPredicate(
                operand=expr.operand, subquery=left_stmt, negated=expr.negated
            )
            right_in = ast.InPredicate(
                operand=copy.deepcopy(expr.operand), subquery=right_stmt,
                negated=expr.negated,
            )
            # x IN (A UNION B) == x IN A OR x IN B;
            # x NOT IN (A UNION B) == x NOT IN A AND x NOT IN B.
            op = "AND" if expr.negated else "OR"
            return ast.BinaryOp(op=op, left=left_in, right=right_in)
        return expr


@dataclass
class RephraserStats:
    selects: int = 0
    rephrased: int = 0
    disagreements: int = 0
    masked_errors: int = 0


class RephrasingWrapper:
    """Single-server fault tolerance by redundant spellings.

    Each SELECT runs twice — original and rephrased — on the *same*
    server.  Normalised disagreement raises
    :class:`~repro.errors.AdjudicationFailure` (detection); a spurious
    error on one spelling with the other succeeding is *masked* by
    returning the succeeding answer (the recovery mode reference [9]
    envisages).  Non-SELECT statements pass through unchanged.
    """

    def __init__(self, server: ServerProduct) -> None:
        self.server = server
        self.rephraser = QueryRephraser()
        self.stats = RephraserStats()

    def execute(self, sql: str) -> Result:
        stmt = parse_statement(sql)
        if not isinstance(stmt, ast.SelectStatement):
            return self.server.execute(sql)
        self.stats.selects += 1
        alternative_sql = render_statement(self.rephraser.rephrase(stmt))
        self.stats.rephrased += 1

        original_error: Optional[SqlError] = None
        original: Optional[Result] = None
        try:
            original = self.server.execute(sql)
        except SqlError as error:
            original_error = error
        try:
            alternative: Optional[Result] = self.server.execute(alternative_sql)
        except SqlError:
            alternative = None

        if original is not None and alternative is not None:
            if normalize_result(original.columns, original.rows) != normalize_result(
                alternative.columns, alternative.rows
            ):
                self.stats.disagreements += 1
                raise AdjudicationFailure(
                    "original and rephrased queries disagree on the same server"
                )
            return original
        if original is not None:  # rephrased spelling errored
            self.stats.disagreements += 1
            raise AdjudicationFailure(
                "rephrased query failed where the original succeeded"
            )
        if alternative is not None:  # original errored; rephrasing dodged the bug
            self.stats.masked_errors += 1
            return alternative
        raise original_error  # both spellings error: genuine client error
