"""The diverse-redundancy fault-tolerant SQL server.

``DiverseServer`` is the "middleware" of the paper's conclusions: it
fans every statement out to two or more diverse off-the-shelf server
products (black-box approach: only their client interfaces are used),
compares the answers after representation normalisation, adjudicates,
and manages replica failure and recovery.

Adjudication policies
---------------------

``compare``
    Pure error *detection* (the 2-version configuration of Table 3):
    all active replicas must agree; disagreement raises
    :class:`~repro.errors.AdjudicationFailure` instead of returning a
    possibly-wrong answer.
``majority``
    Error *masking*: the answer backed by a strict majority of active
    replicas wins; out-voted replicas are suspected and queued for
    recovery.
``primary``
    No comparison: the first active replica answers (models a
    conventional non-diverse setup; used as a baseline in benchmarks).

Replica lifecycle is handled by the supervision subsystem
(:mod:`repro.middleware.supervisor`) when ``auto_recover`` is on: one
statement retry before suspicion, quarantine with exponential-backoff
recovery retries, a circuit breaker retiring crash-looping replicas,
checkpointed log replay, and graceful adjudication degradation when the
active set shrinks.  With ``auto_recover=False`` the middleware only
marks replicas FAILED/SUSPECTED and leaves recovery to explicit
:meth:`DiverseServer.recover` calls (the original fire-once behaviour).

Statement deadlines (the watchdog layer)
----------------------------------------

The paper counts *performance* failures — servers hanging or answering
far too slowly — as self-evident, but a replica that never returns has
no representation in a purely answer-driven middleware.  With
``SupervisorPolicy.statement_deadline`` set, every replica answer is
checked against a per-statement budget in virtual-cost units: answers
over budget are excluded from adjudication (the remaining responders
vote among themselves — straggler-tolerant adjudication), the event is
recorded in :attr:`MiddlewareStats.statement_timeouts` and the
:attr:`DiverseServer.timeout_audit` trail, and the straggler is
quarantined and recovered exactly like a crashed replica.  Reads get
one deadline retry (a transient stall is spared eviction); a write is
only re-run when the static analyzer (:mod:`repro.analysis`) proved it
re-execution-safe — otherwise its slow attempt already applied, and
the checkpointed replay path rebuilds the replica consistently
instead.

Static analysis (the semantic layer)
------------------------------------

With ``static_analysis=True`` (the default) every statement is analyzed
against a schema model maintained from the write history
(:class:`repro.analysis.schema.ScriptSchema`).  The resulting
:class:`~repro.analysis.verdicts.StatementVerdict` drives two
behaviours: SELECTs proven order-free vote on row *multisets* (two
correct products may return different row permutations without
disagreeing — no ORDER BY probe needed), and writes proven
re-execution-safe qualify for the single-shot statement retry that was
previously reserved for reads.

Recovery is log-based: the middleware keeps the history of committed
write statements, and a suspected/crashed replica is rebuilt by
restoring its latest checkpoint (if any) and replaying the write-log
tail onto it — the "recovery performed on the faulty server while
others continue" scenario of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from repro.analysis.divergence import (
    PROFILES,
    DivergenceKind,
    StatementDivergence,
)
from repro.analysis.schema import ScriptSchema
from repro.analysis.verdicts import DDL_KINDS, WRITE_KINDS, StatementVerdict
from repro.errors import (
    AdjudicationFailure,
    EngineCrash,
    FeatureNotSupported,
    MiddlewareError,
    NoReplicasAvailable,
    SqlError,
    StatementTimeout,
)
from repro.faults.audit import TimeoutAuditEntry
from repro.middleware.comparator import ReplicaAnswer, ResultComparator
from repro.middleware.pipeline import StatementPipeline
from repro.middleware.supervisor import (
    ReplicaHealth,
    ReplicaState,
    ReplicaSupervisor,
    SupervisorPolicy,
    VirtualClock,
)
from repro.servers.product import ServerProduct
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.analysis import StatementTraits
from repro.sqlengine.engine import EnginePrepared, Result
from repro.sqlengine.params import placeholder_positions, splice_params

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.durability.manager import DurabilityManager

#: Statement kinds that modify state — the canonical set lives with the
#: static analyzer (:data:`repro.analysis.verdicts.WRITE_KINDS`).
_WRITE_KINDS = WRITE_KINDS

#: Statement kinds that change the schema: these bump the pipeline
#: generation, invalidating translation and verdict cache entries.
#: The canonical set lives with the analyzer too.
_DDL_KINDS = DDL_KINDS


@dataclass
class ReplicaStats:
    statements: int = 0
    errors: int = 0
    crashes: int = 0
    outvoted: int = 0
    recoveries: int = 0
    timeouts: int = 0


@dataclass
class Replica:
    product: ServerProduct
    state: ReplicaState = ReplicaState.ACTIVE
    stats: ReplicaStats = field(default_factory=ReplicaStats)
    health: ReplicaHealth = field(default_factory=ReplicaHealth)

    @property
    def key(self) -> str:
        return self.product.key


@dataclass
class MiddlewareStats:
    """Aggregate dependability bookkeeping for one DiverseServer."""

    statements: int = 0
    reads: int = 0
    writes: int = 0
    unanimous: int = 0
    disagreements_detected: int = 0
    failures_masked: int = 0
    adjudication_failures: int = 0
    replica_crashes: int = 0
    recoveries: int = 0
    performance_anomalies: int = 0
    # -- supervision counters -------------------------------------------
    #: Quarantine incidents (replica evicted pending recovery).
    quarantines: int = 0
    #: Recovery retries scheduled with a non-zero backoff delay.
    backoff_waits: int = 0
    #: Replicas permanently retired by the circuit breaker.
    retirements: int = 0
    #: Checkpoint events (every active replica snapshotted).
    checkpoints: int = 0
    #: Recoveries served from a checkpoint + log tail.
    checkpoint_replays: int = 0
    #: Recoveries that had to replay the full write log.
    full_replays: int = 0
    #: Statements replayed across all recoveries.
    replayed_statements: int = 0
    #: Single-shot statement retries issued before suspecting a replica.
    statement_retries: int = 0
    #: Retries whose answer matched (the replica was spared eviction).
    retries_saved: int = 0
    #: Statements served under a weaker adjudication policy than
    #: configured (graceful degradation).
    degraded_statements: int = 0
    #: Degraded statements served with no cross-checking at all (one
    #: active replica under a comparison policy): full quorum loss.
    quorum_losses: int = 0
    # -- watchdog counters ----------------------------------------------
    #: Replica answers excluded for blowing the statement deadline —
    #: self-evident performance failures (hangs and stalls).
    statement_timeouts: int = 0
    #: Recovery attempts failed because a replayed statement blew the
    #: recovery deadline (a replica stalling *during* recovery).
    recovery_timeouts: int = 0
    # -- static-analysis counters ----------------------------------------
    #: SELECTs the analyzer proved order-free and therefore voted as
    #: row multisets (no ORDER BY probe, no false order divergence).
    multiset_comparisons: int = 0
    #: Single-shot retries issued on writes the analyzer proved
    #: re-execution-safe (the generalisation of "writes never retry").
    idempotent_write_retries: int = 0
    #: Disagreement rounds where every cross-group product pair is
    #: statically proven BENIGN_DIALECT — legitimate dialect semantics,
    #: not a fault; out-voted replicas are spared suspicion.
    benign_dialect_divergences: int = 0
    #: Disagreement rounds the analyzer could not prove benign (the
    #: genuinely suspicious ones; these drive quarantine as before).
    fault_indicating_divergences: int = 0
    # -- dual-plan oracle counters ----------------------------------------
    #: SELECTs re-executed through both the compiled plan and the
    #: tree-walker on one replica (``ServerConfig.dual_plan``).
    dual_plan_checks: int = 0
    #: Checks where the two execution strategies disagreed — an
    #: optimiser-level wrong answer that cross-replica voting cannot
    #: see when every replica shares the same planner.
    dual_plan_divergences: int = 0
    # -- prepared/batch counters -----------------------------------------
    #: ``executemany`` invocations (one adjudication round each).
    batches: int = 0
    #: Rows executed through ``executemany``.
    batched_statements: int = 0
    #: Batched rows settled by the raw-equality fast path (identical
    #: bytes from every replica — no comparator vote needed).
    batch_fast_votes: int = 0
    # -- online rebuild counters ------------------------------------------
    #: Online rebuilds started (RETIRED/FAILED -> REBUILDING).
    rebuilds_started: int = 0
    #: Rebuilds that passed the quorum admission gate (-> ACTIVE).
    rebuilds_completed: int = 0
    #: Rebuilds that crashed, stalled, or failed admission (-> RETIRED).
    rebuilds_failed: int = 0
    #: Write-log delta statements replayed by rebuilds.
    rebuild_replayed_statements: int = 0
    # -- durability counters ----------------------------------------------
    #: Records appended across all per-replica WALs.
    wal_records: int = 0
    #: Storage faults fired on the WAL write path, by failure mode.
    wal_torn_writes: int = 0
    wal_lost_flushes: int = 0
    wal_corruptions: int = 0
    #: Durable checkpoints written (per replica per cadence event).
    durable_checkpoints: int = 0
    #: Whole-deployment restart recoveries performed from the medium.
    durable_recoveries: int = 0

    @property
    def detection_events(self) -> int:
        """Everything the redundancy surfaced: disagreements, crashes,
        performance anomalies, and statement timeouts."""
        return (
            self.disagreements_detected
            + self.replica_crashes
            + self.performance_anomalies
            + self.statement_timeouts
        )

    # Every counter is a plain int dataclass field, so reset/merge/
    # as_dict enumerate ``dataclasses.fields``: a counter added later is
    # automatically covered (and the stats audit test enforces it).

    def reset(self) -> None:
        """Zero every counter in place (shared-clock bench reruns)."""
        for spec in dataclass_fields(self):
            setattr(self, spec.name, spec.default)

    def merge(self, other: "MiddlewareStats") -> "MiddlewareStats":
        """Field-wise sum with ``other`` (aggregating across runs)."""
        merged = MiddlewareStats()
        for spec in dataclass_fields(self):
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged

    def as_dict(self) -> dict[str, int]:
        """Every counter by name (reporting; no field left behind)."""
        return {
            spec.name: getattr(self, spec.name) for spec in dataclass_fields(self)
        }


@dataclass
class ServerConfig:
    """Construction-time configuration for :class:`DiverseServer` (and
    :func:`replicated_server`).  One object carries every knob, so
    configurations can be shared, compared, and passed around instead
    of sprawling keyword lists."""

    adjudication: str = "majority"
    normalize: bool = True
    read_split: bool = False
    auto_recover: bool = True
    supervisor: Optional[ReplicaSupervisor] = None
    policy: Optional[SupervisorPolicy] = None
    clock: Optional[VirtualClock] = None
    allow_duplicates: bool = False
    static_analysis: bool = True
    #: Multi-plan divergence oracle (differential query execution): every
    #: adjudicated SELECT is additionally run twice on one replica —
    #: through its compiled plan and through the tree-walker — and the
    #: two answers compared like replica votes.  Catches optimiser-level
    #: wrong results that diverse voting misses when every replica
    #: shares the planner.  Off by default (it doubles read work).
    dual_plan: bool = False
    #: Bound on entries per pipeline cache layer (parse/translate/verdict).
    pipeline_capacity: int = 1024
    #: Durability subsystem (:class:`repro.durability.DurabilityManager`):
    #: per-replica write-ahead logs, durable checkpoints, and restart
    #: recovery from the storage medium.  ``None`` keeps the original
    #: in-memory-only deployment.
    durability: Optional["DurabilityManager"] = None


@dataclass
class StatementCall:
    """One execution of one statement, as seen by the replica plumbing.

    ``sql`` is the template text (with ``?`` placeholders for prepared
    statements); ``bound_sql`` is the literal-substituted text recorded
    in the write log so recovery replay needs no parameter store.  For
    unprepared statements the two are identical.
    """

    sql: str
    bound_sql: str
    params: tuple = ()
    prepared: Optional["PreparedStatement"] = None


#: Upper bound on memoized PreparedStatement handles per server.
_PREPARED_CACHE_SIZE = 512


class DiverseServer:
    """A fault-tolerant SQL server built from diverse OTS products.

    Configure with a :class:`ServerConfig` (``config=``) or with the
    equivalent individual keywords; mixing both is an error.  Settings
    are keyword-only — ``replicas`` is the only positional argument.
    """

    def __init__(
        self,
        replicas: Sequence[ServerProduct],
        *,
        config: Optional[ServerConfig] = None,
        **kwargs: Any,
    ) -> None:
        if config is not None and kwargs:
            raise MiddlewareError(
                "pass either config= or individual settings, not both"
            )
        if config is None:
            try:
                config = ServerConfig(**kwargs)
            except TypeError as error:
                raise MiddlewareError(f"unknown server setting: {error}") from None
        adjudication = config.adjudication
        if len(replicas) < 2 and adjudication != "primary":
            raise MiddlewareError("a diverse server needs at least two replicas")
        if adjudication not in ("compare", "majority", "monitor", "primary"):
            raise MiddlewareError(f"unknown adjudication policy {adjudication!r}")
        if not config.allow_duplicates:
            seen = set()
            for product in replicas:
                if product.key in seen:
                    raise MiddlewareError(
                        f"duplicate product {product.key}: diversity requires "
                        "distinct products (use replicated_server for identical copies)"
                    )
                seen.add(product.key)
        self.config = config
        self.replicas = [Replica(product) for product in replicas]
        self.adjudication = adjudication
        self.comparator = ResultComparator(normalize=config.normalize)
        self.read_split = config.read_split
        self.auto_recover = config.auto_recover
        #: Static semantic analysis per statement: multiset voting for
        #: provably-unordered SELECTs and idempotence-gated write
        #: retries.  Off (ablation) reverts to ordered comparison and
        #: the blanket "writes never retry" rule.
        self.static_analysis = config.static_analysis
        self._schema = ScriptSchema()
        self.stats = MiddlewareStats()
        #: Memoized front-end stages (parse / per-dialect translation /
        #: analysis verdicts), invalidated on DDL via its generation.
        self.pipeline = StatementPipeline(capacity=config.pipeline_capacity)
        self.supervisor = config.supervisor or ReplicaSupervisor(
            policy=config.policy, clock=config.clock
        )
        self.supervisor.attach(self)
        #: Durability subsystem (per-replica WALs + durable checkpoints);
        #: ``None`` for the original in-memory-only deployment.
        self.durability = config.durability
        if self.durability is not None:
            self.durability.attach(self)
        self._write_log: list[str] = []
        #: The write statement currently in flight (not yet committed to
        #: the log); recoveries triggered mid-statement replay it too.
        self._pending_write: Optional[str] = None
        self._read_cursor = 0
        self._prepared: dict[str, PreparedStatement] = {}
        #: Called (no arguments) after each committed DDL statement has
        #: bumped the pipeline generation; the serving layer uses this
        #: to eagerly invalidate cross-session prepared handles.
        self.ddl_listeners: list[Callable[[], None]] = []
        #: (sql, group leaders) pairs recorded in ``monitor`` mode.
        self.disagreement_log: list[tuple[str, list[str]]] = []
        #: (sql, replica key) pairs where the dual-plan oracle found the
        #: compiled plan and the tree-walker disagreeing.
        self.dual_plan_log: list[tuple[str, str]] = []
        #: One entry per statement-deadline violation (service and
        #: recovery), alongside the fault audit.
        self.timeout_audit: list[TimeoutAuditEntry] = []

    @property
    def supervised(self) -> bool:
        """True when the supervision subsystem drives replica lifecycle."""
        return self.auto_recover

    @property
    def policy(self) -> SupervisorPolicy:
        return self.supervisor.policy

    @property
    def clock(self) -> VirtualClock:
        return self.supervisor.clock

    @property
    def statement_deadline(self) -> Optional[float]:
        """The per-statement deadline budget (virtual-cost units)."""
        return self.supervisor.policy.statement_deadline

    # -- replica management -----------------------------------------------

    def active_replicas(self) -> list[Replica]:
        return [replica for replica in self.replicas if replica.state is ReplicaState.ACTIVE]

    def replica(self, key: str) -> Replica:
        for replica in self.replicas:
            if replica.key == key:
                return replica
        raise KeyError(key)

    # -- execution -----------------------------------------------------------

    def execute(self, sql: str, params: Optional[Sequence[Any]] = None) -> Result:
        """Execute one statement through the redundant configuration.

        With ``params``, ``sql`` may contain ``?`` placeholders and is
        routed through the (memoized) prepared pipeline — the unified
        execution surface shared with :class:`~repro.servers.SqlServer`.
        """
        if params is not None:
            return self.prepare(sql).execute(tuple(params))
        statement, traits, param_count = self.pipeline.parsed(sql)
        if param_count:
            raise MiddlewareError(
                f"statement has {param_count} unbound parameter(s); "
                "use prepare() to execute it with values"
            )
        call = StatementCall(sql=sql, bound_sql=sql)
        return self._execute_bound(call, statement, traits)

    def explain(self, sql: str) -> str:
        """Render the logical plan one replica's planner would use for
        ``sql`` (memoized per statement text and schema generation)."""
        active = self.active_replicas()
        catalog = active[0].product.engine.catalog if active else None
        return self.pipeline.plan(sql, catalog)

    def def_use(self, sql: str):
        """Def/use cells of one statement against the current schema.

        Memoized per (text, schema generation) by the pipeline; works
        for prepared templates too (``?`` parameters parse and
        contribute no cells).  The serving layer uses this to maintain
        each transaction holder's write footprint and to certify
        commuting reads for mid-transaction admission."""
        statement, traits, _ = self.pipeline.parsed(sql)
        return self.pipeline.def_use(sql, statement, self._schema, traits)

    def abstraction(self, sql: str):
        """Ternary-logic predicate abstraction of one statement against
        the current schema: WHERE truth set, dead-predicate findings,
        and the TLP partition triple when one is certifiable.  Memoized
        per (text, schema generation) by the pipeline."""
        statement, _, _ = self.pipeline.parsed(sql)
        return self.pipeline.abstraction(sql, statement, self._schema)

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse, analyze, and translate ``sql`` once; execute it many
        times with bound parameters through the returned handle.
        Handles are memoized per statement text."""
        handle = self._prepared.get(sql)
        if handle is None:
            handle = PreparedStatement(self, sql)
            if len(self._prepared) >= _PREPARED_CACHE_SIZE:
                self._prepared.pop(next(iter(self._prepared)))
            self._prepared[sql] = handle
        return handle

    def _execute_bound(
        self,
        call: StatementCall,
        statement: ast.Statement,
        traits: StatementTraits,
        fast_unanimous: bool = False,
    ) -> Result:
        """The adjudicated execution core shared by the unprepared,
        prepared, and batched paths.  Charges exactly one supervisor
        tick — ``executemany`` calls this once per row, so deadlines
        and quarantine backoffs see batches as row sequences."""
        is_write = traits.kind in _WRITE_KINDS
        verdict: Optional[StatementVerdict] = None
        divergence: Optional[StatementDivergence] = None
        if self.static_analysis:
            verdict = self.pipeline.verdict(call.sql, statement, self._schema, traits)
            divergence = self.pipeline.divergence(
                call.sql, statement, self._schema, traits
            )
        self.stats.statements += 1
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        if self.supervised:
            self.supervisor.tick()

        active = self.active_replicas()
        if not active:
            states = ", ".join(f"{r.key}={r.state.value}" for r in self.replicas)
            raise NoReplicasAvailable(f"no active replicas ({states})")

        policy = self._effective_adjudication(len(active))
        self._pending_write = call.bound_sql if is_write else None
        try:
            if policy == "primary" or (
                self.read_split and not is_write and policy != "compare"
            ):
                result = self._execute_single(call, active, is_write, policy, verdict)
            else:
                result = self._execute_compared(
                    call, active, is_write, policy, verdict, fast_unanimous,
                    divergence=divergence,
                )
        finally:
            self._pending_write = None
        if is_write:
            self._write_log.append(call.bound_sql)
            if self.static_analysis:
                self._schema.observe(statement)
            if traits.kind in _DDL_KINDS:
                self.pipeline.bump_generation()
                for listener in self.ddl_listeners:
                    listener()
            if self.durability is not None:
                self.durability.log_write(call.bound_sql, traits)
            if self.supervised:
                self.supervisor.maybe_checkpoint()
            if self.durability is not None:
                self.durability.maybe_checkpoint()
        if (
            self.config.dual_plan
            and not is_write
            and isinstance(statement, ast.SelectStatement)
        ):
            self._dual_plan_check(call, verdict, result)
        if policy != self.adjudication:
            result.warnings.append(
                f"adjudication degraded from {self.adjudication!r} to {policy!r}"
                " (too few active replicas)"
            )
        return result

    # -- dual-plan oracle --------------------------------------------------

    def _dual_plan_check(
        self,
        call: StatementCall,
        verdict: Optional[StatementVerdict],
        result: Result,
    ) -> None:
        """Multi-plan divergence oracle: re-run the SELECT twice on one
        replica — once through its compiled plan, once through the
        tree-walker — and compare the two answers exactly as replica
        votes are compared (same normalisation, same order verdict).
        Disagreement means an optimiser/executor-level wrong answer on
        that replica, a fault class cross-replica voting cannot see
        when every replica shares the same planner."""
        active = self.active_replicas()
        if not active:
            return
        replica = active[0]
        engine = replica.product.engine
        answers: list[ReplicaAnswer] = []
        for label, use_planner in (("planned", True), ("walker", False)):
            engine.use_planner = use_planner
            try:
                if call.prepared is not None:
                    answer_result = call.prepared._execute_on_replica(
                        replica, call.params
                    )
                else:
                    translated = self.pipeline.translation(
                        call.sql, replica.product.descriptor
                    )
                    answer_result = replica.product.execute(translated)
                answers.append(
                    ReplicaAnswer(
                        replica=label,
                        status="ok",
                        columns=tuple(answer_result.columns),
                        rows=tuple(answer_result.rows),
                        rowcount=answer_result.rowcount,
                        virtual_cost=answer_result.virtual_cost,
                        result=answer_result,
                    )
                )
            except EngineCrash:
                replica.product.restart()
                answers.append(ReplicaAnswer(replica=label, status="crash"))
            except (SqlError, FeatureNotSupported) as error:
                answers.append(
                    ReplicaAnswer(replica=label, status="error", error=str(error))
                )
            finally:
                engine.use_planner = True
        if any(answer.status == "crash" for answer in answers):
            return  # a crashed run proves nothing about the planner
        self.stats.dual_plan_checks += 1
        ordered = not (verdict is not None and verdict.multiset_comparable)
        comparison = self.comparator.compare(answers, ordered=ordered)
        if not comparison.unanimous:
            self.stats.dual_plan_divergences += 1
            self.dual_plan_log.append((call.bound_sql, replica.key))
            result.warnings.append(
                f"dual-plan divergence on {replica.key}: compiled plan and "
                "tree-walker disagree"
            )

    def execute_script(self, sql: str) -> list[Result]:
        from repro.study.runner import split_statements

        return [self.execute(statement) for statement in split_statements(sql)]

    def _effective_adjudication(self, active_count: int) -> str:
        """Degrade the adjudication policy when too few replicas remain."""
        if not self.supervised:
            return self.adjudication
        effective = self.supervisor.effective_adjudication(
            self.adjudication, active_count, len(self.replicas)
        )
        if effective != self.adjudication:
            self.stats.degraded_statements += 1
            if active_count < 2 and self.adjudication in ("majority", "compare"):
                self.stats.quorum_losses += 1
        return effective

    # -- single-replica path (primary / read-split) ---------------------------------

    def _execute_single(
        self,
        call: StatementCall,
        active: list[Replica],
        is_write: bool,
        policy: str,
        verdict: Optional[StatementVerdict] = None,
    ) -> Result:
        if is_write and policy != "primary":
            return self._execute_compared(call, active, is_write, policy, verdict)
        if is_write or policy == "primary":
            order = active  # primary answers; no read rotation
        else:
            order = self._rotate(active)
        deadline = self.statement_deadline
        crashed: list[Replica] = []
        timed_out: list[Replica] = []
        #: Replicas that already saw this statement (asked directly, or
        #: quarantined with it pending — recovery replays it for them).
        handled: set[str] = set()
        for replica in order:
            answer = self._ask_with_crash_retry(replica, call)
            handled.add(replica.key)
            if answer.status == "crash":
                crashed.append(replica)
                self._handle_crash(replica)
                continue
            if (
                deadline is not None
                and answer.status == "ok"
                and answer.virtual_cost > deadline
            ):
                retry = self._retry_within_deadline(
                    replica, call, is_write, deadline, verdict
                )
                if retry is None:
                    timed_out.append(replica)
                    self._handle_timeout(
                        replica, call.bound_sql, answer.virtual_cost, deadline
                    )
                    continue
                answer = retry
            if answer.status == "error":
                raise SqlError(answer.error)
            if is_write and policy == "primary":
                # Propagate the write to the other replicas unchecked.
                for other in active:
                    if other.key in handled:
                        continue
                    other_answer = self._ask(other, call)
                    if other_answer.status == "crash":
                        self._handle_crash(other)
                    elif (
                        deadline is not None
                        and other_answer.status == "ok"
                        and other_answer.virtual_cost > deadline
                    ):
                        self._handle_timeout(
                            other, call.bound_sql, other_answer.virtual_cost, deadline
                        )
            return answer.result
        if timed_out:
            keys = ", ".join(replica.key for replica in timed_out)
            raise StatementTimeout(
                f"no replica answered {call.bound_sql!r} within the deadline "
                f"(timed out: {keys})",
                deadline=deadline or 0.0,
            )
        keys = ", ".join(replica.key for replica in crashed)
        raise NoReplicasAvailable(f"all replicas crashed on this statement ({keys})")

    def _rotate(self, active: list[Replica]) -> list[Replica]:
        self._read_cursor = (self._read_cursor + 1) % len(active)
        return active[self._read_cursor :] + active[: self._read_cursor]

    # -- compared path ------------------------------------------------------------

    def _execute_compared(
        self,
        call: StatementCall,
        active: list[Replica],
        is_write: bool,
        policy: str,
        verdict: Optional[StatementVerdict] = None,
        fast_unanimous: bool = False,
        divergence: Optional[StatementDivergence] = None,
    ) -> Result:
        answers: list[ReplicaAnswer] = []
        crashed: list[Replica] = []
        for replica in active:
            answer = self._ask_with_crash_retry(replica, call)
            if answer.status == "crash":
                crashed.append(replica)
            else:
                answers.append(answer)
        for replica in crashed:
            self._handle_crash(replica)
        answers, timed_out = self._enforce_deadline(call, answers, is_write, verdict)
        if not answers:
            if timed_out:
                keys = ", ".join(answer.replica for answer in timed_out)
                raise StatementTimeout(
                    f"no replica answered {call.bound_sql!r} within the deadline "
                    f"(timed out: {keys})",
                    deadline=self.statement_deadline or 0.0,
                )
            keys = ", ".join(replica.key for replica in crashed)
            raise NoReplicasAvailable(f"all replicas crashed on this statement ({keys})")

        self._check_performance(answers)
        # The analyzer's order verdict picks the vote granularity: a
        # SELECT proven UNORDERED votes on the row multiset, so correct
        # replicas returning different physical row orders never read as
        # disagreement (and no ORDER BY probe is injected).  PARTIAL
        # stays ordered — a violated ORDER BY must still be detected.
        ordered = not (verdict is not None and verdict.multiset_comparable)
        if not ordered:
            self.stats.multiset_comparisons += 1
        if fast_unanimous and self._raw_unanimous(answers):
            # Batch fast path: every replica returned identical bytes,
            # which implies an identical vote under any normalization
            # and ordering — skip the comparator, same outcome.
            self.stats.unanimous += 1
            self.stats.batch_fast_votes += 1
            return answers[0].unwrap()
        comparison = self.comparator.compare(answers, ordered=ordered)
        if comparison.unanimous:
            self.stats.unanimous += 1
            return comparison.largest[0].unwrap()

        self.stats.disagreements_detected += 1
        # Triage: can the products legitimately disagree here?  Only
        # when every cross-group product pair is statically proven
        # BENIGN_DIALECT is the round benign; anything weaker (UNKNOWN,
        # AGREE_PROVEN, or an unanalyzed statement) stays suspicious.
        benign = self._benign_divergence(divergence, comparison)
        if benign:
            self.stats.benign_dialect_divergences += 1
        else:
            self.stats.fault_indicating_divergences += 1
        if policy == "monitor":
            # Observation mode (Section 7: "the user could decide on an
            # ongoing basis which architecture is giving the best
            # trade-off"): log the disagreement, answer from the largest
            # agreeing group, never interrupt service.
            self.disagreement_log.append(
                (call.bound_sql, [g[0].replica for g in comparison.groups])
            )
            result = comparison.largest[0].unwrap()
            result.warnings.append(
                "replicas disagreed; answered from the largest agreeing group"
            )
            return result
        if policy == "compare":
            self.stats.adjudication_failures += 1
            raise AdjudicationFailure(
                f"replicas disagree on {call.bound_sql!r}: "
                + "; ".join(
                    f"[{', '.join(a.replica for a in group)}]" for group in comparison.groups
                ),
                disagreement=comparison,
            )
        winners = comparison.majority(len(answers))
        if winners is None:
            self.stats.adjudication_failures += 1
            raise AdjudicationFailure(
                f"no majority among replicas for {call.bound_sql!r}",
                disagreement=comparison,
            )
        self.stats.failures_masked += 1
        winner_key = winners[0].vote_key(
            normalize=self.comparator.normalize, ordered=ordered
        )
        outvoted = comparison.minority_replicas()
        for key in outvoted:
            replica = self.replica(key)
            if benign:
                # A proven dialect divergence is the replica behaving
                # correctly for its product: mask the difference, but
                # spend no retry and raise no suspicion.
                continue
            if self._retry_matches(
                replica, call, is_write, winner_key, verdict, ordered
            ):
                continue
            self._suspect(replica)
        result = winners[0].unwrap()
        result.warnings.append(
            f"masked divergent answer(s) from: {', '.join(sorted(outvoted))}"
        )
        return result

    def _benign_divergence(
        self,
        divergence: Optional[StatementDivergence],
        comparison,
    ) -> bool:
        """True when the statement's divergence analysis proves every
        cross-group product pair may legitimately disagree."""
        if divergence is None:
            return False
        normalized = self.comparator.normalize
        groups = comparison.groups
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1 :]:
                for a in group_a:
                    for b in group_b:
                        if a.replica not in PROFILES or b.replica not in PROFILES:
                            return False
                        pair_verdict = divergence.verdict(
                            a.replica, b.replica, normalized=normalized
                        )
                        if pair_verdict.kind is not DivergenceKind.BENIGN_DIALECT:
                            return False
        return True

    @staticmethod
    def _raw_unanimous(answers: list[ReplicaAnswer]) -> bool:
        """True when every answer is ok and byte-identical to the first."""
        first = answers[0]
        if first.status != "ok":
            return False
        return all(
            answer.status == "ok"
            and answer.columns == first.columns
            and answer.rows == first.rows
            and answer.rowcount == first.rowcount
            for answer in answers[1:]
        )

    #: A replica answering this many times slower than the fastest peer
    #: is flagged as a performance anomaly (self-evident failure class).
    PERFORMANCE_RATIO = 100.0
    #: Floor for the fastest peer's cost in the ratio check.  Guards
    #: against division-free blow-ups on zero cost without clamping to
    #: 1.0, which used to mask genuine stragglers whenever every
    #: virtual cost was sub-unit.
    PERFORMANCE_EPSILON = 1e-9

    def _check_performance(self, answers: list[ReplicaAnswer]) -> None:
        costs = [answer.virtual_cost for answer in answers if answer.status == "ok"]
        if len(costs) >= 2 and max(costs) > self.PERFORMANCE_RATIO * max(
            min(costs), self.PERFORMANCE_EPSILON
        ):
            self.stats.performance_anomalies += 1

    # -- statement watchdog ----------------------------------------------------

    def _enforce_deadline(
        self,
        call: StatementCall,
        answers: list[ReplicaAnswer],
        is_write: bool,
        verdict: Optional[StatementVerdict] = None,
    ) -> tuple[list[ReplicaAnswer], list[ReplicaAnswer]]:
        """Split answers into within-deadline responders and timed-out
        stragglers.  Stragglers are audited and quarantined; responders
        adjudicate among themselves (straggler tolerance).  With no
        deadline configured every answer is a responder."""
        deadline = self.statement_deadline
        if deadline is None:
            return answers, []
        responders: list[ReplicaAnswer] = []
        timed_out: list[ReplicaAnswer] = []
        for answer in answers:
            if answer.status != "ok" or answer.virtual_cost <= deadline:
                responders.append(answer)
                continue
            replica = self.replica(answer.replica)
            retry = self._retry_within_deadline(
                replica, call, is_write, deadline, verdict
            )
            if retry is not None:
                responders.append(retry)
                continue
            timed_out.append(answer)
            self._handle_timeout(replica, call.bound_sql, answer.virtual_cost, deadline)
        return responders, timed_out

    def _retry_within_deadline(
        self,
        replica: Replica,
        call: StatementCall,
        is_write: bool,
        deadline: float,
        verdict: Optional[StatementVerdict] = None,
    ) -> Optional[ReplicaAnswer]:
        """Re-run a statement once on a straggler; a transient stall
        clears on retry and the replica is spared quarantine.  Writes
        are only re-run when the analyzer proved re-execution safe —
        otherwise the slow attempt already applied them and a rerun
        would double-apply."""
        if not self._retry_safe(is_write, verdict):
            return None
        replica.state = ReplicaState.SUSPECTED
        self.stats.statement_retries += 1
        if is_write:
            self.stats.idempotent_write_retries += 1
        retry = self._ask(replica, call)
        if retry.status == "ok" and retry.virtual_cost <= deadline:
            replica.state = ReplicaState.ACTIVE
            self.stats.retries_saved += 1
            return retry
        return None

    def _handle_timeout(
        self, replica: Replica, sql: str, cost: float, deadline: float
    ) -> None:
        """Record a deadline violation (a self-evident performance
        failure) and hand the straggler to the supervisor like a crash:
        repeated timeouts drive ACTIVE → SUSPECTED → QUARANTINED."""
        self.stats.statement_timeouts += 1
        replica.stats.timeouts += 1
        self.timeout_audit.append(
            TimeoutAuditEntry(
                replica=replica.key,
                sql=sql,
                virtual_cost=cost,
                deadline=deadline,
                at=self.clock.now,
            )
        )
        if self.supervised:
            self.supervisor.quarantine(replica)
        else:
            replica.state = ReplicaState.FAILED

    # -- plumbing --------------------------------------------------------------------

    def _ask(self, replica: Replica, call: StatementCall) -> ReplicaAnswer:
        replica.stats.statements += 1
        try:
            if call.prepared is not None:
                result = call.prepared._execute_on_replica(replica, call.params)
            else:
                translated = self.pipeline.translation(
                    call.sql, replica.product.descriptor
                )
                result = replica.product.execute(translated)
        except EngineCrash:
            replica.stats.crashes += 1
            return ReplicaAnswer(replica=replica.key, status="crash")
        except SqlError as error:
            replica.stats.errors += 1
            return ReplicaAnswer(replica=replica.key, status="error", error=str(error))
        return ReplicaAnswer(
            replica=replica.key,
            status="ok",
            columns=tuple(result.columns),
            rows=tuple(result.rows),
            rowcount=result.rowcount,
            virtual_cost=result.virtual_cost,
            result=result,
        )

    def _ask_with_crash_retry(self, replica: Replica, call: StatementCall) -> ReplicaAnswer:
        """Ask once; on a crash, restart and retry once before giving up.

        Crash effects fire before the engine touches the statement, so a
        retry never double-applies a write.  A transient (Heisenbug)
        crash passes on retry and the replica is spared quarantine.
        """
        answer = self._ask(replica, call)
        if answer.status != "crash" or not self._statement_retry_enabled():
            return answer
        replica.state = ReplicaState.SUSPECTED
        self.stats.statement_retries += 1
        replica.product.restart()
        retry = self._ask(replica, call)
        if retry.status != "crash":
            replica.state = ReplicaState.ACTIVE
            self.stats.retries_saved += 1
        return retry

    def _retry_matches(
        self,
        replica: Replica,
        call: StatementCall,
        is_write: bool,
        winner_key: tuple,
        verdict: Optional[StatementVerdict] = None,
        ordered: bool = True,
    ) -> bool:
        """Re-run an out-voted statement once; True when the retry agrees
        with the winning answer (a transient fault — keep the replica).
        Only reads and analyzer-proven re-execution-safe writes retry."""
        if not self._retry_safe(is_write, verdict):
            return False
        replica.state = ReplicaState.SUSPECTED
        self.stats.statement_retries += 1
        if is_write:
            self.stats.idempotent_write_retries += 1
        retry = self._ask(replica, call)
        if (
            retry.status != "crash"
            and retry.vote_key(normalize=self.comparator.normalize, ordered=ordered)
            == winner_key
        ):
            replica.state = ReplicaState.ACTIVE
            self.stats.retries_saved += 1
            return True
        return False

    def _statement_retry_enabled(self) -> bool:
        return self.supervised and self.supervisor.policy.statement_retry

    def _retry_safe(
        self, is_write: bool, verdict: Optional[StatementVerdict]
    ) -> bool:
        """Whether a single-shot re-execution of this statement on one
        replica is allowed.  Reads always are; writes only when the
        static analyzer proved re-execution changes neither the state
        nor the answer (and the policy knob permits it) — the
        generalisation of the blanket "writes never retry" rule."""
        if not self._statement_retry_enabled():
            return False
        if not is_write:
            return True
        return (
            self.policy.idempotent_write_retry
            and verdict is not None
            and verdict.access.reexecution_safe
        )

    def _handle_crash(self, replica: Replica) -> None:
        self.stats.replica_crashes += 1
        if self.supervised:
            self.supervisor.quarantine(replica)
        else:
            replica.state = ReplicaState.FAILED

    def _suspect(self, replica: Replica) -> None:
        replica.stats.outvoted += 1
        replica.state = ReplicaState.SUSPECTED
        if self.supervised:
            self.supervisor.quarantine(replica)

    # -- recovery ---------------------------------------------------------------------

    def recover(self, key: str, *, force: bool = False) -> None:
        """Rebuild a failed/suspected replica by checkpoint + log replay.

        The replica's latest checkpoint (if any) is restored and the
        write-log tail replayed in order (translated to its dialect);
        without a checkpoint the replica is reset to a fresh install and
        the full history replayed.  On success it rejoins the active
        set.  Retired replicas are only resurrected with ``force=True``
        (an operator decision — the circuit breaker retired them for
        crash-looping).
        """
        replica = self.replica(key)
        if replica.state is ReplicaState.RETIRED:
            if not force:
                raise MiddlewareError(
                    f"replica {key} was retired by the circuit breaker; "
                    "pass force=True to resurrect it"
                )
            replica.health.failure_times.clear()
            replica.health.attempts = 0
        self.supervisor.attempt_recovery(replica, manual=True)

    def rebuild(self, key: str) -> bool:
        """Start an online rebuild of a RETIRED/FAILED replica.

        The replica is re-seeded from a healthy-majority snapshot and
        catches up with the live write delta incrementally — one step
        per supervisor tick, so traffic keeps flowing while it
        rebuilds — and re-admitted only once its full state passes the
        ``verify_consistency`` criterion against the active quorum.
        Returns False when the replica is not rebuildable right now
        (wrong state, no healthy donor, or a transaction is open).

        Progress is driven by live traffic; without traffic, call
        :meth:`drive_rebuilds` to pump the clock.
        """
        replica = self.replica(key)
        return self.supervisor.start_rebuild(replica)

    def drive_rebuilds(self, max_ticks: int = 100_000) -> bool:
        """Advance virtual time until no rebuild is in flight (idle
        deployments; live traffic drives rebuilds via ordinary ticks).
        Returns True when every rebuild settled within the budget."""
        for _ in range(max_ticks):
            if not any(
                r.state is ReplicaState.REBUILDING for r in self.replicas
            ):
                return True
            self.supervisor.tick()
        return not any(r.state is ReplicaState.REBUILDING for r in self.replicas)

    def _replica_recovered(self, replica: Replica) -> None:
        """Supervisor callback: ``replica`` just rejoined the active
        set (log replay or rebuild).  Re-baselines its durable state."""
        if self.durability is not None:
            self.durability.on_replica_recovered(replica)

    def restore_write_log(self, statements: Iterable[str]) -> None:
        """Adopt a recovered write history (durable restart path).

        Rebuilds the derived middleware state — schema model for the
        static analyzer and the pipeline's schema generation — exactly
        as if the statements had been executed through this server.
        """
        self._write_log = list(statements)
        self._schema = ScriptSchema()
        for sql in self._write_log:
            statement, traits, _ = self.pipeline.parsed(sql)
            if self.static_analysis:
                self._schema.observe(statement)
            if traits.kind in _DDL_KINDS:
                self.pipeline.bump_generation()

    # -- state consistency -------------------------------------------------------------------

    def verify_consistency(self) -> dict[str, list[str]]:
        """Cross-check the full database state of all active replicas.

        Every base table of every active replica is dumped (ordered by
        its normalised row content) and compared across replicas.  The
        table list is the *union* across active replicas, so a table
        present on some replica but missing from the reference is still
        flagged.  Returns a mapping ``table -> [replicas disagreeing
        with the first active replica]`` — empty when all replicas hold
        the same state.  Used after recovery and at audit points; the
        paper's middleware sketch calls this the consistency-enforcing
        check.
        """
        from repro.middleware.normalizer import normalize_row

        active = self.active_replicas()
        if len(active) < 2:
            return {}
        reference = active[0]
        table_names = sorted(
            {
                table.name.lower()
                for replica in active
                for table in replica.product.engine.catalog.tables()
            }
        )

        def dump(replica: Replica, name: str):
            data = replica.product.engine.storage.get_optional(name)
            if data is None:
                return None
            return sorted(normalize_row(row) for row in data.snapshot())

        disagreements: dict[str, list[str]] = {}
        for name in table_names:
            baseline = dump(reference, name)
            for replica in active[1:]:
                if dump(replica, name) != baseline:
                    disagreements.setdefault(name, []).append(replica.key)
        return disagreements

    # -- introspection ---------------------------------------------------------------------

    @property
    def write_log(self) -> list[str]:
        return list(self._write_log)

    def availability(self) -> float:
        """Fraction of replicas currently active."""
        return len(self.active_replicas()) / len(self.replicas)


class PreparedStatement:
    """A statement prepared once against every replica of a
    :class:`DiverseServer`: parsed, analyzed, and dialect-translated up
    front, then executed many times with bound parameters.

    Per-replica engine handles are cached keyed on the pipeline's
    schema generation, so DDL transparently re-prepares.  Adjudication,
    supervision, deadlines, and the write log behave exactly as for
    :meth:`DiverseServer.execute` of the equivalent literal statement —
    the write log records the literal-substituted text, so recovery
    replay is parameter-free.
    """

    def __init__(self, server: DiverseServer, sql: str) -> None:
        self._server = server
        self.sql = sql
        self.statement, self.traits, self.param_count = server.pipeline.parsed(sql)
        self._positions = placeholder_positions(sql)
        #: replica key -> (pipeline generation, engine-prepared handle)
        self._handles: dict[str, tuple[int, EnginePrepared]] = {}

    def execute(self, params: Sequence[Any] = ()) -> Result:
        """One adjudicated execution with positional parameter values."""
        return self._execute(tuple(params), fast_unanimous=False)

    def executemany(self, rows: Iterable[Sequence[Any]]) -> list[Result]:
        """Execute once per parameter tuple — one adjudication round
        for the batch.  Each row charges one supervisor tick (deadline
        and quarantine semantics are per-row); a full comparator vote
        runs only on rows where the replicas diverge, the rest settle
        on raw answer equality."""
        self._server.stats.batches += 1
        results: list[Result] = []
        for row in rows:
            self._server.stats.batched_statements += 1
            results.append(self._execute(tuple(row), fast_unanimous=True))
        return results

    def _execute(self, params: tuple, fast_unanimous: bool) -> Result:
        if len(params) != self.param_count:
            raise MiddlewareError(
                f"statement takes {self.param_count} parameter(s), "
                f"{len(params)} given"
            )
        bound_sql = (
            splice_params(self.sql, self._positions, params) if params else self.sql
        )
        call = StatementCall(
            sql=self.sql, bound_sql=bound_sql, params=params, prepared=self
        )
        return self._server._execute_bound(
            call, self.statement, self.traits, fast_unanimous=fast_unanimous
        )

    def _execute_on_replica(self, replica: Replica, params: tuple) -> Result:
        """Run on one replica through its cached engine handle,
        (re)preparing when the schema generation moved."""
        generation = self._server.pipeline.generation
        entry = self._handles.get(replica.key)
        if entry is None or entry[0] != generation:
            translated = self._server.pipeline.translation(
                self.sql, replica.product.descriptor
            )
            entry = (generation, replica.product.prepare(translated))
            self._handles[replica.key] = entry
        return entry[1].execute(params)


def replicated_server(
    factory,
    count: int = 2,
    *,
    config: Optional[ServerConfig] = None,
    adjudication: Optional[str] = None,
    **kwargs,
) -> DiverseServer:
    """A *non-diverse* replicated server: ``count`` identical copies of
    one product (the conventional configuration the paper argues
    against).  Identical copies share identical faults, so coincident
    wrong answers win the vote — the comparison baseline in benchmarks.

    Accepts a :class:`ServerConfig` (``allow_duplicates`` is forced on)
    or the equivalent individual keywords.
    """
    replicas = [factory() for _ in range(count)]
    if config is not None:
        if kwargs or adjudication is not None:
            raise MiddlewareError(
                "pass either config= or individual settings, not both"
            )
        config = ServerConfig(**{**config.__dict__, "allow_duplicates": True})
        return DiverseServer(replicas, config=config)
    if adjudication is not None:
        kwargs["adjudication"] = adjudication
    return DiverseServer(replicas, allow_duplicates=True, **kwargs)
