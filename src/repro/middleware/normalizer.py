"""Result normalisation for cross-server comparison.

The paper (Section 4.3) requires the comparison algorithm to "allow for
possible differences in the representation of correct results, e.g.
different numbers of digits in the representation of floating point
numbers, padding of characters in character strings etc.".  This module
canonicalises values so that representation differences do not count as
disagreement, while real value differences (including the one-ulp skews
of the arithmetic bugs) do.
"""

from __future__ import annotations

import datetime
from decimal import Decimal
from typing import Any, Iterable

#: Floats are compared after rounding to this many significant decimal
#: digits: products render floating point with different precision, so
#: the comparison must not be bit-exact — but it must stay fine enough
#: to expose genuine arithmetic bugs (the corpus' smallest injected
#: skew is 1e-7 on O(1) values; 12 significant digits sees it).
FLOAT_SIGNIFICANT_DIGITS = 12


def normalize_value(value: Any) -> Any:
    """Canonical form of one result value."""
    if value is None:
        return None
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, Decimal)):
        dec = Decimal(value)
        return ("num", _canonical_decimal(dec))
    if isinstance(value, float):
        dec = Decimal(f"{value:.{FLOAT_SIGNIFICANT_DIGITS}e}")
        return ("num", _canonical_decimal(dec))
    if isinstance(value, str):
        # CHAR padding is representation, not content.
        return ("str", value.rstrip())
    if isinstance(value, datetime.datetime):
        return ("ts", value.isoformat(sep=" "))
    if isinstance(value, datetime.date):
        # Intentional dialect tolerance: a DATE folds to the midnight
        # timestamp, so a product whose dialect only has a combined
        # date-time type (MS renames TIMESTAMP to DATETIME; InterBase 6
        # DATE carried a time part) agrees with a product returning a
        # plain date for the same value.  A true time-of-day difference
        # still disagrees — only exact midnight collapses.
        return ("ts", value.isoformat() + " 00:00:00")
    return ("other", repr(value))


def _canonical_decimal(value: Decimal) -> str:
    normalized = value.normalize()
    # Decimal('10').normalize() == Decimal('1E+1'); render plainly.
    return format(normalized, "f")


def normalize_row(row: Iterable[Any]) -> tuple:
    return tuple(normalize_value(value) for value in row)


def normalize_result(columns: Iterable[str], rows: Iterable[Iterable[Any]]) -> tuple:
    """Canonical form of a whole result set.

    Column names are compared case-insensitively (products differ in
    name case); row *order* is preserved — ordered queries must agree
    on order, and the middleware issues deterministic ORDER BY probes.
    """
    return (
        tuple(name.lower() for name in columns),
        tuple(normalize_row(row) for row in rows),
    )


def normalize_signature(signature: tuple) -> tuple:
    """Canonicalise a ScriptOutcome signature (status, columns, rows,
    rowcount) per statement, for cross-server identicality checks."""
    normalized = []
    for status, columns, rows, rowcount in signature:
        if status != "ok":
            normalized.append((status,))
        else:
            cols, nrows = normalize_result(columns, rows)
            normalized.append((status, cols, nrows, rowcount))
    return tuple(normalized)
