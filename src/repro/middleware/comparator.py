"""Result comparison and vote grouping across diverse replicas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SqlError
from repro.middleware.normalizer import normalize_result


@dataclass
class ReplicaAnswer:
    """One replica's answer to one statement."""

    replica: str
    status: str  # 'ok' | 'error' | 'crash'
    columns: tuple[str, ...] = ()
    rows: tuple[tuple, ...] = ()
    rowcount: int = 0
    virtual_cost: float = 0.0
    error: str = ""
    result: Any = None  # the raw engine Result for the winning answer

    def unwrap(self):
        """The engine :class:`~repro.sqlengine.engine.Result` behind a
        winning answer.  An ``error`` answer re-raises: when it wins
        the vote, erroring *is* the agreed-correct behaviour (e.g. a
        genuine constraint violation)."""
        if self.status == "error":
            raise SqlError(self.error)
        return self.result

    def vote_key(self, *, normalize: bool = True, ordered: bool = True) -> tuple:
        """Hashable ballot: answers with equal keys agree.

        ``ordered=False`` votes on the row *multiset*: used when the
        static analyzer proves the statement carries no ORDER BY
        guarantee, so two correct products may return different row
        permutations without disagreeing (no ORDER BY probe needed).
        """
        if self.status == "crash":
            return ("crash",)
        if self.status == "error":
            # Error *presence* is the vote; products word errors
            # differently, which must not read as disagreement.
            return ("error",)
        if normalize:
            columns, rows = normalize_result(self.columns, self.rows)
            if not ordered:
                # Normalised values mix None with tagged tuples, which
                # do not order against each other — sort by repr, which
                # is total and canonical after normalisation.
                rows = tuple(sorted(rows, key=repr))
            # Affected-rowcount is part of the answer: a replica
            # reporting a wrong rowcount (the study's "other" failure
            # class) must disagree with its peers.
            return ("ok", columns, rows, self.rowcount)
        # Bit-exact comparison: Python would otherwise equate
        # Decimal('10.00') with 10, hiding representation diffs.
        columns = tuple(self.columns)
        rows = tuple(
            tuple((type(value).__name__, repr(value)) for value in row)
            for row in self.rows
        )
        if not ordered:
            rows = tuple(sorted(rows))
        return ("ok", columns, rows, self.rowcount)


@dataclass
class ComparisonResult:
    """Outcome of comparing all replicas' answers to one statement."""

    groups: list[list[ReplicaAnswer]] = field(default_factory=list)

    @property
    def unanimous(self) -> bool:
        return len(self.groups) == 1

    @property
    def largest(self) -> list[ReplicaAnswer]:
        return self.groups[0]

    def majority(self, total: int) -> Optional[list[ReplicaAnswer]]:
        """The agreeing group holding a strict majority of ``total``
        replicas, if any."""
        if self.groups and len(self.groups[0]) * 2 > total:
            return self.groups[0]
        return None

    @property
    def disagreement(self) -> bool:
        return len(self.groups) > 1

    def minority_replicas(self) -> list[str]:
        """Replicas outside the largest agreeing group."""
        return [
            answer.replica for group in self.groups[1:] for answer in group
        ]


class ResultComparator:
    """Groups replica answers into agreement classes.

    ``normalize`` applies the representation canonicalisation of
    Section 4.3; turning it off (ablation A1) makes representation
    differences look like failures.
    """

    def __init__(self, *, normalize: bool = True) -> None:
        self.normalize = normalize

    def compare(
        self, answers: list[ReplicaAnswer], *, ordered: bool = True
    ) -> ComparisonResult:
        buckets: dict[tuple, list[ReplicaAnswer]] = {}
        order: list[tuple] = []
        for answer in answers:
            key = answer.vote_key(normalize=self.normalize, ordered=ordered)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(answer)
        groups = sorted(
            (buckets[key] for key in order),
            key=lambda group: (-len(group), group[0].replica),
        )
        return ComparisonResult(groups=list(groups))
