"""Diverse-redundancy SQL middleware (the system the paper motivates).

See :class:`repro.middleware.server.DiverseServer` for the main entry
point: a fault-tolerant SQL server assembled from two or more diverse
off-the-shelf server products, comparing their answers on every
statement.
"""

from repro.middleware.comparator import ComparisonResult, ResultComparator
from repro.middleware.normalizer import normalize_result, normalize_signature, normalize_value
from repro.middleware.server import DiverseServer, replicated_server
from repro.middleware.supervisor import (
    ReplicaState,
    ReplicaSupervisor,
    SupervisorPolicy,
    VirtualClock,
)

__all__ = [
    "ComparisonResult",
    "DiverseServer",
    "ReplicaState",
    "ReplicaSupervisor",
    "ResultComparator",
    "SupervisorPolicy",
    "VirtualClock",
    "normalize_result",
    "normalize_signature",
    "normalize_value",
    "replicated_server",
]
