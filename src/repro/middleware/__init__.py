"""Diverse-redundancy SQL middleware (the system the paper motivates).

See :class:`repro.middleware.server.DiverseServer` for the main entry
point: a fault-tolerant SQL server assembled from two or more diverse
off-the-shelf server products, comparing their answers on every
statement.  ``server.prepare(sql)`` returns a
:class:`~repro.middleware.server.PreparedStatement` that amortizes the
parse/translate/analyze front-end across repeated executions.
"""

from repro.middleware.comparator import ComparisonResult, ResultComparator
from repro.middleware.normalizer import normalize_result, normalize_signature, normalize_value
from repro.middleware.pipeline import PipelineStats, StatementPipeline
from repro.middleware.server import (
    DiverseServer,
    MiddlewareStats,
    PreparedStatement,
    ServerConfig,
    replicated_server,
)
from repro.middleware.supervisor import (
    RebuildProgress,
    ReplicaState,
    ReplicaSupervisor,
    SupervisorPolicy,
    VirtualClock,
)
from repro.sqlengine.engine import Result

__all__ = [
    "ComparisonResult",
    "DiverseServer",
    "MiddlewareStats",
    "PipelineStats",
    "PreparedStatement",
    "RebuildProgress",
    "ReplicaState",
    "ReplicaSupervisor",
    "Result",
    "ResultComparator",
    "ServerConfig",
    "StatementPipeline",
    "SupervisorPolicy",
    "VirtualClock",
    "normalize_result",
    "normalize_signature",
    "normalize_value",
    "replicated_server",
]
