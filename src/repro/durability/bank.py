"""The storage-fault bug bank: one minimized repro per storage class.

The paper's bug bank holds one known-fault script per reported bug;
this module extends the idea to the durability layer.  Each
:class:`StorageBugReport` pairs a repro script with exactly one seeded
storage-phase fault (:class:`~repro.faults.effects.TornWriteEffect`,
:class:`~repro.faults.effects.LostFlushEffect`,
:class:`~repro.faults.effects.ChecksumCorruptionEffect`) and the
ground-truth classification the WAL scanner must produce after a power
cut: which counter bucket fires, where the prefix scan stops, and how
many committed writes the crash may legitimately lose.

Scripts are banked *minimized*: the static dataflow slicer
(:func:`repro.analysis.dataflow.minimize_script`) shrinks each script
to the backward slice of its fault trigger, and the lint gate dedupes
banked entries by that trigger slice — two repros that minimize to the
same statement sequence exercise the same fault path and one of them
is redundant.  :func:`classify_repro` is the dynamic half: run the
minimized script through a :class:`~repro.durability.session.DurableSession`,
power-cut, recover, and compare the observed behaviour against the
banked ground truth (the lint's ``storage-groundtruth-drift`` check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dataflow import SliceResult, minimize_script
from repro.durability.recovery import engine_state_signature
from repro.durability.session import DurableSession
from repro.errors import SqlError
from repro.faults.effects import (
    ChecksumCorruptionEffect,
    LostFlushEffect,
    TornWriteEffect,
)
from repro.faults.spec import Detectability, FailureKind, FaultSpec
from repro.faults.triggers import SqlPatternTrigger


@dataclass(frozen=True)
class StorageBugReport:
    """One banked storage-fault repro with its ground truth."""

    bug_id: str
    server: str
    description: str
    #: Full (unminimized) repro script, reported-dialect SQL.
    script: str
    fault: FaultSpec
    #: Expected storage counter bucket ("torn" / "lost" / "corrupt").
    expected_bucket: str
    #: Acceptable prefix-scan stop reasons after the power cut.  A torn
    #: tail reads as ``torn-payload``; the same tear mid-log reads as
    #: ``checksum-mismatch`` (later appends fill the declared length),
    #: so ground truth is a set, not a single label.
    expected_stops: frozenset[str]
    #: Committed write statements the crash is allowed to lose — the
    #: damaged record plus everything the scanner must discard after it.
    expected_lost: int
    #: Statement indices anchored in the slice beyond the trigger
    #: matches — e.g. the witness append *after* a lost flush, which is
    #: downstream of the damage and invisible to the backward slice.
    anchors: tuple[int, ...] = ()

    def minimized(self) -> SliceResult:
        """The banked form: the script's static trigger slice."""
        return minimize_script(self.script, targets=self.anchors, faults=[self.fault])

    def matches(self, observed: "StorageClassification") -> bool:
        """Does a dynamic classification agree with the ground truth?"""
        return (
            observed.bucket == self.expected_bucket
            and observed.stopped in self.expected_stops
            and observed.lost_statements == self.expected_lost
            and observed.prefix_consistent
        )


@dataclass(frozen=True)
class StorageClassification:
    """What one power-cut run of a banked repro actually did."""

    #: Storage counter bucket of the fault that fired in service.
    bucket: str
    #: Stop reason of the post-crash prefix scan (None: clean log).
    stopped: Optional[str]
    #: Bytes past the salvaged prefix the scanner discarded.
    dropped_bytes: int
    #: WAL records redone during recovery.
    redone: int
    #: Committed writes absent from the recovered state.
    lost_statements: int
    #: Recovered state equals a pristine replay of the salvaged prefix.
    prefix_consistent: bool


def storage_fault_bank() -> list[StorageBugReport]:
    """One banked repro per storage fault class, IB dialect."""
    return [
        StorageBugReport(
            bug_id="STOR-TORN-1",
            server="IB",
            description="power cut mid-append tears the final WAL record",
            script=(
                "CREATE TABLE accounts (id INT PRIMARY KEY,"
                " balance DECIMAL(10,2));\n"
                "CREATE TABLE audit_note (id INT, note VARCHAR(40));\n"
                "INSERT INTO accounts VALUES (1, 100.00);\n"
                "INSERT INTO accounts VALUES (2, 250.00);\n"
                "INSERT INTO audit_note VALUES (1, 'opening');\n"
                "UPDATE accounts SET balance = 175.00 WHERE id = 1;"
            ),
            fault=FaultSpec(
                "STOR-TORN-1-F",
                "torn write on the account balance update",
                SqlPatternTrigger(r"UPDATE\s+accounts"),
                TornWriteEffect(keep_fraction=0.5),
                kind=FailureKind.STORAGE,
                detectability=Detectability.SELF_EVIDENT,
            ),
            expected_bucket="torn",
            expected_stops=frozenset({"torn-payload", "checksum-mismatch"}),
            expected_lost=1,
        ),
        StorageBugReport(
            bug_id="STOR-LOST-1",
            server="IB",
            description="lost flush drops a mid-log record; the LSN gap "
            "forces the scanner to discard the intact tail too",
            script=(
                "CREATE TABLE stock (s_id INT PRIMARY KEY, qty INT);\n"
                "CREATE TABLE restock_note (n INT);\n"
                "INSERT INTO stock VALUES (1, 10);\n"
                "INSERT INTO restock_note VALUES (0);\n"
                "UPDATE stock SET qty = 9 WHERE s_id = 1;\n"
                "INSERT INTO stock VALUES (2, 20);"
            ),
            fault=FaultSpec(
                "STOR-LOST-1-F",
                "lost flush on the stock quantity update",
                SqlPatternTrigger(r"UPDATE\s+stock"),
                LostFlushEffect(),
                kind=FailureKind.STORAGE,
                detectability=Detectability.NON_SELF_EVIDENT,
            ),
            expected_bucket="lost",
            expected_stops=frozenset({"lsn-gap"}),
            expected_lost=2,
            anchors=(5,),
        ),
        StorageBugReport(
            bug_id="STOR-CORRUPT-1",
            server="IB",
            description="a flipped payload byte fails the record checksum",
            script=(
                "CREATE TABLE orders_log (o_id INT PRIMARY KEY,"
                " total DECIMAL(8,2));\n"
                "CREATE TABLE scratch (x INT);\n"
                "INSERT INTO orders_log VALUES (1, 19.99);\n"
                "INSERT INTO orders_log VALUES (2, 5.00);"
            ),
            fault=FaultSpec(
                "STOR-CORRUPT-1-F",
                "bit rot on the second order insert",
                SqlPatternTrigger(r"INSERT\s+INTO\s+orders_log\s+VALUES\s*\(2"),
                ChecksumCorruptionEffect(offset=3, xor=0x40),
                kind=FailureKind.STORAGE,
                detectability=Detectability.SELF_EVIDENT,
            ),
            expected_bucket="corrupt",
            expected_stops=frozenset({"checksum-mismatch"}),
            expected_lost=1,
        ),
    ]


def trigger_slice_signature(report: StorageBugReport) -> tuple[str, ...]:
    """The dedupe key: the minimized statement sequence, whitespace
    normalized.  Two banked repros with equal signatures exercise the
    same fault path."""
    return tuple(
        " ".join(statement.split()) for statement in report.minimized().statements
    )


def classify_repro(report: StorageBugReport) -> StorageClassification:
    """Run a banked repro's minimized script, power-cut, recover, and
    classify what the durability layer observed.

    Checkpoints are disabled so recovery is pure WAL redo — the prefix
    consistency check compares the recovered engine against a pristine
    product replaying exactly the salvaged records.
    """
    from repro.servers import make_server

    session = DurableSession(
        make_server(report.server, [report.fault]), name=report.bug_id
    )
    session.execute_script(report.minimized().sql)
    buckets = {bucket for _, bucket in session.storage_fault_log}
    committed = session.wal.next_lsn

    disk = session.power_cut()
    recovered, outcome = DurableSession.resume(
        make_server(report.server), disk, name=report.bug_id
    )

    pristine = make_server(report.server)
    for record in recovered.wal.scan().records:
        try:
            pristine.execute(record.sql)
        except SqlError:
            continue
    prefix_consistent = engine_state_signature(
        recovered.product.engine
    ) == engine_state_signature(pristine.engine)

    return StorageClassification(
        bucket=buckets.pop() if len(buckets) == 1 else "|".join(sorted(buckets)),
        stopped=outcome.stopped,
        dropped_bytes=outcome.dropped_bytes,
        redone=outcome.redone,
        lost_statements=committed - outcome.redone,
        prefix_consistent=prefix_consistent,
    )
