"""A single-product durable session: WAL + checkpoints for one server.

The middleware-level :class:`~repro.durability.manager.DurabilityManager`
wires durability into a :class:`~repro.middleware.server.DiverseServer`;
this module is the one-replica version used wherever a full diverse
deployment would only get in the way — the durability bug bank, the
power-cut property tests, and the recovery-time benchmarks.

Every committed write statement is appended to the session's WAL
(running through the product's storage-phase faults, so a seeded
:class:`~repro.faults.effects.TornWriteEffect` tears real bytes), and
checkpoints are taken on a write-count cadence.  ``power_cut`` +
``recover`` simulate kill -9 and restart.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.reachability import StaticContext
from repro.analysis.verdicts import DDL_KINDS, WRITE_KINDS
from repro.durability.checkpoint import CheckpointStore, build_checkpoint
from repro.durability.medium import MemoryMedium, StorageMedium
from repro.durability.recovery import RecoveryReport, recover_engine
from repro.durability.wal import WriteAheadLog
from repro.errors import SqlError
from repro.faults.effects import (
    ChecksumCorruptionEffect,
    LostFlushEffect,
    StorageEffect,
    TornWriteEffect,
)
from repro.servers.product import ServerProduct
from repro.sqlengine.analysis import StatementTraits, extract_traits
from repro.sqlengine.engine import Result
from repro.sqlengine.parser import parse_statement


def classify_storage_effect(effect: StorageEffect) -> str:
    """Counter bucket for one fired storage effect."""
    if isinstance(effect, TornWriteEffect):
        return "torn"
    if isinstance(effect, LostFlushEffect):
        return "lost"
    if isinstance(effect, ChecksumCorruptionEffect):
        return "corrupt"
    return "other"


class DurableSession:
    """One server product with a write-ahead log and checkpoints."""

    def __init__(
        self,
        product: ServerProduct,
        medium: Optional[StorageMedium] = None,
        *,
        name: Optional[str] = None,
        checkpoint_interval: Optional[int] = None,
        keep_checkpoints: int = 2,
    ) -> None:
        self.product = product
        self.medium = medium if medium is not None else MemoryMedium()
        self.name = name or product.key
        self.wal = WriteAheadLog(self.medium, f"{self.name}/wal")
        self.checkpoints = CheckpointStore(
            self.medium, self.name, keep=keep_checkpoints
        )
        self.checkpoint_interval = checkpoint_interval
        self.ddl_history: list[str] = []
        self._writes_since_checkpoint = 0
        #: (sql, bucket) pairs for every storage fault that fired.
        self.storage_fault_log: list[tuple[str, str]] = []

    # -- execution ------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Execute one statement; committed writes reach the WAL."""
        traits = extract_traits(parse_statement(sql))
        result = self.product.execute(sql)
        if traits.kind in WRITE_KINDS:
            self._log_write(sql, traits)
        return result

    def execute_script(self, sql: str) -> list[Result]:
        """Run a multi-statement script, erroring statements skipped
        (bug-script semantics: errors are part of the scenario)."""
        from repro.study.runner import split_statements

        results: list[Result] = []
        for statement in split_statements(sql):
            try:
                results.append(self.execute(statement))
            except SqlError:
                continue
        return results

    def _log_write(self, sql: str, traits: StatementTraits) -> None:
        ctx = StaticContext(sql, traits)
        injector = self.product.injector

        def mutate(data: bytes) -> Optional[bytes]:
            mutated, fired = injector.mutate_storage(ctx, data)
            for fault in fired:
                self.storage_fault_log.append(
                    (sql, classify_storage_effect(fault.effect))
                )
            return mutated

        self.wal.append(sql, self.product.engine.catalog.generation, mutate=mutate)
        if traits.kind in DDL_KINDS:
            self.ddl_history.append(sql)
        self._writes_since_checkpoint += 1
        self.maybe_checkpoint()

    # -- checkpoints ----------------------------------------------------

    def maybe_checkpoint(self) -> Optional[str]:
        """Checkpoint on the configured write cadence (never inside an
        open transaction — the WAL's BEGIN/COMMIT markers must not
        straddle the watermark)."""
        interval = self.checkpoint_interval
        if not interval or self._writes_since_checkpoint < interval:
            return None
        return self.checkpoint()

    def checkpoint(self) -> Optional[str]:
        engine = self.product.engine
        if engine.transactions.in_transaction:
            return None
        name = self.checkpoints.save(
            build_checkpoint(
                engine, lsn=self.wal.next_lsn, ddl=self.ddl_history
            )
        )
        self._writes_since_checkpoint = 0
        return name

    # -- crash / restart ------------------------------------------------

    def power_cut(self) -> StorageMedium:
        """The disk image a power cut leaves behind (memory media are
        cloned so the original session can keep running)."""
        if isinstance(self.medium, MemoryMedium):
            return self.medium.clone()
        return self.medium

    def recover(self) -> RecoveryReport:
        """Restart recovery in place: rebuild the engine from the
        medium, re-derive the DDL history, re-baseline the WAL."""
        report = recover_engine(
            self.product.engine,
            self.wal,
            self.checkpoints,
            replica=self.name,
            execute=self.product.execute,
        )
        self._rederive_ddl_history(report)
        self._writes_since_checkpoint = 0
        return report

    def _rederive_ddl_history(self, report: RecoveryReport) -> None:
        ddl: list[str] = []
        if report.checkpoint is not None:
            for name, payload in self.checkpoints.load_all():
                if name == report.checkpoint:
                    ddl = [str(sql) for sql in payload.get("ddl", ())]
                    break
        for record in self.wal.scan().records:
            if record.lsn < report.watermark:
                continue
            traits = extract_traits(parse_statement(record.sql))
            if traits.kind in DDL_KINDS:
                ddl.append(record.sql)
        self.ddl_history = ddl

    @classmethod
    def resume(
        cls,
        product: ServerProduct,
        medium: StorageMedium,
        *,
        name: Optional[str] = None,
        checkpoint_interval: Optional[int] = None,
    ) -> tuple["DurableSession", RecoveryReport]:
        """Open a session over an existing disk image and recover it —
        the full restart path (fresh process, surviving medium)."""
        session = cls(
            product, medium, name=name, checkpoint_interval=checkpoint_interval
        )
        report = session.recover()
        return session, report
