"""The write-ahead log: checksummed, length-prefixed redo records.

Record framing (little-endian)::

    +----------------+----------------+------------------------+
    | payload length | CRC32(payload) | payload (JSON, UTF-8)  |
    |    4 bytes     |    4 bytes     |   ``length`` bytes     |
    +----------------+----------------+------------------------+

The payload carries ``{"lsn": n, "gen": g, "sql": text}``: a
monotonically increasing log sequence number, the replica catalog's
``generation`` counter observed when the statement committed (a cheap
cross-check that redo reproduces the same schema history), and the
committed write statement in the replica's own dialect.

The scan (:meth:`WriteAheadLog.scan`) is the recovery contract: read
records in order and stop at the *first* invalid one — a torn header,
a torn or corrupt payload (CRC mismatch), undecodable JSON, or an LSN
that is not the expected successor (a lost flush left a gap).  Every
byte after the first invalid record is discarded, so recovery always
lands on a prefix of the committed history — never a gapped subset,
which is what makes the power-cut property ("recover to a state some
prefix of the run produces") hold by construction.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.durability.medium import StorageMedium

_HEADER = struct.Struct("<II")

#: Upper bound on a record payload; anything larger read from disk is
#: treated as a torn/garbage header rather than an allocation request.
MAX_PAYLOAD = 1 << 24


@dataclass(frozen=True)
class WalRecord:
    """One committed write statement as recovered from the log."""

    lsn: int
    generation: int
    sql: str


@dataclass
class WalScan:
    """Result of a tolerant prefix scan of one WAL."""

    records: list[WalRecord]
    #: Bytes covered by the valid record prefix.
    valid_bytes: int
    #: Total bytes present on the medium.
    total_bytes: int
    #: Why the scan stopped early (``None`` when the log was clean):
    #: ``torn-header`` / ``torn-payload`` / ``checksum-mismatch`` /
    #: ``undecodable`` / ``lsn-gap``.
    stopped: Optional[str] = None

    @property
    def dropped_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes

    @property
    def clean(self) -> bool:
        return self.stopped is None


def encode_record(lsn: int, generation: int, sql: str) -> bytes:
    payload = json.dumps(
        {"lsn": lsn, "gen": generation, "sql": sql}, ensure_ascii=False
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_records(blob: bytes) -> WalScan:
    """Decode the valid record prefix of raw WAL bytes."""
    records: list[WalRecord] = []
    offset = 0
    valid = 0
    expected_lsn = 0
    stopped: Optional[str] = None
    total = len(blob)
    while offset < total:
        if offset + _HEADER.size > total:
            stopped = "torn-header"
            break
        length, checksum = _HEADER.unpack_from(blob, offset)
        if length > MAX_PAYLOAD:
            stopped = "torn-header"
            break
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            stopped = "torn-payload"
            break
        payload = blob[start:end]
        if zlib.crc32(payload) != checksum:
            stopped = "checksum-mismatch"
            break
        try:
            fields = json.loads(payload.decode("utf-8"))
            record = WalRecord(
                lsn=int(fields["lsn"]),
                generation=int(fields["gen"]),
                sql=str(fields["sql"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            stopped = "undecodable"
            break
        if record.lsn != expected_lsn:
            stopped = "lsn-gap"
            break
        records.append(record)
        expected_lsn += 1
        offset = end
        valid = end
    return WalScan(
        records=records, valid_bytes=valid, total_bytes=total, stopped=stopped
    )


class WriteAheadLog:
    """Append/scan access to one replica's redo log on a medium.

    ``append`` runs the encoded record through an optional ``mutate``
    hook before it reaches the medium — that is where the storage
    fault effects (torn write, lost flush, checksum corruption) bite,
    modelling a disk that lies between the commit and the platter.
    """

    def __init__(self, medium: StorageMedium, name: str) -> None:
        self.medium = medium
        self.name = name
        self._next_lsn: Optional[int] = None

    @property
    def next_lsn(self) -> int:
        """The LSN the next committed write will carry."""
        if self._next_lsn is None:
            self._next_lsn = len(self.scan().records)
        return self._next_lsn

    def append(
        self,
        sql: str,
        generation: int,
        mutate: Optional[Callable[[bytes], Optional[bytes]]] = None,
    ) -> WalRecord:
        """Encode and append one committed write statement.

        The LSN advances even when ``mutate`` drops the record (a lost
        flush): the statement *did* commit, the log just never learned
        — exactly the gap the scan detects.
        """
        lsn = self.next_lsn
        record = WalRecord(lsn=lsn, generation=generation, sql=sql)
        data: Optional[bytes] = encode_record(lsn, generation, sql)
        if mutate is not None:
            data = mutate(data)
        if data:
            self.medium.append(self.name, data)
        self._next_lsn = lsn + 1
        return record

    def scan(self) -> WalScan:
        return scan_records(self.medium.read(self.name))

    def truncate_to_valid(self) -> int:
        """Discard everything past the valid prefix; returns bytes cut.

        Run by recovery after redo so the log is clean for the next
        incarnation — the idempotence half of the power-cut property.
        """
        scan = self.scan()
        if scan.dropped_bytes:
            self.medium.truncate(self.name, scan.valid_bytes)
        self._next_lsn = len(scan.records)
        return scan.dropped_bytes

    def reset(self) -> None:
        """Wipe the log (fresh install / post-rebuild re-baseline)."""
        self.medium.delete(self.name)
        self._next_lsn = 0
