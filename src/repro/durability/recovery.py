"""ARIES-lite restart recovery: checkpoint restore + WAL redo.

The restart sequence for one replica engine:

1. **Analysis** — scan the WAL's valid record prefix (everything past
   the first torn/corrupt/gapped record is distrusted and discarded).
2. **Restore** — apply the newest checkpoint that validates *and*
   applies cleanly; fall back to older checkpoints, then to a fresh
   install with full-history redo.  A checkpoint whose watermark lies
   beyond the salvaged WAL prefix is rejected too: it would encode
   state the (damaged) log can no longer vouch for, breaking the
   prefix-consistency contract.
3. **Redo** — replay WAL records with ``lsn >= watermark`` in order.
   Statements that error replay as errors (the engine's SqlError-
   continue semantics, identical to supervisor log replay).
4. **Undo** — the engine's transaction journal rolls back any
   transaction left open at the end of the log (``Engine.restart``),
   so a power cut mid-transaction recovers to the last commit point.
5. **Re-baseline** — truncate the WAL to its valid prefix, making
   recovery idempotent: running it twice lands on the same state.

Throughout, the engine is in its ``recover`` phase, so recovery-scoped
faults (:class:`repro.faults.triggers.RecoveryTrigger`) fire exactly
as they do during supervisor replay — recovery itself stays under
test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.durability.checkpoint import (
    CheckpointInvalid,
    CheckpointStore,
    decode_row,
)
from repro.durability.wal import WalScan, WriteAheadLog
from repro.errors import SqlError


@dataclass
class RecoveryReport:
    """What one restart recovery did (telemetry + test oracle)."""

    replica: str
    #: Name of the checkpoint restored, or ``None`` (full redo).
    checkpoint: Optional[str] = None
    #: WAL position redo resumed from (0 without a checkpoint).
    watermark: int = 0
    #: Valid WAL records found / redone past the watermark.
    wal_records: int = 0
    redone: int = 0
    #: Redo statements that (re-)errored, as at original execution.
    errored: int = 0
    #: Bytes discarded past the first invalid record, and why the scan
    #: stopped (``None`` for a clean log).
    dropped_bytes: int = 0
    stopped: Optional[str] = None
    #: Records whose logged catalog generation disagreed with the
    #: engine after redo (schema-history drift cross-check).
    generation_mismatches: int = 0
    #: A transaction was open at end-of-log and rolled back.
    aborted_transaction: bool = False
    #: Checkpoints that failed validation/application and were skipped.
    checkpoints_skipped: int = 0
    warnings: list[str] = field(default_factory=list)


def apply_checkpoint(engine: Any, payload: dict) -> None:
    """Rebuild an engine from a checkpoint payload (schema via DDL
    replay, data via bulk row load).  Raises
    :class:`CheckpointInvalid` when the payload cannot reproduce the
    state it claims (e.g. a table dump with no matching schema)."""
    engine.reset()
    engine.restart()
    engine.phase = "recover"
    try:
        for sql in payload.get("ddl", ()):
            try:
                engine.execute(sql)
            except SqlError:
                continue  # errored at original execution; errors again
        for table in payload.get("tables", ()):
            data = engine.storage.get_optional(table["name"])
            if data is None:
                raise CheckpointInvalid(
                    f"checkpoint dumps table {table['name']!r} with no schema"
                )
            if data.column_count != table["columns"]:
                raise CheckpointInvalid(
                    f"checkpoint width mismatch on {table['name']!r}"
                )
            data.replace_rows(decode_row(list(row)) for row in table["rows"])
    finally:
        engine.phase = "serve"


def recover_engine(
    engine: Any,
    wal: WriteAheadLog,
    checkpoints: Optional[CheckpointStore] = None,
    *,
    replica: str = "?",
    execute: Optional[Callable[[str], Any]] = None,
) -> RecoveryReport:
    """Restart one engine from its durable state; see module docs.

    ``execute`` defaults to ``engine.execute``; pass the owning
    product's ``execute`` so dialect validation runs as in service.
    """
    run = execute or engine.execute
    scan: WalScan = wal.scan()
    report = RecoveryReport(
        replica=replica,
        wal_records=len(scan.records),
        dropped_bytes=scan.dropped_bytes,
        stopped=scan.stopped,
    )

    restored = False
    if checkpoints is not None:
        for name, payload in checkpoints.load_all():
            if payload["lsn"] > len(scan.records):
                # The checkpoint is ahead of the salvaged log prefix:
                # trusting it would resurrect discarded history.
                report.checkpoints_skipped += 1
                report.warnings.append(
                    f"checkpoint {name} watermark {payload['lsn']} beyond "
                    f"salvaged WAL prefix {len(scan.records)}"
                )
                continue
            try:
                apply_checkpoint(engine, payload)
            except CheckpointInvalid as error:
                report.checkpoints_skipped += 1
                report.warnings.append(f"checkpoint {name} skipped: {error}")
                continue
            report.checkpoint = name
            report.watermark = int(payload["lsn"])
            restored = True
            break
    if not restored:
        engine.reset()
        engine.restart()

    engine.phase = "recover"
    # The catalog generation counter is monotonic across resets, so the
    # cross-check is relative: redo must reproduce the *same drift* as
    # the original run.  A changing offset means redo's schema history
    # diverged from what the log recorded.
    offset: Optional[int] = None
    try:
        for record in scan.records:
            if record.lsn < report.watermark:
                continue
            try:
                run(record.sql)
            except SqlError:
                report.errored += 1
            report.redone += 1
            drift = engine.catalog.generation - record.generation
            if offset is None:
                offset = drift
            elif drift != offset:
                report.generation_mismatches += 1
                offset = drift  # resync so one slip is counted once
    finally:
        engine.phase = "serve"

    if engine.transactions.in_transaction:
        report.aborted_transaction = True
    engine.restart()  # undo pass: roll back any open transaction
    wal.truncate_to_valid()
    return report


def engine_state_signature(engine: Any) -> str:
    """A canonical fingerprint of one engine's durable state.

    Covers the catalog (tables, views, indexes by name) and every
    table's row multiset in the checkpoint value codec.  Two engines
    with equal signatures hold the same logical database; the
    restart-recovery healer and the power-cut property tests compare
    these.
    """
    from repro.durability.checkpoint import encode_row

    tables = {}
    for data in engine.storage.tables():
        rows = sorted(
            json.dumps(encode_row(list(row)), sort_keys=True)
            for row in data.snapshot()
        )
        tables[data.name.lower()] = rows
    catalog = engine.catalog
    indexes = sorted(
        index.name.lower()
        for table in catalog.tables()
        for index in catalog.indexes_on(table.name)
    )
    payload = {
        "tables": tables,
        "table_names": sorted(t.name.lower() for t in catalog.tables()),
        "views": sorted(v.name.lower() for v in catalog.views()),
        "indexes": indexes,
    }
    return json.dumps(payload, sort_keys=True)
