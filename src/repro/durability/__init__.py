"""Durable self-healing replicas: WAL, checkpoints, restart recovery.

The paper's fault-tolerant-node sketch assumes a failed replica can be
brought back and re-synced; this package makes that real for the
simulated deployment:

* :mod:`repro.durability.medium` — byte-level storage media (memory
  and file), the "disk" under everything else;
* :mod:`repro.durability.wal` — checksummed, length-prefixed
  write-ahead log with prefix-salvage scanning;
* :mod:`repro.durability.checkpoint` — checksummed logical engine
  snapshots (DDL history + typed row dumps);
* :mod:`repro.durability.recovery` — ARIES-lite restart recovery
  (checkpoint restore, WAL redo, open-transaction undo);
* :mod:`repro.durability.session` — the single-product durable
  harness (bug bank, property tests, benchmarks);
* :mod:`repro.durability.manager` — middleware integration: per-replica
  dialect-translated WALs, durable checkpoints, whole-deployment
  restart recovery with majority healing;
* :mod:`repro.durability.bank` — minimized storage-fault repro
  scripts with lint-checked ground truth.
"""

from repro.durability.bank import (
    StorageBugReport,
    StorageClassification,
    classify_repro,
    storage_fault_bank,
    trigger_slice_signature,
)
from repro.durability.checkpoint import (
    CheckpointInvalid,
    CheckpointStore,
    build_checkpoint,
)
from repro.durability.manager import (
    DurabilityManager,
    ReplicaStore,
    ServerRecovery,
)
from repro.durability.medium import (
    FileMedium,
    MemoryMedium,
    StorageMedium,
    medium_from_path,
)
from repro.durability.recovery import (
    RecoveryReport,
    apply_checkpoint,
    engine_state_signature,
    recover_engine,
)
from repro.durability.session import DurableSession, classify_storage_effect
from repro.durability.wal import (
    WalRecord,
    WalScan,
    WriteAheadLog,
    encode_record,
    scan_records,
)

__all__ = [
    "CheckpointInvalid",
    "CheckpointStore",
    "DurabilityManager",
    "DurableSession",
    "FileMedium",
    "MemoryMedium",
    "RecoveryReport",
    "ReplicaStore",
    "ServerRecovery",
    "StorageBugReport",
    "StorageClassification",
    "StorageMedium",
    "WalRecord",
    "WalScan",
    "WriteAheadLog",
    "apply_checkpoint",
    "build_checkpoint",
    "classify_repro",
    "classify_storage_effect",
    "encode_record",
    "engine_state_signature",
    "medium_from_path",
    "recover_engine",
    "scan_records",
    "storage_fault_bank",
    "trigger_slice_signature",
]
