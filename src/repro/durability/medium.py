"""Byte-level storage media for the durability subsystem.

The WAL and checkpoint layers are written against a tiny append/read
abstraction so the same code path serves two media:

* :class:`MemoryMedium` — named ``bytearray`` files.  Deterministic,
  fast, and trivially forkable (:meth:`MemoryMedium.clone`), which is
  what the power-cut property tests and the ``diskstorm`` drill need:
  "pull the plug" is a byte-exact copy of the medium truncated at an
  arbitrary boundary.
* :class:`FileMedium` — real files under a root directory, proving the
  encoding survives an actual filesystem round trip.

Neither medium buffers: every :meth:`append` is immediately visible to
:meth:`read`.  Lost-flush semantics are injected *above* this layer by
the storage fault effects (a record that never reaches the medium),
so the media themselves stay dumb and honest.
"""

from __future__ import annotations

import os
from typing import Optional


class StorageMedium:
    """Abstract named-byte-stream store (the durability "disk")."""

    def append(self, name: str, data: bytes) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def read(self, name: str) -> bytes:
        """Full contents; missing names read as empty."""
        raise NotImplementedError  # pragma: no cover - abstract

    def write(self, name: str, data: bytes) -> None:
        """Replace contents atomically (checkpoint publication)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def truncate(self, name: str, size: int) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def delete(self, name: str) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def size(self, name: str) -> int:
        return len(self.read(name))

    def names(self, prefix: str = "") -> list[str]:
        raise NotImplementedError  # pragma: no cover - abstract


class MemoryMedium(StorageMedium):
    """In-memory medium: the default for tests, drills, and benches."""

    def __init__(self) -> None:
        self._files: dict[str, bytearray] = {}

    def append(self, name: str, data: bytes) -> None:
        self._files.setdefault(name, bytearray()).extend(data)

    def read(self, name: str) -> bytes:
        return bytes(self._files.get(name, b""))

    def write(self, name: str, data: bytes) -> None:
        self._files[name] = bytearray(data)

    def truncate(self, name: str, size: int) -> None:
        blob = self._files.get(name)
        if blob is not None and size < len(blob):
            del blob[size:]

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(name for name in self._files if name.startswith(prefix))

    # -- power-cut simulation helpers -----------------------------------

    def clone(self) -> "MemoryMedium":
        """An independent byte-exact copy (the surviving disk image)."""
        copied = MemoryMedium()
        copied._files = {name: bytearray(blob) for name, blob in self._files.items()}
        return copied

    def corrupt(self, name: str, offset: int, xor: int = 0x01) -> None:
        """Flip bits of one byte in place (bit-rot simulation)."""
        blob = self._files.get(name)
        if blob is not None and 0 <= offset < len(blob):
            blob[offset] ^= xor & 0xFF


class FileMedium(StorageMedium):
    """Medium backed by real files under ``root``.

    Names may contain ``/`` separators; directories are created on
    demand.  ``write`` publishes through a rename so a checkpoint is
    never observable half-written.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        path = os.path.join(self.root, *name.split("/"))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as handle:
            handle.write(data)

    def read(self, name: str) -> bytes:
        path = self._path(name)
        if not os.path.exists(path):
            return b""
        with open(path, "rb") as handle:
            return handle.read()

    def write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        temp = path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(data)
        os.replace(temp, path)

    def truncate(self, name: str, size: int) -> None:
        path = self._path(name)
        if os.path.exists(path) and size < os.path.getsize(path):
            with open(path, "r+b") as handle:
                handle.truncate(size)

    def delete(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            os.remove(path)

    def size(self, name: str) -> int:
        path = self._path(name)
        return os.path.getsize(path) if os.path.exists(path) else 0

    def names(self, prefix: str = "") -> list[str]:
        found: list[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".tmp"):
                    continue
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, self.root).replace(os.sep, "/")
                if rel.startswith(prefix):
                    found.append(rel)
        return sorted(found)


def medium_from_path(path: Optional[str]) -> StorageMedium:
    """A :class:`FileMedium` at ``path``, or a fresh memory medium."""
    if path is None:
        return MemoryMedium()
    return FileMedium(path)
