"""Durable checkpoints: checksummed logical snapshots of one engine.

A checkpoint is *logical*, not a byte image: the schema is stored as
the replica's own DDL history (replayed verbatim on restore, which
rebuilds tables, views, indexes, and their constraint metadata through
the ordinary execution path) and the data as per-table row dumps in a
tagged JSON codec covering every scalar the engine stores (NULL,
booleans, integers, floats, strings, ``Decimal``, ``date``,
``datetime``).  Alongside them it records the WAL watermark: the LSN
from which redo must resume.

Checkpoints share the WAL's checksummed framing (length + CRC32 +
JSON payload) and the same distrust: a checkpoint that fails its
checksum or fails to apply is skipped and recovery falls back to the
previous one — or to a full-history redo when none survive.
"""

from __future__ import annotations

import datetime
import json
import struct
import zlib
from decimal import Decimal
from typing import Any, Optional

from repro.durability.medium import StorageMedium

_HEADER = struct.Struct("<II")


class CheckpointInvalid(Exception):
    """A checkpoint blob failed validation and must not be trusted."""


# -- value codec ----------------------------------------------------------


def encode_value(value: Any) -> Any:
    """JSON-safe encoding of one stored scalar (type-preserving)."""
    if isinstance(value, Decimal):
        return {"$": "decimal", "v": str(value)}
    if isinstance(value, datetime.datetime):
        return {"$": "datetime", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$": "date", "v": value.isoformat()}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        tag, text = value.get("$"), value.get("v")
        if tag == "decimal":
            return Decimal(text)
        if tag == "datetime":
            return datetime.datetime.fromisoformat(text)
        if tag == "date":
            return datetime.date.fromisoformat(text)
        raise CheckpointInvalid(f"unknown value tag {tag!r}")
    return value


def encode_row(row: list[Any]) -> list[Any]:
    return [encode_value(value) for value in row]


def decode_row(row: list[Any]) -> list[Any]:
    return [decode_value(value) for value in row]


# -- blob framing ---------------------------------------------------------


def pack_checkpoint(payload: dict) -> bytes:
    blob = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    return _HEADER.pack(len(blob), zlib.crc32(blob)) + blob


def unpack_checkpoint(data: bytes) -> dict:
    if len(data) < _HEADER.size:
        raise CheckpointInvalid("truncated checkpoint header")
    length, checksum = _HEADER.unpack_from(data, 0)
    blob = data[_HEADER.size:_HEADER.size + length]
    if len(blob) != length:
        raise CheckpointInvalid("truncated checkpoint payload")
    if zlib.crc32(blob) != checksum:
        raise CheckpointInvalid("checkpoint checksum mismatch")
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CheckpointInvalid(f"undecodable checkpoint: {error}") from None
    if not isinstance(payload, dict) or "lsn" not in payload:
        raise CheckpointInvalid("checkpoint payload missing fields")
    return payload


def build_checkpoint(
    engine: Any, *, lsn: int, ddl: list[str], taken_at: float = 0.0
) -> dict:
    """The logical snapshot payload of one engine at WAL position ``lsn``."""
    tables = []
    for data in engine.storage.tables():
        tables.append(
            {
                "name": data.name,
                "columns": data.column_count,
                "rows": [encode_row(list(row)) for row in data.snapshot()],
            }
        )
    return {
        "lsn": lsn,
        "generation": engine.catalog.generation,
        "taken_at": taken_at,
        "ddl": list(ddl),
        "tables": tables,
    }


class CheckpointStore:
    """Numbered checkpoint blobs for one replica on a medium.

    Keeps the last ``keep`` checkpoints; older ones are pruned after a
    successful save, so a checkpoint torn mid-write never leaves the
    replica without a fallback.
    """

    def __init__(self, medium: StorageMedium, prefix: str, *, keep: int = 2) -> None:
        self.medium = medium
        self.prefix = prefix
        self.keep = max(1, keep)

    def _names(self) -> list[str]:
        return self.medium.names(self.prefix + "/ckpt-")

    def _sequence(self, name: str) -> int:
        try:
            return int(name.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def save(self, payload: dict) -> str:
        existing = self._names()
        seq = max((self._sequence(name) for name in existing), default=-1) + 1
        name = f"{self.prefix}/ckpt-{seq:08d}"
        self.medium.write(name, pack_checkpoint(payload))
        for stale in sorted(existing, key=self._sequence)[: max(0, len(existing) + 1 - self.keep)]:
            self.medium.delete(stale)
        return name

    def load_all(self) -> list[tuple[str, dict]]:
        """Valid checkpoints, newest first; corrupt blobs are skipped."""
        found: list[tuple[str, dict]] = []
        for name in sorted(self._names(), key=self._sequence, reverse=True):
            try:
                found.append((name, unpack_checkpoint(self.medium.read(name))))
            except CheckpointInvalid:
                continue
        return found

    def load_latest(self) -> Optional[tuple[str, dict]]:
        candidates = self.load_all()
        return candidates[0] if candidates else None

    def clear(self) -> None:
        for name in self._names():
            self.medium.delete(name)
