"""Durability for the diverse middleware: per-replica WALs, durable
checkpoints, and whole-deployment restart recovery.

Attach a :class:`DurabilityManager` to a
:class:`~repro.middleware.server.DiverseServer` via
``ServerConfig(durability=...)`` and every committed write is logged
twice:

* once to a **shared WAL** in middleware SQL (the durable form of the
  server's in-memory write log, from which ``restore_write_log``
  rebuilds adjudication state after a restart), and
* once per replica, **translated to that replica's dialect** — the
  text supervisor replay would feed it — with the replica's own
  storage-phase faults applied to the encoded bytes.  A torn write on
  the InterBase replica damages only the InterBase log: fault
  *diversity* extends to the disks.

A replica whose translation refuses a statement
(:class:`~repro.errors.FeatureNotSupported`) gets no record — it never
applied the write in service either, and redo would refuse it again.

Checkpoints are taken on a committed-write cadence for every ACTIVE
replica (quarantined state is not trustworthy; a freshly recovered or
rebuilt replica is re-baselined through the server's recovery hook
instead).  :meth:`recover_server` is the full restart path: rebuild
the write log from the shared WAL, run ARIES-lite recovery on every
replica, then let the healthy majority adjudicate — replicas whose
recovered state signature is out-voted are quarantined and repaired
by ordinary supervisor replay before service resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.analysis.reachability import StaticContext
from repro.analysis.verdicts import DDL_KINDS
from repro.durability.checkpoint import CheckpointStore, build_checkpoint
from repro.durability.medium import StorageMedium
from repro.durability.recovery import (
    RecoveryReport,
    engine_state_signature,
    recover_engine,
)
from repro.durability.session import classify_storage_effect
from repro.durability.wal import WriteAheadLog
from repro.errors import EngineCrash, FeatureNotSupported
from repro.sqlengine.analysis import StatementTraits, extract_traits
from repro.sqlengine.parser import parse_statement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.middleware.server import DiverseServer, Replica

#: Medium name of the shared (middleware-form) write-ahead log.
SHARED_WAL = "_shared/wal"


@dataclass
class ReplicaStore:
    """One replica's durable artifacts on the medium."""

    key: str
    wal: WriteAheadLog
    checkpoints: CheckpointStore
    #: The replica's full translated DDL history (checkpoint schema).
    ddl_history: list[str] = field(default_factory=list)


@dataclass
class ServerRecovery:
    """Outcome of one whole-deployment restart recovery."""

    #: Statements restored into the middleware write log.
    write_log: int = 0
    #: Per-replica ARIES-lite reports.
    reports: dict[str, RecoveryReport] = field(default_factory=dict)
    #: Replicas that crashed during redo and were handed to the
    #: supervisor's backoff machinery.
    crashed: list[str] = field(default_factory=list)
    #: Replicas whose recovered state lost the majority vote and were
    #: healed by supervisor replay.
    healed: list[str] = field(default_factory=list)
    #: Tables still disagreeing after healing (should be empty).
    residual_disagreements: dict[str, list[str]] = field(default_factory=dict)


class DurabilityManager:
    """Owns the durable state of one :class:`DiverseServer`."""

    def __init__(
        self,
        medium: StorageMedium,
        *,
        checkpoint_interval: Optional[int] = 64,
        keep_checkpoints: int = 2,
    ) -> None:
        self.medium = medium
        self.checkpoint_interval = checkpoint_interval
        self.keep_checkpoints = keep_checkpoints
        self._server: Optional["DiverseServer"] = None
        self._stores: dict[str, ReplicaStore] = {}
        self._shared: Optional[WriteAheadLog] = None
        self._last_checkpoint_writes = 0

    def attach(self, server: "DiverseServer") -> None:
        if self._server is not None and self._server is not server:
            raise ValueError("a DurabilityManager serves exactly one server")
        self._server = server
        self._shared = WriteAheadLog(self.medium, SHARED_WAL)
        for replica in server.replicas:
            self._stores[replica.key] = ReplicaStore(
                key=replica.key,
                wal=WriteAheadLog(self.medium, f"{replica.key}/wal"),
                checkpoints=CheckpointStore(
                    self.medium, replica.key, keep=self.keep_checkpoints
                ),
            )
        self._last_checkpoint_writes = server.stats.writes

    @property
    def stats(self):
        return self._server.stats

    def store(self, key: str) -> ReplicaStore:
        return self._stores[key]

    # -- write path -----------------------------------------------------

    def log_write(self, bound_sql: str, traits: StatementTraits) -> None:
        """Append one committed write to the shared and replica WALs."""
        server = self._server
        self._shared.append(bound_sql, server.pipeline.generation)
        is_ddl = traits.kind in DDL_KINDS
        for replica in server.replicas:
            store = self._stores[replica.key]
            try:
                translated = server.pipeline.translation(
                    bound_sql, replica.product.descriptor
                )
            except FeatureNotSupported:
                continue
            ctx = StaticContext(translated, traits)
            injector = replica.product.injector

            def mutate(
                data: bytes, _ctx=ctx, _injector=injector
            ) -> Optional[bytes]:
                mutated, fired = _injector.mutate_storage(_ctx, data)
                for fault in fired:
                    self._count_storage_fault(fault)
                return mutated

            store.wal.append(
                translated,
                replica.product.engine.catalog.generation,
                mutate=mutate,
            )
            self.stats.wal_records += 1
            if is_ddl:
                store.ddl_history.append(translated)

    def _count_storage_fault(self, fault) -> None:
        bucket = classify_storage_effect(fault.effect)
        if bucket == "torn":
            self.stats.wal_torn_writes += 1
        elif bucket == "lost":
            self.stats.wal_lost_flushes += 1
        elif bucket == "corrupt":
            self.stats.wal_corruptions += 1

    # -- checkpoints ----------------------------------------------------

    def maybe_checkpoint(self) -> None:
        """Durably checkpoint every ACTIVE replica on the write cadence
        (skipped while a transaction is open, like supervisor
        checkpoints)."""
        interval = self.checkpoint_interval
        if not interval:
            return
        if self.stats.writes - self._last_checkpoint_writes < interval:
            return
        server = self._server
        active = server.active_replicas()
        if not active:
            return
        if any(r.product.engine.transactions.in_transaction for r in active):
            return
        for replica in active:
            self.checkpoint_replica(replica)
        self._last_checkpoint_writes = self.stats.writes

    def checkpoint_replica(self, replica: "Replica") -> str:
        """Write one replica's durable checkpoint at its current WAL
        position (also the re-baseline step after recovery/rebuild)."""
        store = self._stores[replica.key]
        name = store.checkpoints.save(
            build_checkpoint(
                replica.product.engine,
                lsn=store.wal.next_lsn,
                ddl=store.ddl_history,
                taken_at=self._server.clock.now,
            )
        )
        self.stats.durable_checkpoints += 1
        return name

    def on_replica_recovered(self, replica: "Replica") -> None:
        """Server hook: a replica just rejoined via supervisor replay
        or online rebuild; its durable baseline must catch up."""
        store = self._stores[replica.key]
        store.ddl_history = self._translated_ddl_history(replica)
        self.checkpoint_replica(replica)

    def _translated_ddl_history(self, replica: "Replica") -> list[str]:
        """The replica's DDL history recomputed from the middleware
        write log (translation is pure, so this is always available)."""
        history: list[str] = []
        server = self._server
        for sql in server._write_log:
            _, traits, _ = server.pipeline.parsed(sql)
            if traits.kind not in DDL_KINDS:
                continue
            try:
                history.append(
                    server.pipeline.translation(sql, replica.product.descriptor)
                )
            except FeatureNotSupported:
                continue
        return history

    # -- restart recovery ----------------------------------------------

    def recover_server(self) -> ServerRecovery:
        """Full restart: recover every replica from the medium, restore
        the middleware write log, and heal minority replicas by
        supervisor replay.  Call on a freshly constructed server
        attached to the surviving medium."""
        server = self._server
        outcome = ServerRecovery()

        shared_scan = self._shared.scan()
        server.restore_write_log([r.sql for r in shared_scan.records])
        self._shared.truncate_to_valid()
        outcome.write_log = len(shared_scan.records)

        from repro.middleware.supervisor import ReplicaState

        for replica in server.replicas:
            store = self._stores[replica.key]
            try:
                report = recover_engine(
                    replica.product.engine,
                    store.wal,
                    store.checkpoints,
                    replica=replica.key,
                    execute=replica.product.execute,
                )
            except EngineCrash:
                replica.product.restart()
                outcome.crashed.append(replica.key)
                server.supervisor.quarantine(replica)
                continue
            outcome.reports[replica.key] = report
            replica.state = ReplicaState.ACTIVE
            store.ddl_history = self._translated_ddl_history(replica)

        outcome.healed = self._heal_minority()
        outcome.residual_disagreements = server.verify_consistency()
        self.stats.durable_recoveries += 1
        return outcome

    def _heal_minority(self) -> list[str]:
        """Adjudicate recovered states: replicas outside the largest
        signature group are quarantined (supervisor replay repairs them
        from the restored write log)."""
        server = self._server
        active = server.active_replicas()
        if len(active) < 2:
            return []
        groups: dict[str, list] = {}
        for replica in active:
            signature = engine_state_signature(replica.product.engine)
            groups.setdefault(signature, []).append(replica)
        if len(groups) == 1:
            return []
        majority = max(
            groups.values(),
            key=lambda members: (len(members), -server.replicas.index(members[0])),
        )
        healed: list[str] = []
        for members in groups.values():
            if members is majority:
                continue
            for replica in members:
                healed.append(replica.key)
                server.supervisor.quarantine(replica)
        return healed
