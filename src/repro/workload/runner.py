"""Workload execution against any SQL endpoint (single server or
diverse middleware) with dependability and throughput metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.errors import (
    AdjudicationFailure,
    EngineCrash,
    NoReplicasAvailable,
    ReproError,
    SqlError,
)
from repro.workload.generator import TpccGenerator, Transaction
from repro.workload.schema import SCHEMA_STATEMENTS, populate_statements


class SqlEndpoint(Protocol):
    """Anything accepting SQL: ServerProduct, DiverseServer, Connection."""

    def execute(self, sql: str): ...


@dataclass
class WorkloadMetrics:
    """Outcome of one workload run."""

    transactions: int = 0
    statements: int = 0
    sql_errors: int = 0
    detected_disagreements: int = 0
    crashes: int = 0
    outages: int = 0
    aborted_transactions: int = 0
    retried_successes: int = 0
    exhausted_retries: int = 0
    elapsed_seconds: float = 0.0
    per_profile: dict[str, int] = field(default_factory=dict)

    @property
    def statements_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.statements / self.elapsed_seconds

    @property
    def failure_free(self) -> bool:
        return (
            self.sql_errors == 0
            and self.detected_disagreements == 0
            and self.crashes == 0
            and self.outages == 0
        )


class WorkloadRunner:
    """Drives a TPC-C-like stream through an endpoint.

    ``retries`` enables the classical rollback-and-retry recovery the
    paper contrasts diversity with (Section 2.1): an aborted transaction
    is re-submitted up to that many times.  Retry tolerates *transient*
    failures (Heisenbugs); deterministic Bohrbugs fail every attempt.
    """

    def __init__(self, endpoint: SqlEndpoint, *, seed: int = 0, retries: int = 0) -> None:
        self.endpoint = endpoint
        self.seed = seed
        self.retries = retries

    def setup(self) -> None:
        """Create and populate the schema."""
        for statement in SCHEMA_STATEMENTS:
            self.endpoint.execute(statement)
        for statement in populate_statements():
            self.endpoint.execute(statement)

    def run(
        self,
        transaction_count: int,
        *,
        generator: Optional[TpccGenerator] = None,
    ) -> WorkloadMetrics:
        """Run ``transaction_count`` transactions, collecting metrics.

        A statement-level disagreement (detection by the middleware) or
        SQL error aborts the enclosing transaction (rollback-and-
        continue, the study's recovery baseline).
        """
        generator = generator or TpccGenerator(seed=self.seed)
        metrics = WorkloadMetrics()
        start = time.perf_counter()
        for transaction in generator.transactions(transaction_count):
            metrics.transactions += 1
            metrics.per_profile[transaction.name] = (
                metrics.per_profile.get(transaction.name, 0) + 1
            )
            self._run_transaction(transaction, metrics)
        metrics.elapsed_seconds = time.perf_counter() - start
        return metrics

    def _run_transaction(self, transaction: Transaction, metrics: WorkloadMetrics) -> None:
        for attempt in range(self.retries + 1):
            if self._attempt(transaction, metrics):
                if attempt > 0:
                    metrics.retried_successes += 1
                return
        metrics.exhausted_retries += 1

    def _attempt(self, transaction: Transaction, metrics: WorkloadMetrics) -> bool:
        in_transaction = False
        for statement in transaction.statements:
            upper = statement.strip().upper()
            try:
                self.endpoint.execute(statement)
                metrics.statements += 1
                if upper == "BEGIN":
                    in_transaction = True
                elif upper in ("COMMIT", "ROLLBACK"):
                    in_transaction = False
            except AdjudicationFailure:
                metrics.detected_disagreements += 1
                self._abort(metrics, in_transaction)
                return False
            except NoReplicasAvailable:
                metrics.outages += 1
                self._abort(metrics, in_transaction)
                return False
            except EngineCrash:
                metrics.crashes += 1
                self._abort(metrics, in_transaction)
                return False
            except SqlError:
                metrics.sql_errors += 1
                self._abort(metrics, in_transaction)
                return False
        return True

    def _abort(self, metrics: WorkloadMetrics, in_transaction: bool) -> None:
        metrics.aborted_transactions += 1
        if in_transaction:
            try:
                self.endpoint.execute("ROLLBACK")
            except ReproError:
                pass
