"""Workload execution against any SQL endpoint (single server or
diverse middleware) with dependability and throughput metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol

from repro.errors import (
    AdjudicationFailure,
    EngineCrash,
    NetworkError,
    NoReplicasAvailable,
    ReproError,
    SqlError,
    StatementTimeout,
)
from repro.workload.generator import TpccGenerator, Transaction, TransactionMix
from repro.workload.schema import SCHEMA_STATEMENTS, populate_statements


class SqlEndpoint(Protocol):
    """Anything accepting SQL: ServerProduct, DiverseServer, Connection.

    Endpoints additionally offering ``prepare(sql)`` (ServerProduct and
    DiverseServer both do) can be driven in prepared mode
    (``WorkloadRunner(use_prepared=True)``), which binds each
    transaction's parameters into statement templates prepared once.
    """

    def execute(self, sql: str): ...


@dataclass
class WorkloadMetrics:
    """Outcome of one workload run."""

    transactions: int = 0
    statements: int = 0
    sql_errors: int = 0
    detected_disagreements: int = 0
    crashes: int = 0
    outages: int = 0
    #: Distinct transactions that aborted at least once (never exceeds
    #: ``transactions``; a transaction burning N retries counts once).
    aborted_transactions: int = 0
    #: Aborted *attempts*, one per rollback — the per-retry count
    #: ``aborted_transactions`` used to (mis)report.
    aborted_attempts: int = 0
    retried_successes: int = 0
    exhausted_retries: int = 0
    #: Attempts aborted by the deadline: the transaction's virtual-cost
    #: budget ran out, or the endpoint raised ``StatementTimeout``.
    deadline_aborts: int = 0
    #: Statements that observed a timeout (endpoint-raised, or the
    #: statement whose cost exhausted the transaction budget).
    timed_out_statements: int = 0
    #: Failures of the network path when the endpoint is served over a
    #: wire (session lost mid-transaction, retry-unsafe statement after
    #: session expiry, circuit breaker open).  Zero for direct
    #: endpoints.
    network_errors: int = 0
    elapsed_seconds: float = 0.0
    per_profile: dict[str, int] = field(default_factory=dict)

    @property
    def statements_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.statements / self.elapsed_seconds

    @property
    def failure_free(self) -> bool:
        return (
            self.sql_errors == 0
            and self.detected_disagreements == 0
            and self.crashes == 0
            and self.outages == 0
            and self.timed_out_statements == 0
            and self.network_errors == 0
        )

    def merge(self, other: "WorkloadMetrics") -> None:
        """Fold another run's counters into this one (terminal fan-in).

        Counter fields add; ``elapsed_seconds`` takes the maximum, the
        wall-clock view of concurrent terminals."""
        for spec in _METRIC_FIELDS:
            if spec.name == "elapsed_seconds":
                self.elapsed_seconds = max(self.elapsed_seconds, other.elapsed_seconds)
            elif spec.name == "per_profile":
                for name, count in other.per_profile.items():
                    self.per_profile[name] = self.per_profile.get(name, 0) + count
            else:
                setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))


_METRIC_FIELDS = tuple(WorkloadMetrics.__dataclass_fields__.values())


class WorkloadRunner:
    """Drives a TPC-C-like stream through an endpoint.

    ``retries`` enables the classical rollback-and-retry recovery the
    paper contrasts diversity with (Section 2.1): an aborted transaction
    is re-submitted up to that many times.  Retry tolerates *transient*
    failures (Heisenbugs); deterministic Bohrbugs fail every attempt.

    ``transaction_deadline`` is a client-side watchdog: a virtual-cost
    budget per transaction attempt.  An attempt whose statements'
    cumulative cost exceeds it — or that hits a middleware
    ``StatementTimeout`` — is aborted (rolled back) and retried under
    the same ``retries`` policy, with the events counted in
    ``deadline_aborts`` / ``timed_out_statements``.  This is how a
    client notices a *hang* the endpoint cannot mask: the statement
    stream stops making progress within budget.

    ``use_prepared`` drives the endpoint through its ``prepare(sql)``
    API instead of literal SQL: each of the TPC-C statement templates is
    prepared once (parse/translate/analyze amortized across the run) and
    per-transaction values are bound at execute time.  The bound SQL is
    byte-identical to the literal stream, so metrics are comparable
    between the two modes.

    ``mix`` reweights the five TPC-C profiles for every generator this
    runner constructs itself (``run`` without an explicit generator, and
    its terminal stream under :func:`run_interleaved`).
    """

    def __init__(
        self,
        endpoint: SqlEndpoint,
        *,
        seed: int = 0,
        retries: int = 0,
        transaction_deadline: Optional[float] = None,
        use_prepared: bool = False,
        mix: Optional[TransactionMix] = None,
    ) -> None:
        if transaction_deadline is not None and transaction_deadline <= 0:
            raise ValueError("the transaction deadline must be positive")
        if use_prepared and not hasattr(endpoint, "prepare"):
            raise ValueError(
                "use_prepared=True requires an endpoint with a prepare() method"
            )
        self.endpoint = endpoint
        self.seed = seed
        self.retries = retries
        self.transaction_deadline = transaction_deadline
        self.use_prepared = use_prepared
        self.mix = mix
        self._prepared_cache: dict[str, Any] = {}

    def setup(self) -> None:
        """Create and populate the schema."""
        for statement in SCHEMA_STATEMENTS:
            self.endpoint.execute(statement)
        for statement in populate_statements():
            self.endpoint.execute(statement)

    def run(
        self,
        transaction_count: int,
        *,
        generator: Optional[TpccGenerator] = None,
    ) -> WorkloadMetrics:
        """Run ``transaction_count`` transactions, collecting metrics.

        A statement-level disagreement (detection by the middleware) or
        SQL error aborts the enclosing transaction (rollback-and-
        continue, the study's recovery baseline).
        """
        generator = generator or TpccGenerator(seed=self.seed, mix=self.mix)
        metrics = WorkloadMetrics()
        start = time.perf_counter()
        for transaction in generator.transactions(transaction_count):
            metrics.transactions += 1
            metrics.per_profile[transaction.name] = (
                metrics.per_profile.get(transaction.name, 0) + 1
            )
            self._run_transaction(transaction, metrics)
        metrics.elapsed_seconds = time.perf_counter() - start
        return metrics

    def _run_transaction(self, transaction: Transaction, metrics: WorkloadMetrics) -> None:
        aborted = False
        for attempt in range(self.retries + 1):
            if self._attempt(transaction, metrics):
                if attempt > 0:
                    metrics.retried_successes += 1
                return
            if not aborted:
                aborted = True
                metrics.aborted_transactions += 1
        metrics.exhausted_retries += 1

    def _calls(self, transaction: Transaction) -> list[tuple[str, tuple]]:
        if self.use_prepared:
            return transaction.prepared_calls()
        return [(statement, ()) for statement in transaction.statements]

    def _execute_call(self, template: str, params: tuple):
        if not self.use_prepared:
            return self.endpoint.execute(template)
        handle = self._prepared_cache.get(template)
        if handle is None:
            handle = self.endpoint.prepare(template)  # type: ignore[attr-defined]
            self._prepared_cache[template] = handle
        return handle.execute(params)

    def _attempt(self, transaction: Transaction, metrics: WorkloadMetrics) -> bool:
        steps = self._attempt_steps(transaction, metrics)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return bool(stop.value)

    def _attempt_steps(self, transaction: Transaction, metrics: WorkloadMetrics):
        """One transaction attempt as a generator: yields after every
        executed statement (the statement-granularity interleaving
        point); its return value is the attempt's success."""
        in_transaction = False
        budget = self.transaction_deadline
        spent = 0.0
        for statement, params in self._calls(transaction):
            upper = statement.strip().upper()
            try:
                result = self._execute_call(statement, params)
                metrics.statements += 1
                if upper == "BEGIN":
                    in_transaction = True
                elif upper in ("COMMIT", "ROLLBACK"):
                    in_transaction = False
            except StatementTimeout:
                metrics.timed_out_statements += 1
                metrics.deadline_aborts += 1
                self._abort(metrics, in_transaction)
                return False
            except AdjudicationFailure:
                metrics.detected_disagreements += 1
                self._abort(metrics, in_transaction)
                return False
            except NoReplicasAvailable:
                metrics.outages += 1
                self._abort(metrics, in_transaction)
                return False
            except EngineCrash:
                metrics.crashes += 1
                self._abort(metrics, in_transaction)
                return False
            except NetworkError:
                # The serving layer could not deliver an answer with
                # exactly-once certainty (session lost mid-transaction,
                # retry-unsafe statement, circuit open).  The safe
                # client response is the same as any abort: roll back
                # and (optionally) retry the whole transaction.
                metrics.network_errors += 1
                self._abort(metrics, in_transaction)
                return False
            except SqlError:
                metrics.sql_errors += 1
                self._abort(metrics, in_transaction)
                return False
            if budget is not None:
                spent += getattr(result, "virtual_cost", 0.0)
                if spent > budget:
                    metrics.timed_out_statements += 1
                    metrics.deadline_aborts += 1
                    self._abort(metrics, in_transaction)
                    return False
            yield
        return True

    def _terminal_steps(self, transaction: Transaction, metrics: WorkloadMetrics):
        """:meth:`_run_transaction` as a generator (retries included),
        yielding at every statement boundary so terminals can interleave
        mid-transaction."""
        aborted = False
        for attempt in range(self.retries + 1):
            ok = yield from self._attempt_steps(transaction, metrics)
            if ok:
                if attempt > 0:
                    metrics.retried_successes += 1
                return
            if not aborted:
                aborted = True
                metrics.aborted_transactions += 1
        metrics.exhausted_retries += 1

    def _abort(self, metrics: WorkloadMetrics, in_transaction: bool) -> None:
        metrics.aborted_attempts += 1
        if in_transaction:
            try:
                self.endpoint.execute("ROLLBACK")
            except ReproError:
                pass


def run_interleaved(
    runners: list[WorkloadRunner],
    transactions_each: int,
    *,
    granularity: str = "transaction",
) -> WorkloadMetrics:
    """Drive several runners as concurrent terminals round-robin and
    return their merged metrics.

    This is how "multiple clients" looks in a deterministic simulation:
    every terminal with its own generator stream (seeded and mixed from
    its runner), contending for sessions, the parked queue, and
    admission control exactly as concurrent clients would against a
    served endpoint.

    ``granularity`` picks the interleaving point: ``"transaction"``
    rotates terminals between whole transactions (a terminal's BEGIN and
    COMMIT are adjacent in the stream), ``"statement"`` rotates after
    *every statement*, so other terminals' statements land inside an
    open transaction — the schedule shape the conflict analyzer's
    admission certificates adjudicate.
    """
    if granularity not in ("transaction", "statement"):
        raise ValueError(f"unknown interleaving granularity {granularity!r}")
    sessions = [
        (
            runner,
            iter(
                TpccGenerator(
                    seed=runner.seed, mix=runner.mix
                ).transactions(transactions_each)
            ),
            WorkloadMetrics(),
        )
        for runner in runners
    ]
    start = time.perf_counter()
    if granularity == "transaction":
        active = True
        while active:
            active = False
            for runner, stream, metrics in sessions:
                transaction = next(stream, None)
                if transaction is None:
                    continue
                active = True
                metrics.transactions += 1
                metrics.per_profile[transaction.name] = (
                    metrics.per_profile.get(transaction.name, 0) + 1
                )
                runner._run_transaction(transaction, metrics)
    else:
        steps: list[Optional[Any]] = [None] * len(sessions)
        active = True
        while active:
            active = False
            for index, (runner, stream, metrics) in enumerate(sessions):
                gen = steps[index]
                if gen is None:
                    transaction = next(stream, None)
                    if transaction is None:
                        continue
                    metrics.transactions += 1
                    metrics.per_profile[transaction.name] = (
                        metrics.per_profile.get(transaction.name, 0) + 1
                    )
                    gen = runner._terminal_steps(transaction, metrics)
                    steps[index] = gen
                active = True
                try:
                    next(gen)
                except StopIteration:
                    steps[index] = None
    elapsed = time.perf_counter() - start
    merged = WorkloadMetrics()
    for _, _, metrics in sessions:
        metrics.elapsed_seconds = elapsed
        merged.merge(metrics)
    return merged
