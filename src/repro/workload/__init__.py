"""TPC-C-like workload for statistical testing (Section 7 future work).

The paper reports running "a few million queries with various loads
including experiments based on the TPC-C benchmark" against the diverse
middleware.  This package provides the equivalent load: a scaled-down
TPC-C-flavoured schema, deterministic data population, the five
canonical transaction profiles, and a runner that drives any object
with an ``execute(sql)`` method — a single :class:`ServerProduct` or a
:class:`~repro.middleware.server.DiverseServer`.

The SQL stays inside the four dialects' common subset (no outer joins,
CASE, or LIMIT), exactly the restriction Section 2.1 describes for
diverse replication.
"""

from repro.workload.generator import TpccGenerator, TransactionMix
from repro.workload.runner import WorkloadMetrics, WorkloadRunner, run_interleaved
from repro.workload.schema import SCHEMA_STATEMENTS, populate_statements

__all__ = [
    "SCHEMA_STATEMENTS",
    "TpccGenerator",
    "TransactionMix",
    "WorkloadMetrics",
    "WorkloadRunner",
    "populate_statements",
    "run_interleaved",
]
