"""TPC-C-flavoured schema, scaled for in-memory simulation.

Table and column names follow TPC-C's conventions; sizes are scaled
down (one warehouse, a handful of districts/customers/items) because
the study's point is the *failure behaviour* of the code path, not raw
throughput of the toy engine.
"""

from __future__ import annotations

SCHEMA_STATEMENTS: list[str] = [
    "CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_name VARCHAR(10), "
    "w_tax NUMERIC(4,4), w_ytd NUMERIC(12,2))",
    "CREATE TABLE district (d_id INTEGER, d_w_id INTEGER, d_name VARCHAR(10), "
    "d_tax NUMERIC(4,4), d_ytd NUMERIC(12,2), d_next_o_id INTEGER, "
    "PRIMARY KEY (d_id, d_w_id))",
    "CREATE TABLE customer (c_id INTEGER, c_d_id INTEGER, c_w_id INTEGER, "
    "c_last VARCHAR(16), c_credit CHAR(2), c_balance NUMERIC(12,2), "
    "c_ytd_payment NUMERIC(12,2), c_payment_cnt INTEGER, "
    "PRIMARY KEY (c_id, c_d_id, c_w_id))",
    "CREATE TABLE item (i_id INTEGER PRIMARY KEY, i_name VARCHAR(24), "
    "i_price NUMERIC(5,2))",
    "CREATE TABLE stock (s_i_id INTEGER, s_w_id INTEGER, s_quantity INTEGER, "
    "s_ytd INTEGER, s_order_cnt INTEGER, PRIMARY KEY (s_i_id, s_w_id))",
    "CREATE TABLE orders (o_id INTEGER, o_d_id INTEGER, o_w_id INTEGER, "
    "o_c_id INTEGER, o_carrier_id INTEGER, o_ol_cnt INTEGER, "
    "PRIMARY KEY (o_id, o_d_id, o_w_id))",
    "CREATE TABLE order_line (ol_o_id INTEGER, ol_d_id INTEGER, ol_w_id INTEGER, "
    "ol_number INTEGER, ol_i_id INTEGER, ol_quantity INTEGER, "
    "ol_amount NUMERIC(6,2), PRIMARY KEY (ol_o_id, ol_d_id, ol_w_id, ol_number))",
    "CREATE TABLE history (h_c_id INTEGER, h_d_id INTEGER, h_w_id INTEGER, "
    "h_amount NUMERIC(6,2), h_data VARCHAR(24))",
]

#: Scale knobs.
DISTRICTS = 2
CUSTOMERS_PER_DISTRICT = 10
ITEMS = 40
INITIAL_STOCK = 50


def populate_statements() -> list[str]:
    """Deterministic initial population of the scaled schema."""
    statements = [
        "INSERT INTO warehouse (w_id, w_name, w_tax, w_ytd) "
        "VALUES (1, 'W_ONE', 0.0500, 300000.00)",
    ]
    for d_id in range(1, DISTRICTS + 1):
        statements.append(
            "INSERT INTO district (d_id, d_w_id, d_name, d_tax, d_ytd, d_next_o_id) "
            f"VALUES ({d_id}, 1, 'D_{d_id}', 0.0{d_id}00, 30000.00, 1)"
        )
        for c_id in range(1, CUSTOMERS_PER_DISTRICT + 1):
            credit = "GC" if (c_id + d_id) % 5 else "BC"
            statements.append(
                "INSERT INTO customer (c_id, c_d_id, c_w_id, c_last, c_credit, "
                "c_balance, c_ytd_payment, c_payment_cnt) "
                f"VALUES ({c_id}, {d_id}, 1, 'CUST{d_id}_{c_id}', '{credit}', "
                f"-10.00, 10.00, 1)"
            )
    for i_id in range(1, ITEMS + 1):
        price = 1.00 + (i_id % 20) * 2.5
        statements.append(
            "INSERT INTO item (i_id, i_name, i_price) "
            f"VALUES ({i_id}, 'ITEM_{i_id}', {price:.2f})"
        )
        statements.append(
            "INSERT INTO stock (s_i_id, s_w_id, s_quantity, s_ytd, s_order_cnt) "
            f"VALUES ({i_id}, 1, {INITIAL_STOCK}, 0, 0)"
        )
    return statements
