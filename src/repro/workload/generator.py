"""TPC-C-style transaction generation."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workload import schema


@dataclass(frozen=True)
class TransactionMix:
    """Relative weights of the five transaction profiles.

    Defaults follow TPC-C's canonical mix (45/43/4/4/4).
    """

    new_order: float = 45.0
    payment: float = 43.0
    order_status: float = 4.0
    delivery: float = 4.0
    stock_level: float = 4.0

    def choices(self) -> tuple[list[str], list[float]]:
        names = ["new_order", "payment", "order_status", "delivery", "stock_level"]
        weights = [
            self.new_order,
            self.payment,
            self.order_status,
            self.delivery,
            self.stock_level,
        ]
        return names, weights


@dataclass
class Transaction:
    """One generated transaction: a name plus its statement list."""

    name: str
    statements: list[str]
    read_only: bool


class TpccGenerator:
    """Deterministic transaction stream over the scaled TPC-C schema."""

    def __init__(self, *, seed: int = 0, mix: TransactionMix | None = None) -> None:
        self._rng = random.Random(seed)
        self.mix = mix or TransactionMix()
        self._next_order_id = {d: 1 for d in range(1, schema.DISTRICTS + 1)}

    # -- helpers -----------------------------------------------------------

    def _district(self) -> int:
        return self._rng.randint(1, schema.DISTRICTS)

    def _customer(self) -> int:
        return self._rng.randint(1, schema.CUSTOMERS_PER_DISTRICT)

    def _item(self) -> int:
        return self._rng.randint(1, schema.ITEMS)

    # -- transaction profiles -------------------------------------------------

    def new_order(self) -> Transaction:
        d_id = self._district()
        c_id = self._customer()
        o_id = self._next_order_id[d_id]
        self._next_order_id[d_id] += 1
        line_count = self._rng.randint(2, 5)
        statements = [
            "BEGIN",
            f"SELECT c_last, c_credit FROM customer "
            f"WHERE c_id = {c_id} AND c_d_id = {d_id} AND c_w_id = 1",
            f"UPDATE district SET d_next_o_id = d_next_o_id + 1 "
            f"WHERE d_id = {d_id} AND d_w_id = 1",
            f"INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_carrier_id, o_ol_cnt) "
            f"VALUES ({o_id}, {d_id}, 1, {c_id}, NULL, {line_count})",
        ]
        for number in range(1, line_count + 1):
            i_id = self._item()
            quantity = self._rng.randint(1, 5)
            statements.append(
                f"SELECT i_price FROM item WHERE i_id = {i_id}"
            )
            statements.append(
                f"INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, "
                f"ol_i_id, ol_quantity, ol_amount) "
                f"VALUES ({o_id}, {d_id}, 1, {number}, {i_id}, {quantity}, "
                f"{quantity * 2.50:.2f})"
            )
            statements.append(
                f"UPDATE stock SET s_quantity = s_quantity - {quantity}, "
                f"s_ytd = s_ytd + {quantity}, s_order_cnt = s_order_cnt + 1 "
                f"WHERE s_i_id = {i_id} AND s_w_id = 1"
            )
        statements.append("COMMIT")
        return Transaction("new_order", statements, read_only=False)

    def payment(self) -> Transaction:
        d_id = self._district()
        c_id = self._customer()
        amount = round(self._rng.uniform(1.0, 500.0), 2)
        statements = [
            "BEGIN",
            f"UPDATE warehouse SET w_ytd = w_ytd + {amount} WHERE w_id = 1",
            f"UPDATE district SET d_ytd = d_ytd + {amount} "
            f"WHERE d_id = {d_id} AND d_w_id = 1",
            f"UPDATE customer SET c_balance = c_balance - {amount}, "
            f"c_ytd_payment = c_ytd_payment + {amount}, "
            f"c_payment_cnt = c_payment_cnt + 1 "
            f"WHERE c_id = {c_id} AND c_d_id = {d_id} AND c_w_id = 1",
            f"INSERT INTO history (h_c_id, h_d_id, h_w_id, h_amount, h_data) "
            f"VALUES ({c_id}, {d_id}, 1, {amount}, 'PAY_{d_id}_{c_id}')",
            "COMMIT",
        ]
        return Transaction("payment", statements, read_only=False)

    def order_status(self) -> Transaction:
        d_id = self._district()
        c_id = self._customer()
        statements = [
            f"SELECT c_balance, c_last FROM customer "
            f"WHERE c_id = {c_id} AND c_d_id = {d_id} AND c_w_id = 1",
            f"SELECT o_id, o_carrier_id, o_ol_cnt FROM orders "
            f"WHERE o_d_id = {d_id} AND o_w_id = 1 AND o_c_id = {c_id} "
            f"ORDER BY o_id DESC",
            f"SELECT ol_number, ol_i_id, ol_quantity, ol_amount FROM order_line "
            f"WHERE ol_d_id = {d_id} AND ol_w_id = 1 ORDER BY ol_o_id DESC, ol_number",
        ]
        return Transaction("order_status", statements, read_only=True)

    def delivery(self) -> Transaction:
        d_id = self._district()
        carrier = self._rng.randint(1, 10)
        statements = [
            "BEGIN",
            f"UPDATE orders SET o_carrier_id = {carrier} "
            f"WHERE o_d_id = {d_id} AND o_w_id = 1 AND o_carrier_id IS NULL",
            "COMMIT",
        ]
        return Transaction("delivery", statements, read_only=False)

    def stock_level(self) -> Transaction:
        d_id = self._district()
        threshold = self._rng.randint(10, 45)
        statements = [
            f"SELECT COUNT(DISTINCT s_i_id) FROM stock, order_line "
            f"WHERE ol_d_id = {d_id} AND ol_w_id = 1 AND s_i_id = ol_i_id "
            f"AND s_w_id = 1 AND s_quantity < {threshold}",
        ]
        return Transaction("stock_level", statements, read_only=True)

    # -- stream ------------------------------------------------------------------

    def transactions(self, count: int) -> Iterator[Transaction]:
        """Yield ``count`` transactions drawn from the mix."""
        names, weights = self.mix.choices()
        for _ in range(count):
            name = self._rng.choices(names, weights)[0]
            yield getattr(self, name)()
