"""TPC-C-style transaction generation.

Each transaction profile is built from a fixed *template* (SQL with
``?`` placeholders) plus per-transaction parameter tuples.  The
templates are what make prepared execution worthwhile: the five
profiles reuse a handful of distinct statement shapes, so a prepared
endpoint parses/translates/analyzes each shape once and then only
binds values.  The literal ``statements`` list is derived from the
same calls via :func:`repro.sqlengine.params.substitute_params`, so
prepared and literal execution see byte-identical SQL.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Iterator

from repro.sqlengine.params import substitute_params
from repro.workload import schema

#: One prepared-style call: (template with ``?`` placeholders, bound values).
Call = tuple[str, tuple]


@dataclass(frozen=True)
class TransactionMix:
    """Relative weights of the five transaction profiles.

    Defaults follow TPC-C's canonical mix (45/43/4/4/4).
    """

    new_order: float = 45.0
    payment: float = 43.0
    order_status: float = 4.0
    delivery: float = 4.0
    stock_level: float = 4.0

    def choices(self) -> tuple[list[str], list[float]]:
        names = ["new_order", "payment", "order_status", "delivery", "stock_level"]
        weights = [
            self.new_order,
            self.payment,
            self.order_status,
            self.delivery,
            self.stock_level,
        ]
        return names, weights


@dataclass
class Transaction:
    """One generated transaction: a name plus its statement list.

    ``calls`` carries the prepared form — (template, params) pairs whose
    literal substitution reproduces ``statements`` exactly.  It is empty
    for hand-built transactions; :meth:`prepared_calls` falls back to
    the literal statements with no parameters in that case.
    """

    name: str
    statements: list[str]
    read_only: bool
    calls: list[Call] = field(default_factory=list)

    def prepared_calls(self) -> list[Call]:
        if self.calls:
            return self.calls
        return [(statement, ()) for statement in self.statements]


def _build(name: str, calls: list[Call], *, read_only: bool) -> Transaction:
    statements = [
        substitute_params(template, params) if params else template
        for template, params in calls
    ]
    return Transaction(name, statements, read_only, calls=calls)


class TpccGenerator:
    """Deterministic transaction stream over the scaled TPC-C schema."""

    def __init__(self, *, seed: int = 0, mix: TransactionMix | None = None) -> None:
        self._rng = random.Random(seed)
        self.mix = mix or TransactionMix()
        self._next_order_id = {d: 1 for d in range(1, schema.DISTRICTS + 1)}

    # -- helpers -----------------------------------------------------------

    def _district(self) -> int:
        return self._rng.randint(1, schema.DISTRICTS)

    def _customer(self) -> int:
        return self._rng.randint(1, schema.CUSTOMERS_PER_DISTRICT)

    def _item(self) -> int:
        return self._rng.randint(1, schema.ITEMS)

    # -- transaction profiles -------------------------------------------------

    def new_order(self) -> Transaction:
        d_id = self._district()
        c_id = self._customer()
        o_id = self._next_order_id[d_id]
        self._next_order_id[d_id] += 1
        line_count = self._rng.randint(2, 5)
        calls: list[Call] = [
            ("BEGIN", ()),
            (
                "SELECT c_last, c_credit FROM customer "
                "WHERE c_id = ? AND c_d_id = ? AND c_w_id = 1",
                (c_id, d_id),
            ),
            (
                "UPDATE district SET d_next_o_id = d_next_o_id + 1 "
                "WHERE d_id = ? AND d_w_id = 1",
                (d_id,),
            ),
            (
                "INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id, o_carrier_id, "
                "o_ol_cnt) VALUES (?, ?, 1, ?, ?, ?)",
                (o_id, d_id, c_id, None, line_count),
            ),
        ]
        for number in range(1, line_count + 1):
            i_id = self._item()
            quantity = self._rng.randint(1, 5)
            calls.append(("SELECT i_price FROM item WHERE i_id = ?", (i_id,)))
            calls.append(
                (
                    "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, "
                    "ol_i_id, ol_quantity, ol_amount) "
                    "VALUES (?, ?, 1, ?, ?, ?, ?)",
                    (
                        o_id,
                        d_id,
                        number,
                        i_id,
                        quantity,
                        Decimal(f"{quantity * 2.50:.2f}"),
                    ),
                )
            )
            calls.append(
                (
                    "UPDATE stock SET s_quantity = s_quantity - ?, "
                    "s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 "
                    "WHERE s_i_id = ? AND s_w_id = 1",
                    (quantity, quantity, i_id),
                )
            )
        calls.append(("COMMIT", ()))
        return _build("new_order", calls, read_only=False)

    def payment(self) -> Transaction:
        d_id = self._district()
        c_id = self._customer()
        amount = round(self._rng.uniform(1.0, 500.0), 2)
        calls: list[Call] = [
            ("BEGIN", ()),
            ("UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = 1", (amount,)),
            (
                "UPDATE district SET d_ytd = d_ytd + ? "
                "WHERE d_id = ? AND d_w_id = 1",
                (amount, d_id),
            ),
            (
                "UPDATE customer SET c_balance = c_balance - ?, "
                "c_ytd_payment = c_ytd_payment + ?, "
                "c_payment_cnt = c_payment_cnt + 1 "
                "WHERE c_id = ? AND c_d_id = ? AND c_w_id = 1",
                (amount, amount, c_id, d_id),
            ),
            (
                "INSERT INTO history (h_c_id, h_d_id, h_w_id, h_amount, h_data) "
                "VALUES (?, ?, 1, ?, ?)",
                (c_id, d_id, amount, f"PAY_{d_id}_{c_id}"),
            ),
            ("COMMIT", ()),
        ]
        return _build("payment", calls, read_only=False)

    def order_status(self) -> Transaction:
        d_id = self._district()
        c_id = self._customer()
        calls: list[Call] = [
            (
                "SELECT c_balance, c_last FROM customer "
                "WHERE c_id = ? AND c_d_id = ? AND c_w_id = 1",
                (c_id, d_id),
            ),
            (
                "SELECT o_id, o_carrier_id, o_ol_cnt FROM orders "
                "WHERE o_d_id = ? AND o_w_id = 1 AND o_c_id = ? "
                "ORDER BY o_id DESC",
                (d_id, c_id),
            ),
            (
                "SELECT ol_number, ol_i_id, ol_quantity, ol_amount FROM order_line "
                "WHERE ol_d_id = ? AND ol_w_id = 1 ORDER BY ol_o_id DESC, ol_number",
                (d_id,),
            ),
        ]
        return _build("order_status", calls, read_only=True)

    def delivery(self) -> Transaction:
        d_id = self._district()
        carrier = self._rng.randint(1, 10)
        calls: list[Call] = [
            ("BEGIN", ()),
            (
                "UPDATE orders SET o_carrier_id = ? "
                "WHERE o_d_id = ? AND o_w_id = 1 AND o_carrier_id IS NULL",
                (carrier, d_id),
            ),
            ("COMMIT", ()),
        ]
        return _build("delivery", calls, read_only=False)

    def stock_level(self) -> Transaction:
        d_id = self._district()
        threshold = self._rng.randint(10, 45)
        calls: list[Call] = [
            (
                "SELECT COUNT(DISTINCT s_i_id) FROM stock, order_line "
                "WHERE ol_d_id = ? AND ol_w_id = 1 AND s_i_id = ol_i_id "
                "AND s_w_id = 1 AND s_quantity < ?",
                (d_id, threshold),
            ),
        ]
        return _build("stock_level", calls, read_only=True)

    # -- stream ------------------------------------------------------------------

    def transactions(self, count: int) -> Iterator[Transaction]:
        """Yield ``count`` transactions drawn from the mix."""
        names, weights = self.mix.choices()
        for _ in range(count):
            name = self._rng.choices(names, weights)[0]
            yield getattr(self, name)()
