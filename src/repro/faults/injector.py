"""The fault injector: the engine's window into a server's fault catalog."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.faults.effects import BehaviourFlagEffect
from repro.faults.spec import FaultSpec


@dataclass
class FaultActivation:
    """A record of one fault firing (for study verification and stats)."""

    fault_id: str
    statement_kind: str
    sql: str
    phase: str


class FaultInjector:
    """Holds a server's seeded faults and applies them at engine hooks.

    Implements the hook protocol of
    :class:`repro.sqlengine.engine.NullInjector`:
    ``before_statement`` / ``after_statement`` / ``flag``.

    Heisenbugs never activate in normal mode — re-running their bug
    script shows no failure, exactly how the study classified them.
    Under :attr:`stress_mode` (the Section 3.2 "more stressful simulated
    environment") each triggered Heisenbug activates with its
    ``stress_activation`` probability, drawn from a seeded RNG so runs
    are reproducible.
    """

    def __init__(
        self,
        server_name: str,
        faults: Iterable[FaultSpec] = (),
        *,
        seed: int = 0,
        stress_mode: bool = False,
    ) -> None:
        self.server_name = server_name
        self._faults: dict[str, FaultSpec] = {}
        self._rng = random.Random(seed)
        self.stress_mode = stress_mode
        self.activations: list[FaultActivation] = []
        self.activation_counts: dict[str, int] = {}
        for fault in faults:
            self.add(fault)

    # -- catalog management --------------------------------------------------

    def add(self, fault: FaultSpec) -> None:
        if fault.fault_id in self._faults:
            raise ValueError(f"duplicate fault id {fault.fault_id!r}")
        self._faults[fault.fault_id] = fault

    def remove(self, fault_id: str) -> None:
        self._faults.pop(fault_id, None)

    def get(self, fault_id: str) -> FaultSpec:
        return self._faults[fault_id]

    def faults(self) -> list[FaultSpec]:
        return list(self._faults.values())

    def enable(self, fault_id: str) -> None:
        self._faults[fault_id].enabled = True

    def disable(self, fault_id: str) -> None:
        self._faults[fault_id].enabled = False

    def disable_all(self) -> None:
        for fault in self._faults.values():
            fault.enabled = False

    def enable_all(self) -> None:
        for fault in self._faults.values():
            fault.enabled = True

    def reset_history(self) -> None:
        self.activations.clear()
        self.activation_counts.clear()

    # -- engine hook protocol ---------------------------------------------------

    def flag(self, name: str, ctx: Optional[object] = None) -> bool:
        """True when an enabled behaviour-flag fault exposes ``name``.

        The fault's trigger is consulted when a context is available, so
        flag faults can be scoped (e.g. only for statements touching a
        bug script's tables).
        """
        for fault in self._faults.values():
            if not fault.enabled:
                continue
            effect = fault.effect
            if not isinstance(effect, BehaviourFlagEffect) or effect.flag != name:
                continue
            if ctx is not None and not fault.trigger.matches(ctx):
                continue
            if not self._activates(fault):
                continue
            self._record(fault, ctx, phase="flag")
            return True
        return False

    def before_statement(self, ctx) -> None:
        for fault in self._active_faults(ctx, phase="before"):
            self._record(fault, ctx, phase="before")
            fault.effect.apply_before(ctx)

    def after_statement(self, ctx, result):
        for fault in self._active_faults(ctx, phase="after"):
            self._record(fault, ctx, phase="after")
            result = fault.effect.apply_after(ctx, result)
        return result

    def mutate_storage(self, ctx, payload):
        """Run a WAL record through every matching storage-phase fault.

        Called by the durability layer when a committed write is
        appended to this server's WAL; ``ctx`` describes the logged
        statement.  Returns ``(data, fired)`` where ``data`` is the
        (possibly mutated) record bytes — ``None`` when a lost-flush
        effect dropped it — and ``fired`` lists the fault specs that
        activated, for the middleware's failure-mode counters.
        """
        fired = []
        data = payload
        for fault in self._active_faults(ctx, phase="storage"):
            self._record(fault, ctx, phase="storage")
            fired.append(fault)
            data = fault.effect.apply_storage(ctx, data)
            if data is None:
                break
        return data, fired

    def mutate_network(self, ctx, delivery):
        """Run one frame delivery through every matching network-phase
        fault.

        Called by the simulated transport for each frame it moves;
        ``ctx`` is a :class:`repro.net.transport.NetworkContext`
        describing the frame.  Returns ``(deliveries, fired)`` where
        ``deliveries`` is the rewritten delivery list (possibly empty —
        a dropped frame — or several — a duplicated one) and ``fired``
        lists the fault specs that activated, for transport telemetry.
        """
        deliveries = [delivery]
        fired = []
        for fault in self._active_faults(ctx, phase="network"):
            self._record(fault, ctx, phase="network")
            fired.append(fault)
            rewritten = []
            for entry in deliveries:
                rewritten.extend(fault.effect.apply_network(ctx, entry))
            deliveries = rewritten
            if not deliveries:
                break
        return deliveries, fired

    # -- internals ------------------------------------------------------------

    def _active_faults(self, ctx, phase: str):
        for fault in self._faults.values():
            if not fault.enabled or fault.effect.phase != phase:
                continue
            if not fault.trigger.matches(ctx):
                continue
            if not self._activates(fault):
                continue
            yield fault

    def _activates(self, fault: FaultSpec) -> bool:
        if not fault.heisenbug:
            return True
        if not self.stress_mode:
            return False
        return self._rng.random() < fault.stress_activation

    _MAX_ACTIVATION_LOG = 10_000

    def _record(self, fault: FaultSpec, ctx, phase: str) -> None:
        self.activation_counts[fault.fault_id] = (
            self.activation_counts.get(fault.fault_id, 0) + 1
        )
        if len(self.activations) < self._MAX_ACTIVATION_LOG:
            self.activations.append(
                FaultActivation(
                    fault_id=fault.fault_id,
                    statement_kind=getattr(getattr(ctx, "traits", None), "kind", "?"),
                    sql=getattr(ctx, "sql", ""),
                    phase=phase,
                )
            )

    @property
    def fired_fault_ids(self) -> set[str]:
        return set(self.activation_counts)
