"""Fault specifications and the failure taxonomy of the study."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.effects import Effect
    from repro.faults.triggers import Trigger


class FailureKind(Enum):
    """The paper's failure-type classification (Section 4.1)."""

    ENGINE_CRASH = "engine_crash"
    INCORRECT_RESULT = "incorrect_result"
    PERFORMANCE = "performance"
    OTHER = "other"
    #: Durability extension (not in the paper's study data): the fault
    #: corrupts the write path to stable storage — torn writes, lost
    #: flushes, bit rot — and manifests only at restart recovery.
    STORAGE = "storage"
    #: Concurrency extension (not in the paper's study data): broken
    #: transaction isolation — lost updates, dirty reads, phantoms —
    #: the anomaly families the conflict analyzer's serializability
    #: certificates must keep out of certified-commuting schedules.
    CONCURRENCY = "concurrency"


class Detectability(Enum):
    """The paper's detectability classification (Section 4.1).

    Self-evident: crashes, signalled exceptions, performance failures.
    Non-self-evident: silently wrong output, no exception.
    """

    SELF_EVIDENT = "self_evident"
    NON_SELF_EVIDENT = "non_self_evident"


@dataclass
class FaultSpec:
    """One seeded fault in one server product.

    Parameters
    ----------
    fault_id:
        Unique identifier, conventionally ``<server>-<bug id>`` for
    faults tied to a corpus bug report (e.g. ``IB-223512``).
    description:
        One-line account of the misbehaviour.
    trigger:
        Predicate over the execution context deciding when the fault
        is exercised.
    effect:
        What the fault does when exercised.
    kind / detectability:
        How the resulting failure classifies in the study taxonomy.
    heisenbug:
        A Heisenbug is *not* reproducible by simply re-running its bug
        script: it only activates in stress mode (multiple clients,
        large transaction counts — the paper's Section 3.2 plan), and
        then only with probability ``stress_activation``.
    """

    fault_id: str
    description: str
    trigger: "Trigger"
    effect: "Effect"
    kind: FailureKind = FailureKind.INCORRECT_RESULT
    detectability: Detectability = Detectability.NON_SELF_EVIDENT
    heisenbug: bool = False
    stress_activation: float = 0.35
    enabled: bool = True
    #: Free-form origin notes (which paper bug report this models, etc.)
    notes: Optional[str] = None
    tags: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not 0.0 <= self.stress_activation <= 1.0:
            raise ValueError("stress_activation must be a probability")
