"""Trigger predicates: when does a fault fire?

A trigger inspects the :class:`~repro.sqlengine.engine.ExecutionContext`
of the statement being executed.  Triggers compose with ``&`` and ``|``.

Triggers only read the :class:`TriggerContext` surface, so the static
reachability analysis (:mod:`repro.analysis.reachability`) can evaluate
them against synthetic contexts without running any engine.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.sqlengine.analysis import StatementTraits


@runtime_checkable
class TriggerContext(Protocol):
    """What a trigger may inspect about the statement in flight.

    Satisfied by the live :class:`~repro.sqlengine.engine.ExecutionContext`
    and by :class:`repro.analysis.reachability.StaticContext` — keeping
    this surface narrow is what makes faults statically auditable.
    """

    sql: str
    traits: StatementTraits
    engine: Any

    @property
    def all_tags(self) -> set[str]: ...


class Trigger:
    """Base trigger; subclasses implement :meth:`matches`."""

    def matches(self, ctx: TriggerContext) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __and__(self, other: "Trigger") -> "Trigger":
        return AllOf((self, other))

    def __or__(self, other: "Trigger") -> "Trigger":
        return AnyOf((self, other))


class AlwaysTrigger(Trigger):
    """Fires on every statement (used for behaviour-flag faults)."""

    def matches(self, ctx: TriggerContext) -> bool:
        return True


class NeverTrigger(Trigger):
    """Never fires (placeholder for disabled behaviour)."""

    def matches(self, ctx: TriggerContext) -> bool:
        return False


class TagTrigger(Trigger):
    """Fires when the statement's trait tags match.

    ``required`` tags must all be present; if ``any_of`` is non-empty at
    least one of those must be present too; ``forbidden`` tags must all
    be absent.  Dynamic tags (``view.distinct_used`` ...) participate.
    """

    def __init__(
        self,
        required: Iterable[str] = (),
        any_of: Iterable[str] = (),
        forbidden: Iterable[str] = (),
        kind: str | None = None,
    ) -> None:
        self.required = frozenset(required)
        self.any_of = frozenset(any_of)
        self.forbidden = frozenset(forbidden)
        self.kind = kind

    def matches(self, ctx: TriggerContext) -> bool:
        tags = ctx.all_tags
        if self.kind is not None and ctx.traits.kind != self.kind:
            return False
        if not self.required <= tags:
            return False
        if self.any_of and not (self.any_of & tags):
            return False
        if self.forbidden & tags:
            return False
        return True


class RelationTrigger(Trigger):
    """Fires when the statement references one of the given relations.

    Bug scripts in the generated corpus use per-bug table names
    (``t<bug id>_...``), so a relation trigger scopes a generic fault to
    exactly its bug script — the "failure region" of that bug.
    """

    def __init__(self, names: Iterable[str], kind: str | None = None) -> None:
        self.names = frozenset(name.lower() for name in names)
        self.kind = kind

    def matches(self, ctx: TriggerContext) -> bool:
        if self.kind is not None and ctx.traits.kind != self.kind:
            return False
        return bool(self.names & ctx.traits.relations)


class RelationPrefixTrigger(Trigger):
    """Fires when any referenced relation name starts with a prefix."""

    def __init__(self, prefix: str, kind: str | None = None) -> None:
        self.prefix = prefix.lower()
        self.kind = kind

    def matches(self, ctx: TriggerContext) -> bool:
        if self.kind is not None and ctx.traits.kind != self.kind:
            return False
        return any(name.startswith(self.prefix) for name in ctx.traits.relations)


class SqlPatternTrigger(Trigger):
    """Fires when the raw SQL text matches a regular expression."""

    def __init__(self, pattern: str) -> None:
        self.regex = re.compile(pattern, re.IGNORECASE | re.DOTALL)

    def matches(self, ctx: TriggerContext) -> bool:
        return bool(self.regex.search(ctx.sql))


class RecoveryTrigger(Trigger):
    """Fires only while the engine is replaying the write log during
    replica recovery (``engine.phase == "recover"``).

    Models faults that bite the recovery path itself — a replica that
    crashes again mid-replay — which is what the supervisor's backoff
    and circuit breaker exist to contain.  Compose with other triggers
    to scope the relapse to particular statements:
    ``RecoveryTrigger() & SqlPatternTrigger(r"INSERT INTO orders")``.
    """

    def __init__(self, phase: str = "recover") -> None:
        self.phase = phase

    def matches(self, ctx: TriggerContext) -> bool:
        return getattr(ctx.engine, "phase", "serve") == self.phase


class AllOf(Trigger):
    """Conjunction of triggers."""

    def __init__(self, triggers: Iterable[Trigger]) -> None:
        self.triggers = tuple(triggers)

    def matches(self, ctx: TriggerContext) -> bool:
        return all(trigger.matches(ctx) for trigger in self.triggers)


class AnyOf(Trigger):
    """Disjunction of triggers."""

    def __init__(self, triggers: Iterable[Trigger]) -> None:
        self.triggers = tuple(triggers)

    def matches(self, ctx: TriggerContext) -> bool:
        return any(trigger.matches(ctx) for trigger in self.triggers)
