"""Fault effects: what a fault does when it fires.

Effects run at one of four hook points:

* ``before`` — may raise (crashes, spurious errors) before the engine
  touches the statement;
* ``after`` — may distort the already-computed result (wrong rows,
  inflated cost, skewed metadata);
* ``flag`` — never fires on its own; instead the engine consults the
  flag by name at a semantic decision point (e.g. "do I validate
  DEFAULT types?"), which is how deep semantic bugs are modelled
  without forking the engine;
* ``storage`` — mutates the encoded write-ahead-log record of a
  committed write on its way to the durability medium (torn writes,
  lost flushes, bit rot), so the restart-recovery path is itself
  under fault injection.
* ``network`` — mutates the delivery of a wire-protocol frame between
  a client and the served middleware (drop, delay, duplicate, reorder,
  corrupt, connection reset, partition), so the serving path is under
  fault injection too.  This failure class sits *outside* the paper's
  study data: the servers may all be healthy and the client still sees
  timeouts and resets, which is exactly why retried statements must be
  provably safe to re-execute (or deduplicated by sequence number).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional

from repro.errors import EngineCrash, SqlError


@dataclass(frozen=True)
class NetDelivery:
    """One (possibly mutated) delivery of an encoded network frame.

    ``delay`` is extra virtual-clock units before the frame arrives;
    ``reset`` marks a connection-level failure: the frame is not
    delivered and both endpoints observe the connection as broken.
    """

    payload: bytes
    delay: float = 0.0
    reset: bool = False


class Effect:
    """Base effect."""

    phase = "after"  # 'before' | 'after' | 'flag' | 'storage' | 'network'

    def apply_before(self, ctx) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply_after(self, ctx, result):  # pragma: no cover - abstract
        raise NotImplementedError

    def apply_storage(self, ctx, payload: bytes) -> Optional[bytes]:
        """Mutate an encoded WAL record before it hits the medium;
        ``None`` means the record is dropped entirely (lost flush)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        """Rewrite one frame delivery into zero or more deliveries."""
        raise NotImplementedError  # pragma: no cover - abstract


class CrashEffect(Effect):
    """Halt the engine: the paper's *engine crash* failure class."""

    phase = "before"

    def __init__(self, detail: str = "assertion failure in query processor") -> None:
        self.detail = detail

    def apply_before(self, ctx) -> None:
        raise EngineCrash(ctx.engine.name, self.detail)


class ErrorEffect(Effect):
    """Raise a spurious SQL error: a *self-evident* failure.

    Models bugs where the server rejects valid SQL (e.g. PostgreSQL
    report 43's parse error on a nested UNION subquery).
    """

    phase = "before"

    def __init__(self, message: str, code: str = "spurious") -> None:
        self.message = message
        self.code = code

    def apply_before(self, ctx) -> None:
        raise SqlError(self.message, code=self.code)


class LateErrorEffect(Effect):
    """Raise an SQL error *after* execution (partial work then error)."""

    phase = "after"

    def __init__(self, message: str, code: str = "spurious") -> None:
        self.message = message
        self.code = code

    def apply_after(self, ctx, result):
        raise SqlError(self.message, code=self.code)


class RowDropEffect(Effect):
    """Silently drop result rows: a non-self-evident incorrect result."""

    def __init__(self, keep_one_in: int = 2, offset: int = 0) -> None:
        if keep_one_in < 1:
            raise ValueError("keep_one_in must be >= 1")
        self.keep_one_in = keep_one_in
        self.offset = offset

    def apply_after(self, ctx, result):
        if result.kind != "select" or not result.rows:
            return result
        kept = [
            row
            for index, row in enumerate(result.rows)
            if (index + self.offset) % self.keep_one_in != 0
        ]
        if not kept and result.rows:
            kept = result.rows[1:] or result.rows[:-1]
        result.rows = kept
        result.rowcount = len(kept)
        return result


class RowDuplicateEffect(Effect):
    """Duplicate result rows (e.g. botched DISTINCT elimination)."""

    def __init__(self, every: int = 1) -> None:
        self.every = max(every, 1)

    def apply_after(self, ctx, result):
        if result.kind != "select" or not result.rows:
            return result
        rows: list[tuple] = []
        for index, row in enumerate(result.rows):
            rows.append(row)
            if index % self.every == 0:
                rows.append(row)
        result.rows = rows
        result.rowcount = len(rows)
        return result


class ValueSkewEffect(Effect):
    """Distort numeric output values: arithmetic-precision bug family.

    ``delta`` is added to every numeric value in the selected column
    (or all numeric values when ``column`` is None).  A tiny delta
    models precision loss; a large one models outright miscomputation.
    """

    def __init__(self, delta: float = 1e-7, column: Optional[int] = None) -> None:
        self.delta = delta
        self.column = column

    def apply_after(self, ctx, result):
        if result.kind != "select":
            return result

        def skew(value: Any) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                if value is not None and type(value).__name__ == "Decimal":
                    return float(value) + self.delta
                return value
            return value + self.delta if isinstance(value, float) else float(value) + self.delta

        rows: list[tuple] = []
        for row in result.rows:
            if self.column is None:
                rows.append(tuple(skew(value) for value in row))
            else:
                items = list(row)
                if 0 <= self.column < len(items):
                    items[self.column] = skew(items[self.column])
                rows.append(tuple(items))
        result.rows = rows
        return result


class ConcurrencyAnomalyEffect(Effect):
    """Base class for the classic isolation-anomaly result mutations.

    The simulated engines execute a single statement stream, so a real
    data race cannot occur inside one replica; these effects model a
    *product* whose broken isolation lets one session observe another's
    in-flight state — a lost increment, an uncommitted value, a phantom
    row.  They distort read results on the faulty replica only, which
    is exactly the shape the adjudicator must out-vote and the shape
    the conflict analyzer's COMMUTES certificates must never let
    escape: a certified-commuting read touches no cell of the open
    transaction's write footprint, so no anomaly of this family can
    change its answer.
    """

    #: Which anomaly family the subclass models (AnomalyKind value).
    anomaly = ""

    @staticmethod
    def _skew_rows(result, delta: float, column: Optional[int]):
        def skew(value: Any) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                if value is not None and type(value).__name__ == "Decimal":
                    return float(value) + delta
                return value
            return value + delta if isinstance(value, float) else float(value) + delta

        rows: list[tuple] = []
        for row in result.rows:
            if column is None:
                rows.append(tuple(skew(value) for value in row))
            else:
                items = list(row)
                if 0 <= column < len(items):
                    items[column] = skew(items[column])
                rows.append(tuple(items))
        result.rows = rows
        return result


class LostUpdateEffect(ConcurrencyAnomalyEffect):
    """A committed increment vanished: reads return pre-update values."""

    anomaly = "lost_update"

    def __init__(self, delta: float = 1.0, column: Optional[int] = None) -> None:
        self.delta = delta
        self.column = column

    def apply_after(self, ctx, result):
        if result.kind != "select" or not result.rows:
            return result
        return self._skew_rows(result, -self.delta, self.column)


class DirtyReadEffect(ConcurrencyAnomalyEffect):
    """Reads observe another transaction's uncommitted write."""

    anomaly = "dirty_read"

    def __init__(self, delta: float = 1.0, column: Optional[int] = None) -> None:
        self.delta = delta
        self.column = column

    def apply_after(self, ctx, result):
        if result.kind != "select" or not result.rows:
            return result
        return self._skew_rows(result, self.delta, self.column)


class PhantomRowEffect(ConcurrencyAnomalyEffect):
    """A predicate scan returns a row no committed state contains."""

    anomaly = "phantom"

    def __init__(self, key_offset: int = 100000) -> None:
        self.key_offset = key_offset

    def apply_after(self, ctx, result):
        if result.kind != "select" or not result.rows:
            return result
        phantom = list(result.rows[-1])
        for index, value in enumerate(phantom):
            if isinstance(value, int) and not isinstance(value, bool):
                phantom[index] = value + self.key_offset
                break
        result.rows = list(result.rows) + [tuple(phantom)]
        result.rowcount = len(result.rows)
        return result


class PerformanceEffect(Effect):
    """Inflate the virtual execution cost: a *performance* failure.

    The study classifier compares ``virtual_cost`` against a threshold,
    so no wall-clock sleeping is needed.
    """

    def __init__(self, factor: float = 1000.0) -> None:
        if factor <= 1.0:
            raise ValueError("a performance fault must inflate cost")
        self.factor = factor

    def apply_after(self, ctx, result):
        result.virtual_cost *= self.factor
        return result


class HangEffect(Effect):
    """The replica never returns: the *hang* flavour of a performance
    failure (the paper's self-evident "server too slow to respond"
    class taken to its limit).

    In the virtual-cost world a hang is an answer of infinite cost: no
    finite statement deadline is ever met, so the middleware's watchdog
    is the only component that can represent it.  Without a deadline the
    answer still exists (the simulation stays synchronous) but any
    cost-based check sees an unbounded straggler.
    """

    def __init__(self, detail: str = "query never returns") -> None:
        self.detail = detail

    def apply_after(self, ctx, result):
        result.virtual_cost = float("inf")
        return result


class StallEffect(Effect):
    """Return only after a long virtual-cost delay: a *stall*.

    Unlike :class:`PerformanceEffect` (multiplicative slow-down), a
    stall adds a fixed ``delay`` of virtual cost — the replica blocks on
    something (lock queue, I/O storm) and then answers correctly.  With
    ``once=True`` the stall is transient: it fires on the first
    triggered statement only, so a deadline-driven statement retry can
    save the replica (the Heisenbug analogue for performance faults).
    """

    def __init__(self, delay: float = 1000.0, *, once: bool = False) -> None:
        if delay <= 0:
            raise ValueError("a stall must add positive virtual cost")
        self.delay = delay
        self.once = once
        self._fired = False

    def apply_after(self, ctx, result):
        if self.once and self._fired:
            return result
        self._fired = True
        result.virtual_cost += self.delay
        return result


class ScanOrderEffect(Effect):
    """Return the correct rows in a different physical order.

    Not a bug at all when the query has no ORDER BY — SQL leaves the
    order unspecified, and two correct products routinely disagree on it
    (different access paths, different optimisers).  This effect models
    that benign divergence so the middleware can be tested against it:
    ordered comparison would flag a false disagreement, multiset voting
    (driven by the static analyzer's UNORDERED verdict) must not.  On a
    query that *does* carry a total ORDER BY the same effect becomes a
    genuine ordering bug, which ordered comparison must still catch.
    """

    def __init__(self, mode: str = "reverse") -> None:
        if mode not in ("reverse", "rotate"):
            raise ValueError("mode must be 'reverse' or 'rotate'")
        self.mode = mode

    def apply_after(self, ctx, result):
        if result.kind != "select" or len(result.rows) < 2:
            return result
        if self.mode == "reverse":
            result.rows = list(reversed(result.rows))
        else:
            result.rows = list(result.rows[1:]) + [result.rows[0]]
        return result


class RowcountSkewEffect(Effect):
    """Report a wrong rowcount while returning correct rows.

    Models the paper's "Other" failure class: anomalies that are not
    wrong data, crashes, or slowness (e.g. bogus status information).
    """

    def __init__(self, delta: int = 1) -> None:
        self.delta = delta

    def apply_after(self, ctx, result):
        result.rowcount = max(result.rowcount + self.delta, 0)
        return result


class MutateColumnNamesEffect(Effect):
    """Blank or mangle result column names (e.g. Interbase 222476)."""

    def __init__(self, rename: Callable[[str], str] = lambda name: "") -> None:
        self.rename = rename

    def apply_after(self, ctx, result):
        if result.kind == "select":
            result.columns = [self.rename(name) for name in result.columns]
        return result


class DialectRenderEffect(Effect):
    """Render SELECT values the way a dialect legitimately would.

    Not a bug: models the product-specific *representations* the paper's
    middleware had to normalize away — CHAR blank-padding, DATE values
    carrying a midnight time component, exact numerics rendered at
    canonical scale.  Seeding it on the replicas whose
    :data:`~repro.analysis.divergence.PROFILES` entry carries the
    behaviour lets benchmarks measure comparator false alarms: with the
    divergence analyzer on, a raw-mode comparator must label the
    resulting disagreements ``benign_dialect``, never
    ``fault_indicating``.
    """

    def __init__(self, mode: str, width: int = 8) -> None:
        if mode not in ("pad", "rstrip", "strip-scale", "datetime"):
            raise ValueError(
                "mode must be 'pad', 'rstrip', 'strip-scale', or 'datetime'"
            )
        self.mode = mode
        self.width = width

    def _render(self, value):
        import datetime
        from decimal import Decimal

        if self.mode == "pad" and isinstance(value, str):
            return value.rstrip().ljust(self.width)
        if self.mode == "rstrip" and isinstance(value, str):
            return value.rstrip()
        if self.mode == "strip-scale" and isinstance(value, Decimal):
            normalized = value.normalize()
            # Decimal('1E+1') style output would be a different value
            # *rendering* bug; keep plain notation.
            return normalized.quantize(1) if normalized == normalized.to_integral_value() else normalized
        if (
            self.mode == "datetime"
            and isinstance(value, datetime.date)
            and not isinstance(value, datetime.datetime)
        ):
            return datetime.datetime(value.year, value.month, value.day)
        return value

    def apply_after(self, ctx, result):
        if result.kind == "select":
            result.rows = [
                tuple(self._render(value) for value in row) for row in result.rows
            ]
        return result


class StorageEffect(Effect):
    """Base for effects that corrupt the durability write path.

    Storage effects fire when the middleware appends a committed write
    to a replica's WAL: the trigger is matched against the statement
    being logged, and :meth:`apply_storage` receives the already
    encoded record bytes (length + CRC32 + payload).  They model the
    classic disk failure modes — and because the WAL scan distrusts
    everything past the first invalid record, each one exercises a
    distinct branch of the recovery contract.
    """

    phase = "storage"

    def apply_before(self, ctx) -> None:  # pragma: no cover - never called
        return None

    def apply_after(self, ctx, result):  # pragma: no cover - never called
        return result


class TornWriteEffect(StorageEffect):
    """Persist only a prefix of the record: a write torn by power loss.

    ``keep_fraction`` of the encoded bytes (at least one, never all)
    survive.  Recovery detects the truncated header/payload and
    discards the record and everything after it.
    """

    def __init__(self, keep_fraction: float = 0.5) -> None:
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be within [0, 1]")
        self.keep_fraction = keep_fraction

    def apply_storage(self, ctx, payload: bytes) -> Optional[bytes]:
        keep = int(len(payload) * self.keep_fraction)
        keep = max(1, min(keep, len(payload) - 1))
        return payload[:keep]


class LostFlushEffect(StorageEffect):
    """Drop the record entirely: an acknowledged-but-unflushed write.

    The LSN still advances (the statement committed), so the log is
    left with a sequence gap; recovery stops redo at the gap rather
    than replaying a history with a hole in it.
    """

    def apply_storage(self, ctx, payload: bytes) -> Optional[bytes]:
        return None


class ChecksumCorruptionEffect(StorageEffect):
    """Flip bits inside the payload after the CRC was computed: bit
    rot / a misdirected write.  The record length still parses, but
    the checksum mismatch is detected and the record discarded.
    """

    #: First payload byte follows the 8-byte (length, CRC) header.
    _HEADER_SIZE = 8

    def __init__(self, offset: int = 0, xor: int = 0x40) -> None:
        if xor & 0xFF == 0:
            raise ValueError("xor mask must change at least one bit")
        self.offset = offset
        self.xor = xor & 0xFF

    def apply_storage(self, ctx, payload: bytes) -> Optional[bytes]:
        if len(payload) <= self._HEADER_SIZE:
            return payload  # pragma: no cover - records always carry a payload
        body = self._HEADER_SIZE + self.offset % (len(payload) - self._HEADER_SIZE)
        mutated = bytearray(payload)
        mutated[body] ^= self.xor
        return bytes(mutated)


class NetworkEffect(Effect):
    """Base for effects that disturb wire-protocol frame delivery.

    Network effects fire when the simulated transport moves an encoded
    frame between a client and the served middleware: the trigger is
    matched against a :class:`repro.net.transport.NetworkContext`
    describing the frame (direction, message type, carried SQL), and
    :meth:`apply_network` rewrites the delivery.  One frame may become
    zero deliveries (drop), one delayed delivery, several (duplicate),
    or a connection reset.
    """

    phase = "network"

    def apply_before(self, ctx) -> None:  # pragma: no cover - never called
        return None

    def apply_after(self, ctx, result):  # pragma: no cover - never called
        return result


class DropFrameEffect(NetworkEffect):
    """The frame vanishes: a lost datagram / silently dropped packet.

    With ``count`` set, only the first ``count`` triggered frames are
    dropped (a transient loss burst); ``None`` drops every one.
    """

    def __init__(self, count: Optional[int] = None) -> None:
        if count is not None and count < 1:
            raise ValueError("count must be >= 1 (or None for always)")
        self.count = count
        self._dropped = 0

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        if self.count is not None and self._dropped >= self.count:
            return [delivery]
        self._dropped += 1
        return []


class DelayFrameEffect(NetworkEffect):
    """Deliver the frame late: queueing delay / a slow path.

    Adds ``delay`` virtual-clock units to the delivery time.  A delay
    beyond the client's request timeout is indistinguishable from loss
    on the send side — which is why the session layer must deduplicate
    the retry that follows."""

    def __init__(self, delay: float = 8.0) -> None:
        if delay <= 0:
            raise ValueError("a delay must add positive latency")
        self.delay = delay

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        return [replace(delivery, delay=delivery.delay + self.delay)]


class DuplicateFrameEffect(NetworkEffect):
    """Deliver the frame twice: retransmission without suppression.

    The copy arrives ``gap`` units after the original.  A duplicated
    *request* must not double-apply a write — the server's per-session
    sequence dedupe is the defence this effect exists to test."""

    def __init__(self, gap: float = 1.0) -> None:
        if gap < 0:
            raise ValueError("the duplicate gap must be non-negative")
        self.gap = gap

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        return [delivery, replace(delivery, delay=delivery.delay + self.gap)]


class ReorderFrameEffect(NetworkEffect):
    """Hold the frame back so frames sent after it overtake it.

    Mechanically a delay of ``hold`` units, but scoped (by its trigger)
    to individual frames, which is what produces reordering relative to
    unmatched traffic on the same connection."""

    def __init__(self, hold: float = 3.0) -> None:
        if hold <= 0:
            raise ValueError("the hold-back must be positive")
        self.hold = hold

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        return [replace(delivery, delay=delivery.delay + self.hold)]


class CorruptFrameEffect(NetworkEffect):
    """Flip bits inside the encoded frame: line noise / a bad NIC.

    The frame header still parses but the CRC check fails on receipt;
    the receiver must treat the connection as broken (it can no longer
    trust the stream's framing) — the wire analogue of
    :class:`ChecksumCorruptionEffect`."""

    def __init__(
        self, offset: int = 0, xor: int = 0x40, count: Optional[int] = None
    ) -> None:
        if xor & 0xFF == 0:
            raise ValueError("xor mask must change at least one bit")
        self.offset = offset
        self.xor = xor & 0xFF
        self.count = count
        self._corrupted = 0

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        if self.count is not None and self._corrupted >= self.count:
            return [delivery]
        self._corrupted += 1
        payload = delivery.payload
        if len(payload) <= 8:  # pragma: no cover - frames always carry a body
            return [delivery]
        body = 8 + self.offset % (len(payload) - 8)
        mutated = bytearray(payload)
        mutated[body] ^= self.xor
        return [replace(delivery, payload=bytes(mutated))]


class ConnectionResetEffect(NetworkEffect):
    """Tear the connection down instead of delivering the frame.

    Both endpoints observe the reset; in-flight frames on the
    connection are lost.  Sessions survive resets (they live at the
    session layer, not the connection layer) until their idle deadline
    expires, so a reconnecting client can resume and deduplicate.

    With ``count`` set, only the first ``count`` triggered frames reset
    (a flaky path that then heals); ``None`` resets every one.
    """

    def __init__(self, count: Optional[int] = None) -> None:
        if count is not None and count < 1:
            raise ValueError("count must be >= 1 (or None for always)")
        self.count = count
        self._fired = 0

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        if self.count is not None and self._fired >= self.count:
            return [delivery]
        self._fired += 1
        return [replace(delivery, reset=True)]


class PartitionEffect(NetworkEffect):
    """Drop *all* matched traffic for a window of virtual time.

    The partition starts when the first matched frame passes through
    and heals ``duration`` clock units later; frames inside the window
    vanish (in both directions, if the fault's trigger matches both).
    Models a transient network partition between client and middleware.
    """

    def __init__(self, duration: float = 32.0) -> None:
        if duration <= 0:
            raise ValueError("a partition must last a positive duration")
        self.duration = duration
        self._started_at: Optional[float] = None

    def apply_network(self, ctx, delivery: NetDelivery) -> List[NetDelivery]:
        now = getattr(ctx, "now", 0.0)
        if self._started_at is None:
            self._started_at = now
        if now < self._started_at + self.duration:
            return []
        return [delivery]


class BehaviourFlagEffect(Effect):
    """Expose a named behaviour flag the engine consults internally.

    The fault does nothing at the statement hook points; instead
    ``Engine`` components ask ``ctx.flag(name)`` at semantic decision
    points (DEFAULT validation, DROP TABLE on views, aggregate column
    naming, MOD precision, ...).
    """

    phase = "flag"

    def __init__(self, flag: str) -> None:
        self.flag = flag

    def apply_before(self, ctx) -> None:  # pragma: no cover - never called
        return None

    def apply_after(self, ctx, result):  # pragma: no cover - never called
        return result


class PlanStageBugEffect(BehaviourFlagEffect):
    """A wrong-result bug inside the *compiled plan* executor only.

    Sets the ``plan_filter_truncates`` flag, which the physical plan's
    filter stage consults (it silently drops the last row of the scan
    batch).  The tree-walker never reads the flag, so the same
    statement on the same replica answers differently depending on the
    execution strategy — exactly the fault class the dual-plan oracle
    (``ServerConfig.dual_plan``) exists to catch, and one that
    cross-replica voting misses when every replica runs the planner.
    """

    def __init__(self) -> None:
        super().__init__("plan_filter_truncates")


class PredicateFoldBugEffect(BehaviourFlagEffect):
    """A three-valued-logic bug: ``NOT UNKNOWN`` evaluates to TRUE.

    Sets the ``fold_not_unknown_true`` flag, consulted by both the
    tree-walker and the compiled NOT closures — so *every* executor on
    the replica agrees on the wrong answer and neither cross-replica
    voting (single replica) nor the dual-plan oracle sees anything.
    The static TLP oracle does: rows where ``p`` is UNKNOWN land in
    both the ``NOT p`` and the ``p IS NULL`` partition, so the
    partition union over-counts the base result.
    """

    def __init__(self) -> None:
        super().__init__("fold_not_unknown_true")


class PartitionDropBugEffect(BehaviourFlagEffect):
    """A NULL-test bug: ``IS NULL`` over a *composite* expression
    (anything but a bare column, literal, or parameter) answers FALSE
    even when the value is NULL.

    Sets the ``isnull_composite_false`` flag, consulted by both
    executors.  Bare-column NULL tests — the overwhelmingly common form
    in the corpus — stay correct, so the fault hides from ordinary
    workloads and from any oracle that never writes a composite NULL
    test.  The TLP oracle always does: its third partition is
    ``(p) IS NULL``, which under this fault returns no rows, so the
    partition union under-counts the base result wherever ``p`` goes
    UNKNOWN.
    """

    def __init__(self) -> None:
        super().__init__("isnull_composite_false")
