"""Fault-injection framework.

A *fault* is a named behaviour mutation seeded into a simulated server
product.  Faults have a trigger (when does it fire), an effect (what
does it do), and an activation model (Bohrbug: always when triggered;
Heisenbug: only under stress, probabilistically) — mirroring the
terminology of Gray (1987) the paper adopts.

Public surface:

* :class:`~repro.faults.spec.FaultSpec` and the
  :class:`~repro.faults.spec.FailureKind` /
  :class:`~repro.faults.spec.Detectability` enums
* trigger combinators in :mod:`repro.faults.triggers`
* effect classes in :mod:`repro.faults.effects`
* :class:`~repro.faults.injector.FaultInjector` — plugged into an
  :class:`~repro.sqlengine.engine.Engine`
"""

from repro.faults.audit import TimeoutAuditEntry
from repro.faults.effects import (
    BehaviourFlagEffect,
    ChecksumCorruptionEffect,
    ConcurrencyAnomalyEffect,
    ConnectionResetEffect,
    CorruptFrameEffect,
    CrashEffect,
    DelayFrameEffect,
    DialectRenderEffect,
    DirtyReadEffect,
    DropFrameEffect,
    DuplicateFrameEffect,
    ErrorEffect,
    HangEffect,
    LostFlushEffect,
    LostUpdateEffect,
    NetDelivery,
    NetworkEffect,
    PartitionDropBugEffect,
    PartitionEffect,
    PerformanceEffect,
    PhantomRowEffect,
    PlanStageBugEffect,
    PredicateFoldBugEffect,
    ReorderFrameEffect,
    RowDropEffect,
    RowDuplicateEffect,
    RowcountSkewEffect,
    ScanOrderEffect,
    StallEffect,
    StorageEffect,
    TornWriteEffect,
    ValueSkewEffect,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import Detectability, FailureKind, FaultSpec
from repro.faults.triggers import (
    AlwaysTrigger,
    RecoveryTrigger,
    RelationTrigger,
    SqlPatternTrigger,
    TagTrigger,
    TriggerContext,
)

__all__ = [
    "AlwaysTrigger",
    "BehaviourFlagEffect",
    "ChecksumCorruptionEffect",
    "ConcurrencyAnomalyEffect",
    "ConnectionResetEffect",
    "CorruptFrameEffect",
    "CrashEffect",
    "DelayFrameEffect",
    "Detectability",
    "DialectRenderEffect",
    "DirtyReadEffect",
    "DropFrameEffect",
    "DuplicateFrameEffect",
    "ErrorEffect",
    "FailureKind",
    "FaultInjector",
    "FaultSpec",
    "HangEffect",
    "LostFlushEffect",
    "LostUpdateEffect",
    "NetDelivery",
    "NetworkEffect",
    "PartitionDropBugEffect",
    "PartitionEffect",
    "PerformanceEffect",
    "PhantomRowEffect",
    "PlanStageBugEffect",
    "PredicateFoldBugEffect",
    "RecoveryTrigger",
    "RelationTrigger",
    "ReorderFrameEffect",
    "RowDropEffect",
    "RowDuplicateEffect",
    "RowcountSkewEffect",
    "ScanOrderEffect",
    "SqlPatternTrigger",
    "StallEffect",
    "StorageEffect",
    "TagTrigger",
    "TimeoutAuditEntry",
    "TornWriteEffect",
    "TriggerContext",
    "ValueSkewEffect",
]
