"""Fault-catalog and timeout auditing.

Cross-checks a server's seeded fault catalog against an executed study:
which faults fired, on which bug scripts, with what classification —
and, crucially, which faults *never* fired (dead faults indicate a bug
script or trigger drifting out of sync).  The corpus test-suite keeps
the audit clean; downstream users extending the corpus get the same
guard.

Alongside the catalog audit lives the middleware's *timeout audit*: one
:class:`TimeoutAuditEntry` per statement-deadline violation, so hung or
stalled replicas excluded from adjudication leave a reviewable trail
(which replica, which statement, how far over budget, and whether the
violation happened in service or during recovery replay).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dialects.features import SERVER_KEYS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.study.runner import StudyResult


@dataclass
class TimeoutAuditEntry:
    """One statement-deadline violation observed by the middleware.

    ``virtual_cost`` is the offending answer's cost — infinite for a
    hang (the replica never returned), finite for a stall.  ``at`` is
    the supervisor's virtual-clock time, which makes audit trails
    reproducible across runs.
    """

    replica: str
    sql: str
    virtual_cost: float
    deadline: float
    at: float
    during_recovery: bool = False

    @property
    def kind(self) -> str:
        """``hang`` (never returned) or ``stall`` (returned too late)."""
        return "hang" if math.isinf(self.virtual_cost) else "stall"

    @property
    def overrun(self) -> float:
        """Virtual cost past the deadline (inf for hangs)."""
        return self.virtual_cost - self.deadline


@dataclass
class FaultAuditEntry:
    """Audit record for one seeded fault."""

    fault_id: str
    server: str
    description: str
    heisenbug: bool
    fired_on_bugs: list[str] = field(default_factory=list)

    @property
    def dead(self) -> bool:
        """A non-Heisenbug fault that never fired anywhere."""
        return not self.heisenbug and not self.fired_on_bugs


def audit_faults(study: StudyResult) -> dict[str, list[FaultAuditEntry]]:
    """Audit every server's catalog against the study's fired faults."""
    corpus = study.corpus
    audit: dict[str, list[FaultAuditEntry]] = {}
    for server in SERVER_KEYS:
        entries = {
            fault.fault_id: FaultAuditEntry(
                fault_id=fault.fault_id,
                server=server,
                description=fault.description,
                heisenbug=fault.heisenbug,
            )
            for fault in corpus.faults_for(server)
        }
        for report in corpus:
            cell = study.cells.get((report.bug_id, server))
            if cell is None:
                continue
            for fault_id in cell.fired_faults:
                if fault_id in entries:
                    entries[fault_id].fired_on_bugs.append(report.bug_id)
        audit[server] = sorted(entries.values(), key=lambda entry: entry.fault_id)
    return audit


def dead_faults(study: StudyResult) -> list[FaultAuditEntry]:
    """Non-Heisenbug faults that never fired — corpus drift indicators."""
    return [
        entry
        for entries in audit_faults(study).values()
        for entry in entries
        if entry.dead
    ]


def statically_dead_faults(corpus) -> list[FaultAuditEntry]:
    """The static complement of :func:`dead_faults`: faults whose
    trigger matches no statement context derivable from the corpus —
    found *without executing anything*.

    Two differences from the dynamic audit: Heisenbugs are included
    (their trigger must still be reachable, only their activation is
    probabilistic), and faults that fire but get masked before the
    classifier sees them still count as reachable.  A fault dead here is
    dead for a stronger reason than "didn't fire this run".
    """
    from repro.analysis.reachability import unreachable_faults

    return [
        FaultAuditEntry(
            fault_id=fault.fault_id,
            server=server,
            description=fault.description,
            heisenbug=fault.heisenbug,
        )
        for server, fault in unreachable_faults(corpus)
    ]


def dead_storage_faults(bank) -> list[FaultAuditEntry]:
    """Banked storage faults whose trigger matches no statement of
    their own repro script — the storage-layer analogue of
    :func:`statically_dead_faults`.

    Storage faults fire on the WAL append of a committed write, so the
    serve-phase statement contexts of the script are exactly the
    contexts the injector will see; a trigger no context satisfies can
    never tear, drop, or corrupt a byte.
    """
    from repro.analysis.reachability import script_contexts

    dead: list[FaultAuditEntry] = []
    for report in bank:
        contexts = script_contexts(report.script)
        if not any(report.fault.trigger.matches(ctx) for ctx in contexts):
            dead.append(
                FaultAuditEntry(
                    fault_id=report.fault.fault_id,
                    server=report.server,
                    description=report.fault.description,
                    heisenbug=report.fault.heisenbug,
                )
            )
    return dead


def dead_concurrency_faults(bank) -> list[FaultAuditEntry]:
    """Banked concurrency-anomaly faults whose trigger matches no
    statement of their own repro — setup or either session script.

    Concurrency faults fire on the reads their anomaly distorts, so the
    serve-phase contexts of the repro's scripts are exactly what the
    injector will see; an unmatched trigger can never smuggle a lost
    update, dirty read, or phantom past the analyzer's certificates.
    """
    from repro.analysis.reachability import script_contexts

    dead: list[FaultAuditEntry] = []
    for entry in bank:
        contexts = []
        for script in (entry.setup, *entry.sessions):
            if script.strip():
                contexts.extend(script_contexts(script))
        if not any(entry.fault.trigger.matches(ctx) for ctx in contexts):
            dead.append(
                FaultAuditEntry(
                    fault_id=entry.fault.fault_id,
                    server=entry.server,
                    description=entry.fault.description,
                    heisenbug=entry.fault.heisenbug,
                )
            )
    return dead


def shared_fault_coverage(study: StudyResult) -> dict[str, int]:
    """How many distinct bug scripts each multi-script fault covered
    (e.g. the PostgreSQL clustered-index fault spans six scripts)."""
    coverage: dict[str, int] = {}
    for entries in audit_faults(study).values():
        for entry in entries:
            if len(entry.fired_on_bugs) > 1:
                coverage[entry.fault_id] = len(set(entry.fired_on_bugs))
    return coverage
