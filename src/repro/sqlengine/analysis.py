"""Statement trait extraction.

One tree walk produces the set of *feature tags* a statement uses.
Three consumers share it:

* the dialect gate (:mod:`repro.dialects`) — a server rejects a statement
  whose tags include a feature its dialect lacks;
* the dialect translator — tags tell it which rewrites to attempt;
* fault triggers (:mod:`repro.faults`) — a fault fires when the
  statement's tags match its trigger pattern.

Tag vocabulary (stable, part of the public API):

``stmt.<kind>``            statement kind (select/insert/create_table/...)
``join.<kind>``            inner/left/right/full/cross joins
``set.<op>``               union/intersect/except (+ ``set.union_all``)
``subquery.<where>``       in/exists/scalar/derived
``clause.<name>``          distinct/group_by/having/order_by/limit/case/cast/
                           like/between/default/check/primary_key/unique/
                           parameter (a ``?`` placeholder)
``fn.<NAME>``              scalar function calls
``agg.<NAME>``             aggregate calls
``op.<name>``              modulo (%), concat (||)
``type.<NAME>``            declared type spellings
``index.clustered`` etc.   index modifiers
``view.union`` / ``view.distinct``  CREATE VIEW body properties
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.functions import AGGREGATE_NAMES


@dataclass
class StatementTraits:
    """Feature tags plus referenced relation names for one statement."""

    kind: str
    tags: set[str] = field(default_factory=set)
    relations: set[str] = field(default_factory=set)

    def has(self, *tags: str) -> bool:
        """True when every given tag is present."""
        return all(tag in self.tags for tag in tags)

    def has_any(self, *tags: str) -> bool:
        return any(tag in self.tags for tag in tags)


def extract_traits(stmt: ast.Statement) -> StatementTraits:
    """Extract the trait set of one parsed statement."""
    kind = statement_kind(stmt)
    traits = StatementTraits(kind=kind, tags={f"stmt.{kind}"})
    _walk_statement(stmt, traits, top_level=True)
    return traits


def statement_kind(stmt: ast.Statement) -> str:
    """The canonical kind string for a statement node (public: the
    static analyzer keys verdict dispatch on it)."""
    mapping = {
        ast.SelectStatement: "select",
        ast.CreateTable: "create_table",
        ast.CreateView: "create_view",
        ast.CreateIndex: "create_index",
        ast.DropTable: "drop_table",
        ast.DropView: "drop_view",
        ast.DropIndex: "drop_index",
        ast.AlterTableAddColumn: "alter_table",
        ast.Insert: "insert",
        ast.Update: "update",
        ast.Delete: "delete",
        ast.BeginTransaction: "begin",
        ast.Commit: "commit",
        ast.Rollback: "rollback",
        ast.Savepoint: "savepoint",
    }
    return mapping[type(stmt)]


#: Backwards-compatible alias (pre-analysis-package name).
_statement_kind = statement_kind


def _walk_statement(stmt: ast.Statement, traits: StatementTraits, top_level: bool = False) -> None:
    if isinstance(stmt, ast.SelectStatement):
        _walk_select(stmt, traits, in_subquery=not top_level)
    elif isinstance(stmt, ast.CreateTable):
        for column in stmt.columns:
            traits.tags.add(f"type.{column.type_name}")
            if column.default is not None:
                traits.tags.add("clause.default")
                _walk_expression(column.default, traits)
            if column.check is not None:
                traits.tags.add("clause.check")
                _walk_expression(column.check, traits)
            if column.primary_key:
                traits.tags.add("clause.primary_key")
            if column.unique:
                traits.tags.add("clause.unique")
            if column.references:
                traits.tags.add("clause.references")
        for constraint in stmt.constraints:
            tag = constraint.kind.lower().replace(" ", "_")
            traits.tags.add(f"clause.{tag}")
            if constraint.check is not None:
                traits.tags.add("clause.check")
                _walk_expression(constraint.check, traits)
        traits.relations.add(stmt.name.lower())
    elif isinstance(stmt, ast.CreateView):
        traits.relations.add(stmt.name.lower())
        inner = StatementTraits(kind="select")
        _walk_select(stmt.query, inner, in_subquery=False)
        traits.tags |= inner.tags
        traits.relations |= inner.relations
        if inner.has_any("set.union", "set.union_all"):
            traits.tags.add("view.union")
        if "clause.distinct" in inner.tags:
            traits.tags.add("view.distinct")
    elif isinstance(stmt, ast.CreateIndex):
        traits.relations.add(stmt.table.lower())
        if stmt.unique:
            traits.tags.add("index.unique")
        if stmt.clustered:
            traits.tags.add("index.clustered")
    elif isinstance(stmt, (ast.DropTable, ast.DropView, ast.DropIndex)):
        traits.relations.add(stmt.name.lower())
    elif isinstance(stmt, ast.AlterTableAddColumn):
        traits.relations.add(stmt.table.lower())
        traits.tags.add(f"type.{stmt.column.type_name}")
        if stmt.column.default is not None:
            traits.tags.add("clause.default")
    elif isinstance(stmt, ast.Insert):
        traits.relations.add(stmt.table.lower())
        if stmt.rows:
            for row in stmt.rows:
                for expr in row:
                    _walk_expression(expr, traits)
        if stmt.query is not None:
            traits.tags.add("insert.select")
            _walk_select(stmt.query, traits, in_subquery=True)
    elif isinstance(stmt, ast.Update):
        traits.relations.add(stmt.table.lower())
        for _, expr in stmt.assignments:
            _walk_expression(expr, traits)
        if stmt.where is not None:
            _walk_expression(stmt.where, traits)
    elif isinstance(stmt, ast.Delete):
        traits.relations.add(stmt.table.lower())
        if stmt.where is not None:
            _walk_expression(stmt.where, traits)
    elif isinstance(stmt, ast.Savepoint):
        traits.tags.add("txn.savepoint")
    elif isinstance(stmt, ast.Rollback) and stmt.savepoint:
        traits.tags.add("txn.savepoint")


def _walk_select(
    stmt: ast.SelectStatement, traits: StatementTraits, *, in_subquery: bool
) -> None:
    _walk_body(stmt.body, traits, in_subquery=in_subquery)
    if stmt.order_by:
        traits.tags.add("clause.order_by")
        for item in stmt.order_by:
            _walk_expression(item.expression, traits)
    if stmt.limit is not None:
        traits.tags.add("clause.limit")


def _walk_body(
    body: Union[ast.SelectCore, ast.SetOperation],
    traits: StatementTraits,
    *,
    in_subquery: bool,
) -> None:
    if isinstance(body, ast.SetOperation):
        op_tag = f"set.{body.op.lower()}"
        traits.tags.add(op_tag)
        if body.op == "UNION" and body.all:
            traits.tags.add("set.union_all")
        if in_subquery and body.op == "UNION":
            traits.tags.add("set.union_in_subquery")
        _walk_body(body.left, traits, in_subquery=in_subquery)
        _walk_body(body.right, traits, in_subquery=in_subquery)
        return
    core: ast.SelectCore = body
    if core.distinct:
        traits.tags.add("clause.distinct")
    if core.group_by:
        traits.tags.add("clause.group_by")
        for expr in core.group_by:
            _walk_expression(expr, traits)
    if core.having is not None:
        traits.tags.add("clause.having")
        _walk_expression(core.having, traits)
    for item in core.items:
        if not isinstance(item.expression, ast.Star):
            _walk_expression(item.expression, traits)
    if core.where is not None:
        _walk_expression(core.where, traits)
    for item in core.from_items:
        _walk_from_item(item, traits)


def _walk_from_item(item: ast.FromItem, traits: StatementTraits) -> None:
    if isinstance(item, ast.TableRef):
        traits.relations.add(item.name.lower())
    elif isinstance(item, ast.SubqueryRef):
        traits.tags.add("subquery.derived")
        _walk_select(item.subquery, traits, in_subquery=True)
    elif isinstance(item, ast.Join):
        traits.tags.add(f"join.{item.kind.lower()}")
        _walk_from_item(item.left, traits)
        _walk_from_item(item.right, traits)
        if item.condition is not None:
            _walk_expression(item.condition, traits)


def _walk_expression(expr: ast.Expression, traits: StatementTraits) -> None:
    stack: list[ast.Expression] = [expr]
    while stack:
        node = stack.pop()
        stack.extend(node.children())
        if isinstance(node, ast.FunctionCall):
            if node.name in AGGREGATE_NAMES:
                traits.tags.add(f"agg.{node.name}")
                if node.distinct:
                    traits.tags.add("agg.distinct")
            else:
                traits.tags.add(f"fn.{node.name}")
        elif isinstance(node, ast.BinaryOp):
            if node.op == "%":
                traits.tags.add("op.modulo")
            elif node.op == "||":
                traits.tags.add("op.concat")
        elif isinstance(node, ast.Parameter):
            traits.tags.add("clause.parameter")
        elif isinstance(node, ast.CaseExpr):
            traits.tags.add("clause.case")
        elif isinstance(node, ast.CastExpr):
            traits.tags.add("clause.cast")
            traits.tags.add(f"type.{node.type_name}")
        elif isinstance(node, ast.LikePredicate):
            traits.tags.add("clause.like")
        elif isinstance(node, ast.BetweenPredicate):
            traits.tags.add("clause.between")
        elif isinstance(node, ast.InPredicate):
            if node.subquery is not None:
                traits.tags.add("subquery.in")
                _walk_select(node.subquery, traits, in_subquery=True)
                if node.negated:
                    traits.tags.add("subquery.not_in")
            else:
                traits.tags.add("clause.in_list")
        elif isinstance(node, ast.ExistsPredicate):
            traits.tags.add("subquery.exists")
            _walk_select(node.subquery, traits, in_subquery=True)
        elif isinstance(node, ast.ScalarSubquery):
            traits.tags.add("subquery.scalar")
            _walk_select(node.subquery, traits, in_subquery=True)


def script_traits(statements: list[ast.Statement]) -> StatementTraits:
    """Union of traits over a whole script (kind = 'script')."""
    combined = StatementTraits(kind="script")
    for stmt in statements:
        traits = extract_traits(stmt)
        combined.tags |= traits.tags
        combined.relations |= traits.relations
    return combined
