"""SQL type system: type descriptors, coercion, and value casting.

The engine keeps Python values in rows (``int``, ``float``,
``decimal.Decimal``, ``str``, ``datetime.date``, ``bool``, ``None``) and
uses :class:`SqlType` descriptors for column metadata, CAST, DEFAULT
validation, and implicit coercions.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation
from enum import Enum
from typing import Any, Optional

from repro.errors import TypeMismatch


class TypeFamily(Enum):
    """Broad family a concrete type belongs to; coercion is per-family."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    FLOAT = "float"
    CHARACTER = "character"
    DATE = "date"
    TIMESTAMP = "timestamp"
    BOOLEAN = "boolean"
    NULL = "null"


_NUMERIC_FAMILIES = {TypeFamily.INTEGER, TypeFamily.DECIMAL, TypeFamily.FLOAT}


@dataclass(frozen=True)
class SqlType:
    """A concrete SQL type as declared in DDL.

    ``name`` preserves the dialect spelling (``INT``, ``NUMBER``,
    ``VARCHAR2``...); semantics depend only on ``family`` plus the
    length/precision attributes.
    """

    name: str
    family: TypeFamily
    length: Optional[int] = None       # CHAR(n) / VARCHAR(n)
    precision: Optional[int] = None    # NUMERIC(p, s)
    scale: Optional[int] = None
    pad_char: bool = False             # CHAR semantics: pad to length

    def render(self) -> str:
        """Render the type as SQL text in its original spelling."""
        if self.length is not None:
            return f"{self.name}({self.length})"
        if self.precision is not None and self.scale is not None:
            return f"{self.name}({self.precision},{self.scale})"
        if self.precision is not None:
            return f"{self.name}({self.precision})"
        return self.name

    @property
    def is_numeric(self) -> bool:
        return self.family in _NUMERIC_FAMILIES


INTEGER = SqlType("INTEGER", TypeFamily.INTEGER)
SMALLINT = SqlType("SMALLINT", TypeFamily.INTEGER)
BIGINT = SqlType("BIGINT", TypeFamily.INTEGER)
FLOAT = SqlType("FLOAT", TypeFamily.FLOAT)
DOUBLE = SqlType("DOUBLE PRECISION", TypeFamily.FLOAT)
BOOLEAN = SqlType("BOOLEAN", TypeFamily.BOOLEAN)
DATE = SqlType("DATE", TypeFamily.DATE)
TIMESTAMP = SqlType("TIMESTAMP", TypeFamily.TIMESTAMP)
NULL_TYPE = SqlType("NULL", TypeFamily.NULL)


def varchar(length: int = 255, name: str = "VARCHAR") -> SqlType:
    """Build a variable-length character type."""
    return SqlType(name, TypeFamily.CHARACTER, length=length)


def char(length: int = 1, name: str = "CHAR") -> SqlType:
    """Build a fixed-length, blank-padded character type."""
    return SqlType(name, TypeFamily.CHARACTER, length=length, pad_char=True)


def numeric(precision: int = 18, scale: int = 0, name: str = "NUMERIC") -> SqlType:
    """Build an exact decimal type."""
    return SqlType(name, TypeFamily.DECIMAL, precision=precision, scale=scale)


def infer_literal_type(value: Any) -> SqlType:
    """Infer an SqlType for a Python literal produced by the parser."""
    if value is None:
        return NULL_TYPE
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, Decimal):
        return numeric()
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return varchar(max(len(value), 1))
    if isinstance(value, datetime.datetime):
        return TIMESTAMP
    if isinstance(value, datetime.date):
        return DATE
    raise TypeMismatch(f"cannot infer SQL type for python value {value!r}")


_DATE_FORMATS = ("%Y-%m-%d", "%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M")


def parse_date(text: str) -> datetime.date:
    """Parse an SQL date string, accepting single-digit month/day."""
    for fmt in _DATE_FORMATS:
        try:
            parsed = datetime.datetime.strptime(text.strip(), fmt)
        except ValueError:
            continue
        return parsed.date()
    raise TypeMismatch(f"invalid date literal {text!r}")


def parse_timestamp(text: str) -> datetime.datetime:
    """Parse an SQL timestamp string."""
    for fmt in reversed(_DATE_FORMATS):
        try:
            return datetime.datetime.strptime(text.strip(), fmt)
        except ValueError:
            continue
    raise TypeMismatch(f"invalid timestamp literal {text!r}")


def _cast_to_integer(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, (float, Decimal)):
        return int(value)
    if isinstance(value, str):
        stripped = value.strip()
        try:
            return int(stripped)
        except ValueError:
            try:
                return int(Decimal(stripped))
            except InvalidOperation:
                raise TypeMismatch(f"cannot convert {value!r} to integer") from None
    raise TypeMismatch(f"cannot convert {value!r} to integer")


def _cast_to_decimal(value: Any, target: SqlType) -> Decimal:
    try:
        if isinstance(value, bool):
            result = Decimal(int(value))
        elif isinstance(value, (int, Decimal)):
            result = Decimal(value)
        elif isinstance(value, float):
            result = Decimal(str(value))
        elif isinstance(value, str):
            result = Decimal(value.strip())
        else:
            raise TypeMismatch(f"cannot convert {value!r} to decimal")
    except InvalidOperation:
        raise TypeMismatch(f"cannot convert {value!r} to decimal") from None
    if target.scale is not None:
        quantum = Decimal(1).scaleb(-target.scale)
        result = result.quantize(quantum)
    return result


def _cast_to_float(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float, Decimal)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise TypeMismatch(f"cannot convert {value!r} to float") from None
    raise TypeMismatch(f"cannot convert {value!r} to float")


def _cast_to_character(value: Any, target: SqlType) -> str:
    if isinstance(value, bool):
        text = "TRUE" if value else "FALSE"
    elif isinstance(value, str):
        text = value
    elif isinstance(value, (int, float, Decimal)):
        text = format_numeric(value)
    elif isinstance(value, (datetime.date, datetime.datetime)):
        text = value.isoformat(sep=" ") if isinstance(value, datetime.datetime) else value.isoformat()
    else:
        raise TypeMismatch(f"cannot convert {value!r} to character")
    if target.length is not None and len(text) > target.length:
        if text[target.length :].strip():
            raise TypeMismatch(
                f"value {text!r} too long for {target.render()}"
            )
        text = text[: target.length]
    if target.pad_char and target.length is not None:
        text = text.ljust(target.length)
    return text


def _cast_to_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("t", "true", "1", "yes", "y"):
            return True
        if lowered in ("f", "false", "0", "no", "n"):
            return False
    raise TypeMismatch(f"cannot convert {value!r} to boolean")


def cast_value(value: Any, target: SqlType, *, implicit: bool = False) -> Any:
    """Cast ``value`` to ``target``.

    ``implicit=True`` applies the stricter coercion rules used when
    storing values into typed columns (strings are *not* silently parsed
    into numbers — that is exactly the validation the paper's Interbase
    bug 217042 shows being skipped; the fault injector can relax it).
    """
    if value is None:
        return None
    family = target.family
    if implicit and isinstance(value, str) and family in _NUMERIC_FAMILIES:
        # Implicit string->number narrowing must still parse cleanly.
        stripped = value.strip()
        if not _looks_numeric(stripped):
            raise TypeMismatch(
                f"cannot store string {value!r} in column of type {target.render()}"
            )
    if family is TypeFamily.INTEGER:
        return _cast_to_integer(value)
    if family is TypeFamily.DECIMAL:
        return _cast_to_decimal(value, target)
    if family is TypeFamily.FLOAT:
        return _cast_to_float(value)
    if family is TypeFamily.CHARACTER:
        return _cast_to_character(value, target)
    if family is TypeFamily.BOOLEAN:
        return _cast_to_boolean(value)
    if family is TypeFamily.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return parse_date(value)
        raise TypeMismatch(f"cannot convert {value!r} to date")
    if family is TypeFamily.TIMESTAMP:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            return parse_timestamp(value)
        raise TypeMismatch(f"cannot convert {value!r} to timestamp")
    if family is TypeFamily.NULL:
        return None
    raise TypeMismatch(f"unknown type family {family}")  # pragma: no cover


def _looks_numeric(text: str) -> bool:
    if not text:
        return False
    try:
        Decimal(text)
    except InvalidOperation:
        return False
    return True


def format_numeric(value: Any) -> str:
    """Render a numeric value the way result sets print it."""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(value, Decimal):
        # Plain rendering preserving declared scale: NUMERIC(8,2) values
        # print as '10.00', the way products render them.
        return format(value, "f")
    return str(value)
