"""Query execution: FROM construction, joins, filtering, grouping,
projection, set operations, ordering.

The executor is deliberately a straightforward tuple-at-a-time
interpreter — the study needs *faithful SQL semantics* far more than it
needs speed, and faithful semantics are what the injected faults distort
in controlled ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import BindError, CatalogError, TypeMismatch
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import (
    ColumnBinding,
    Environment,
    Evaluator,
    SubqueryResult,
    collect_aggregates,
)
from repro.sqlengine.functions import Accumulator
from repro.sqlengine.values import distinct_key, row_key


@dataclass
class Relation:
    """An intermediate result: bound columns plus materialised rows."""

    columns: list[ColumnBinding]
    rows: list[tuple]


@dataclass
class QueryResult:
    """Final output of a SELECT: plain column names plus rows."""

    columns: list[str]
    rows: list[tuple]


_MAX_SUBQUERY_DEPTH = 32


class SelectExecutor:
    """Executes SELECT statements against an engine's catalog/storage."""

    def __init__(self, engine, ctx) -> None:
        self._engine = engine
        self._ctx = ctx
        self._depth = 0
        self.evaluator = Evaluator(ctx, subquery_runner=self._run_subquery)

    # -- entry point ---------------------------------------------------------

    def execute_select(
        self, stmt: ast.SelectStatement, outer_env: Optional[Environment] = None
    ) -> QueryResult:
        self._depth += 1
        if self._depth > _MAX_SUBQUERY_DEPTH:
            raise BindError("subquery nesting too deep")
        try:
            if isinstance(stmt.body, ast.SelectCore):
                result, envs = self._execute_core(stmt.body, outer_env)
            else:
                result = self._execute_setop(stmt.body, outer_env)
                envs = None
            if stmt.order_by:
                result = self._order(result, envs, stmt.order_by, outer_env)
            if stmt.limit is not None:
                result = QueryResult(result.columns, result.rows[: stmt.limit])
            return result
        finally:
            self._depth -= 1

    def _run_subquery(
        self, stmt: ast.SelectStatement, env: Optional[Environment]
    ) -> SubqueryResult:
        result = self.execute_select(stmt, outer_env=env)
        return SubqueryResult(result.columns, result.rows)

    # -- set operations --------------------------------------------------------

    def _execute_setop(
        self, node: ast.SetOperation, outer_env: Optional[Environment]
    ) -> QueryResult:
        left = self._execute_body(node.left, outer_env)
        right = self._execute_body(node.right, outer_env)
        if len(left.columns) != len(right.columns):
            raise TypeMismatch(
                f"{node.op} operands have different column counts "
                f"({len(left.columns)} vs {len(right.columns)})"
            )
        if node.op == "UNION":
            rows = left.rows + right.rows
            if not node.all:
                rows = _distinct_rows(rows)
            return QueryResult(left.columns, rows)
        if node.op == "INTERSECT":
            right_keys = {row_key(row) for row in right.rows}
            rows = _distinct_rows([row for row in left.rows if row_key(row) in right_keys])
            return QueryResult(left.columns, rows)
        if node.op == "EXCEPT":
            right_keys = {row_key(row) for row in right.rows}
            rows = _distinct_rows(
                [row for row in left.rows if row_key(row) not in right_keys]
            )
            return QueryResult(left.columns, rows)
        raise BindError(f"unknown set operation {node.op!r}")  # pragma: no cover

    def _execute_body(self, body, outer_env: Optional[Environment]) -> QueryResult:
        if isinstance(body, ast.SelectCore):
            result, _ = self._execute_core(body, outer_env)
            return result
        return self._execute_setop(body, outer_env)

    # -- core SELECT -------------------------------------------------------------

    def _execute_core(
        self, core: ast.SelectCore, outer_env: Optional[Environment]
    ) -> tuple[QueryResult, Optional[list[Environment]]]:
        relation = self._build_from(core.from_items, outer_env)

        if core.where is not None:
            kept = []
            # One environment reused across the scan (only its row slot
            # changes); nothing retains it past each predicate call.
            env = Environment(relation.columns, (), outer=outer_env)
            for row in relation.rows:
                env.row = row
                if self.evaluator.truthy(core.where, env):
                    kept.append(row)
            relation = Relation(relation.columns, kept)

        aggregates = self._collect_core_aggregates(core)
        if core.group_by or aggregates:
            result, envs = self._execute_grouped(core, relation, outer_env, aggregates)
        else:
            result, envs = self._project(core, relation, outer_env)

        if core.distinct:
            result, envs = self._apply_distinct(result, envs)
        return result, envs

    @staticmethod
    def _collect_core_aggregates(core: ast.SelectCore) -> list[ast.FunctionCall]:
        nodes: list[ast.FunctionCall] = []
        for item in core.items:
            if not isinstance(item.expression, ast.Star):
                nodes.extend(collect_aggregates(item.expression))
        if core.having is not None:
            nodes.extend(collect_aggregates(core.having))
        return nodes

    # -- FROM / joins --------------------------------------------------------------

    def _build_from(
        self, from_items: list[ast.FromItem], outer_env: Optional[Environment]
    ) -> Relation:
        if not from_items:
            return Relation(columns=[], rows=[()])
        relation = self._build_from_item(from_items[0], outer_env)
        for item in from_items[1:]:
            right = self._build_from_item(item, outer_env)
            relation = _cross_join(relation, right)
        return relation

    def _build_from_item(
        self, item: ast.FromItem, outer_env: Optional[Environment]
    ) -> Relation:
        if isinstance(item, ast.TableRef):
            return self._scan(item)
        if isinstance(item, ast.SubqueryRef):
            sub = self.execute_select(item.subquery, outer_env=outer_env)
            columns = [ColumnBinding(item.alias, name) for name in sub.columns]
            return Relation(columns, sub.rows)
        if isinstance(item, ast.Join):
            return self._join(item, outer_env)
        raise BindError(f"unsupported FROM item {item!r}")  # pragma: no cover

    def _scan(self, ref: ast.TableRef) -> Relation:
        catalog = self._engine.catalog
        label = ref.binding_name
        if catalog.has_table(ref.name):
            schema = catalog.table(ref.name)
            data = self._engine.storage.get(ref.name)
            columns = [ColumnBinding(label, column.name) for column in schema.columns]
            return Relation(columns, [tuple(row) for row in data.rows()])
        if catalog.has_view(ref.name):
            view = catalog.view(ref.name)
            self._ctx.note_view_use(view)
            sub = self.execute_select(view.query, outer_env=None)
            names = view.column_names or sub.columns
            if len(names) != len(sub.columns):
                raise CatalogError(
                    f"view {view.name!r} column list does not match its query"
                )
            columns = [ColumnBinding(label, name) for name in names]
            return Relation(columns, sub.rows)
        raise CatalogError(f"relation {ref.name!r} does not exist")

    def _join(self, join: ast.Join, outer_env: Optional[Environment]) -> Relation:
        left = self._build_from_item(join.left, outer_env)
        right = self._build_from_item(join.right, outer_env)
        if join.kind == "CROSS":
            return _cross_join(left, right)
        if join.kind == "INNER":
            return self._loop_join(left, right, join.condition, outer_env, outer=False)
        if join.kind == "LEFT":
            return self._loop_join(left, right, join.condition, outer_env, outer=True)
        if join.kind == "RIGHT":
            flipped = self._loop_join(right, left, join.condition, outer_env, outer=True)
            return _reorder(flipped, len(right.columns), len(left.columns))
        if join.kind == "FULL":
            return self._full_join(left, right, join.condition, outer_env)
        raise BindError(f"unknown join kind {join.kind!r}")  # pragma: no cover

    def _loop_join(
        self,
        left: Relation,
        right: Relation,
        condition: Optional[ast.Expression],
        outer_env: Optional[Environment],
        *,
        outer: bool,
        matched_right: Optional[list[bool]] = None,
    ) -> Relation:
        columns = left.columns + right.columns
        rows: list[tuple] = []
        null_pad = (None,) * len(right.columns)
        for left_row in left.rows:
            matched = False
            for right_index, right_row in enumerate(right.rows):
                combined = left_row + right_row
                env = Environment(columns, combined, outer=outer_env)
                if condition is None or self.evaluator.truthy(condition, env):
                    rows.append(combined)
                    matched = True
                    if matched_right is not None:
                        matched_right[right_index] = True
            if outer and not matched:
                rows.append(left_row + null_pad)
        return Relation(columns, rows)

    def _full_join(
        self,
        left: Relation,
        right: Relation,
        condition: Optional[ast.Expression],
        outer_env: Optional[Environment],
    ) -> Relation:
        matched_right = [False] * len(right.rows)
        relation = self._loop_join(
            left, right, condition, outer_env, outer=True, matched_right=matched_right
        )
        null_pad = (None,) * len(left.columns)
        for index, right_row in enumerate(right.rows):
            if not matched_right[index]:
                relation.rows.append(null_pad + right_row)
        return relation

    # -- grouping ---------------------------------------------------------------------

    def _execute_grouped(
        self,
        core: ast.SelectCore,
        relation: Relation,
        outer_env: Optional[Environment],
        aggregates: list[ast.FunctionCall],
    ) -> tuple[QueryResult, list[Environment]]:
        groups: dict[tuple, list[tuple]] = {}
        if core.group_by:
            order: list[tuple] = []
            for row in relation.rows:
                env = Environment(relation.columns, row, outer=outer_env)
                key = tuple(
                    distinct_key(self.evaluator.evaluate(expr, env)) for expr in core.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
            group_items = [(key, groups[key]) for key in order]
        else:
            group_items = [((), relation.rows)]

        columns = relation.columns
        out_rows: list[tuple] = []
        out_envs: list[Environment] = []
        names = self._output_names(core, relation)

        for _, rows in group_items:
            agg_values: dict[int, Any] = {}
            accumulators = [
                (node, Accumulator(node.name, node.distinct, node.star)) for node in aggregates
            ]
            for row in rows:
                env = Environment(columns, row, outer=outer_env)
                for node, acc in accumulators:
                    if acc.star:
                        acc.add(None)
                    else:
                        if len(node.args) != 1:
                            raise TypeMismatch(
                                f"aggregate {node.name} takes exactly one argument"
                            )
                        acc.add(self.evaluator.evaluate(node.args[0], env))
            for node, acc in accumulators:
                agg_values[id(node)] = acc.result()
            representative = rows[0] if rows else (None,) * len(columns)
            env = Environment(columns, representative, outer=outer_env, aggregates=agg_values)
            if core.having is not None and not self.evaluator.truthy(core.having, env):
                continue
            out_rows.append(self._project_row(core, relation, env))
            out_envs.append(env)
        return QueryResult(names, out_rows), out_envs

    # -- projection --------------------------------------------------------------------

    def _project(
        self, core: ast.SelectCore, relation: Relation, outer_env: Optional[Environment]
    ) -> tuple[QueryResult, list[Environment]]:
        names = self._output_names(core, relation)
        rows: list[tuple] = []
        envs: list[Environment] = []
        for row in relation.rows:
            env = Environment(relation.columns, row, outer=outer_env)
            rows.append(self._project_row(core, relation, env))
            envs.append(env)
        return QueryResult(names, rows), envs

    def _project_row(
        self, core: ast.SelectCore, relation: Relation, env: Environment
    ) -> tuple:
        values: list[Any] = []
        for item in core.items:
            expr = item.expression
            if isinstance(expr, ast.Star):
                for index, column in enumerate(relation.columns):
                    if expr.table is None or column.label.lower() == expr.table.lower():
                        values.append(env.row[index])
                continue
            values.append(self.evaluator.evaluate(expr, env))
        return tuple(values)

    def _output_names(self, core: ast.SelectCore, relation: Relation) -> list[str]:
        names: list[str] = []
        for item in core.items:
            expr = item.expression
            if isinstance(expr, ast.Star):
                matched = False
                for column in relation.columns:
                    if expr.table is None or column.label.lower() == expr.table.lower():
                        names.append(column.name)
                        matched = True
                if expr.table is not None and not matched:
                    raise BindError(f"unknown table {expr.table!r} in select list")
                continue
            names.append(self._output_name(item))
        return names

    def _output_name(self, item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        expr = item.expression
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FunctionCall):
            # Interbase report 222476: AVG/SUM columns come back with an
            # empty field name in two of the products.
            if expr.name in ("AVG", "SUM") and self._ctx.flag("empty_agg_field_names"):
                return ""
            return expr.name
        return "EXPR"

    # -- distinct / ordering -----------------------------------------------------------------

    @staticmethod
    def _apply_distinct(
        result: QueryResult, envs: Optional[list[Environment]]
    ) -> tuple[QueryResult, Optional[list[Environment]]]:
        seen: set = set()
        rows: list[tuple] = []
        kept_envs: list[Environment] = []
        for index, row in enumerate(result.rows):
            key = row_key(row)
            if key in seen:
                continue
            seen.add(key)
            rows.append(row)
            if envs is not None:
                kept_envs.append(envs[index])
        return QueryResult(result.columns, rows), (kept_envs if envs is not None else None)

    def _order(
        self,
        result: QueryResult,
        envs: Optional[list[Environment]],
        order_by: list[ast.OrderItem],
        outer_env: Optional[Environment],
    ) -> QueryResult:
        def key_for(index: int, row: tuple, item: ast.OrderItem) -> Any:
            expr = item.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(row):
                    raise BindError(f"ORDER BY position {ordinal} is out of range")
                return row[ordinal - 1]
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                for column_index, name in enumerate(result.columns):
                    if name.lower() == expr.name.lower():
                        return row[column_index]
            if envs is not None:
                return self.evaluator.evaluate(expr, envs[index])
            raise BindError(
                "ORDER BY expression must name an output column of a set operation"
            )

        decorated = []
        for index, row in enumerate(result.rows):
            keys = []
            for item in order_by:
                value = key_for(index, row, item)
                keys.append(_sort_key(value, item.descending))
            decorated.append((tuple(keys), index, row))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        return QueryResult(result.columns, [entry[2] for entry in decorated])


def _sort_key(value: Any, descending: bool) -> tuple:
    """Total-order sort key: NULLs sort last ascending, first descending."""
    if value is None:
        # Rank separates NULLs from values so their key payloads (which
        # have different types) are never compared with each other.
        return (1, 0) if not descending else (0, 0)
    key = distinct_key(value)
    if descending:
        return (1, _Reversed(key))
    return (0, key)


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _distinct_rows(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    result: list[tuple] = []
    for row in rows:
        key = row_key(row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _cross_join(left: Relation, right: Relation) -> Relation:
    columns = left.columns + right.columns
    rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation(columns, rows)


def _reorder(relation: Relation, left_width: int, right_width: int) -> Relation:
    """Swap the column blocks of a flipped RIGHT JOIN result back."""
    columns = relation.columns[left_width:] + relation.columns[:left_width]
    rows = [row[left_width:] + row[:left_width] for row in relation.rows]
    return Relation(columns, rows)
