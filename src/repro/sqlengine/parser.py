"""Recursive-descent SQL parser.

The grammar is a *superset* of all four product dialects: every product-
specific construct the bug corpus needs (``CREATE CLUSTERED INDEX``,
``LIMIT``, ``%`` modulo, ``||`` concatenation, ...) parses here.  Whether
a given server actually *accepts* a construct is decided after parsing by
the dialect feature gate (:mod:`repro.dialects`), mirroring how the study
distinguished parse-level dialect differences from engine behaviour.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Optional, Union

from repro.errors import ParseError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.tokens import Token, TokenKind

_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")
_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class Parser:
    """Parse a token stream into AST statements."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._index = 0
        #: Number of ``?`` placeholders seen so far; doubles as the
        #: zero-based ordinal assigned to the next one.
        self.parameter_count = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        return self._peek().is_keyword(*words)

    def _accept_keyword(self, *words: str) -> bool:
        if self._at_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word}, found {token.value!r} at line {token.line}")
        return self._advance()

    def _at_punct(self, char: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.PUNCT and token.value == char

    def _at_subquery(self) -> bool:
        """True when the upcoming tokens open a (possibly parenthesised)
        SELECT — distinguishes ``IN ((SELECT ...))`` from a scalar
        IN-list item that merely starts with ``(``, like ``IN ((-2))``."""
        offset = 0
        while True:
            token = self._peek(offset)
            if token.kind is TokenKind.PUNCT and token.value == "(":
                offset += 1
                continue
            return token.is_keyword("SELECT") and offset > 0

    def _accept_punct(self, char: str) -> bool:
        if self._at_punct(char):
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> Token:
        token = self._peek()
        if not (token.kind is TokenKind.PUNCT and token.value == char):
            raise ParseError(f"expected {char!r}, found {token.value!r} at line {token.line}")
        return self._advance()

    def _at_operator(self, *ops: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.OPERATOR and token.value in ops

    def _accept_operator(self, *ops: str) -> Optional[str]:
        if self._at_operator(*ops):
            return self._advance().value
        return None

    def _identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            self._advance()
            return token.value
        # Non-reserved words used as identifiers (aggregate names etc.)
        if token.kind is TokenKind.KEYWORD and token.value in _AGGREGATE_KEYWORDS:
            self._advance()
            return token.value
        raise ParseError(f"expected {what}, found {token.value!r} at line {token.line}")

    # -- entry points ------------------------------------------------------

    def parse_script(self) -> list[ast.Statement]:
        """Parse a semicolon-separated script into a statement list."""
        statements: list[ast.Statement] = []
        while True:
            while self._accept_punct(";"):
                pass
            if self._peek().kind is TokenKind.EOF:
                return statements
            statements.append(self.parse_statement())

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("SELECT") or self._at_punct("("):
            return self._parse_select()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("ALTER"):
            return self._parse_alter()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("BEGIN"):
            self._advance()
            self._accept_keyword("WORK") or self._accept_keyword("TRANSACTION")
            return ast.BeginTransaction()
        if token.is_keyword("COMMIT"):
            self._advance()
            self._accept_keyword("WORK") or self._accept_keyword("TRANSACTION")
            return ast.Commit()
        if token.is_keyword("ROLLBACK"):
            self._advance()
            self._accept_keyword("WORK") or self._accept_keyword("TRANSACTION")
            savepoint = None
            if self._accept_keyword("TO"):
                self._accept_keyword("SAVEPOINT")
                savepoint = self._identifier("savepoint name")
            return ast.Rollback(savepoint=savepoint)
        if token.is_keyword("SAVEPOINT"):
            self._advance()
            return ast.Savepoint(self._identifier("savepoint name"))
        raise ParseError(f"unexpected {token.value!r} at line {token.line}")

    # -- SELECT ------------------------------------------------------------

    def _parse_select(self) -> ast.SelectStatement:
        body = self._parse_select_body()
        order_by: list[ast.OrderItem] = []
        limit: Optional[int] = None
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind is not TokenKind.NUMBER:
                raise ParseError(f"LIMIT needs an integer at line {token.line}")
            self._advance()
            limit = int(token.value)
        return ast.SelectStatement(body=body, order_by=order_by, limit=limit)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expression=expr, descending=descending)

    def _parse_select_body(self) -> Union[ast.SelectCore, ast.SetOperation]:
        left = self._parse_select_term()
        while self._at_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self._advance().value
            use_all = bool(self._accept_keyword("ALL"))
            self._accept_keyword("DISTINCT")
            right = self._parse_select_term()
            left = ast.SetOperation(op=op, all=use_all, left=left, right=right)
        return left

    def _parse_select_term(self) -> Union[ast.SelectCore, ast.SetOperation]:
        if self._accept_punct("("):
            body = self._parse_select_body()
            self._expect_punct(")")
            return body
        return self._parse_select_core()

    def _parse_select_core(self) -> ast.SelectCore:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        if not distinct:
            self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        from_items: list[ast.FromItem] = []
        where = group_by = having = None
        group_by = []
        if self._accept_keyword("FROM"):
            from_items.append(self._parse_from_item())
            while self._accept_punct(","):
                from_items.append(self._parse_from_item())
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()
        return ast.SelectCore(
            items=items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        if self._at_operator("*"):
            self._advance()
            return ast.SelectItem(expression=ast.Star())
        # t.* form
        token = self._peek()
        if (
            token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER)
            and self._peek(1).kind is TokenKind.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).kind is TokenKind.OPERATOR
            and self._peek(2).value == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(expression=ast.Star(table=token.value))
        expr = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("column alias")
        elif self._peek().kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            alias = self._identifier()
        return ast.SelectItem(expression=expr, alias=alias)

    # -- FROM --------------------------------------------------------------

    def _parse_from_item(self) -> ast.FromItem:
        item = self._parse_from_primary()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                kind = "CROSS"
            elif self._at_keyword("INNER", "LEFT", "RIGHT", "FULL"):
                word = self._advance().value
                kind = "INNER" if word == "INNER" else word
                self._accept_keyword("OUTER")
            elif self._at_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return item
            self._expect_keyword("JOIN")
            right = self._parse_from_primary()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._parse_expression()
            item = ast.Join(kind=kind, left=item, right=right, condition=condition)

    def _parse_from_primary(self) -> ast.FromItem:
        if self._accept_punct("("):
            if self._at_keyword("SELECT") or self._at_punct("("):
                subquery = self._parse_select()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._identifier("derived-table alias")
                return ast.SubqueryRef(subquery=subquery, alias=alias)
            item = self._parse_from_item()
            self._expect_punct(")")
            return item
        name = self._identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._identifier("table alias")
        elif self._peek().kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            alias = self._identifier()
        return ast.TableRef(name=name, alias=alias)

    # -- expressions -------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp(op="OR", left=left, right=self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp(op="AND", left=left, right=self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        if self._at_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return ast.ExistsPredicate(subquery=subquery)
        left = self._parse_additive()
        while True:
            negated = False
            if self._at_keyword("NOT") and self._peek(1).is_keyword("IN", "LIKE", "BETWEEN"):
                self._advance()
                negated = True
            if self._accept_keyword("IS"):
                is_not = bool(self._accept_keyword("NOT"))
                self._expect_keyword("NULL")
                left = ast.IsNullPredicate(operand=left, negated=is_not)
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.BetweenPredicate(operand=left, low=low, high=high, negated=negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._parse_additive()
                escape = None
                if self._accept_keyword("ESCAPE"):
                    escape = self._parse_additive()
                left = ast.LikePredicate(operand=left, pattern=pattern, escape=escape, negated=negated)
                continue
            if self._accept_keyword("IN"):
                self._expect_punct("(")
                if self._at_keyword("SELECT") or self._at_subquery():
                    subquery = self._parse_select()
                    self._expect_punct(")")
                    left = ast.InPredicate(operand=left, subquery=subquery, negated=negated)
                else:
                    values = [self._parse_expression()]
                    while self._accept_punct(","):
                        values.append(self._parse_expression())
                    self._expect_punct(")")
                    left = ast.InPredicate(operand=left, values=values, negated=negated)
                continue
            op = self._accept_operator(*_COMPARISON_OPS)
            if op:
                right = self._parse_additive()
                if op == "!=":
                    op = "<>"
                left = ast.BinaryOp(op=op, left=left, right=right)
                continue
            if negated:
                token = self._peek()
                raise ParseError(f"dangling NOT at line {token.line}")
            return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if not op:
                return left
            left = ast.BinaryOp(op=op, left=left, right=self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if not op:
                return left
            left = ast.BinaryOp(op=op, left=left, right=self._parse_unary())

    def _parse_unary(self) -> ast.Expression:
        op = self._accept_operator("-", "+")
        if op:
            operand = self._parse_unary()
            if op == "-":
                return ast.UnaryOp(op="-", operand=operand)
            return operand
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Literal(self._number_value(token.value))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if self._at_punct("?"):
            self._advance()
            parameter = ast.Parameter(index=self.parameter_count)
            self.parameter_count += 1
            return parameter
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword(*_AGGREGATE_KEYWORDS) and self._peek(1).value == "(":
            return self._parse_function_call(self._advance().value)
        if self._at_punct("("):
            self._advance()
            if self._at_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery=subquery)
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            if self._peek(1).kind is TokenKind.PUNCT and self._peek(1).value == "(":
                name = self._advance().value.upper()
                return self._parse_function_call(name)
            return self._parse_column_ref()
        raise ParseError(f"unexpected {token.value!r} at line {token.line}")

    @staticmethod
    def _number_value(text: str) -> Union[int, float, Decimal]:
        if "e" in text or "E" in text:
            return float(text)
        if "." in text:
            return Decimal(text)
        return int(text)

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = self._identifier("column name")
        if self._at_punct(".") and self._peek(1).kind in (
            TokenKind.IDENTIFIER,
            TokenKind.QUOTED_IDENTIFIER,
        ):
            self._advance()
            second = self._identifier("column name")
            return ast.ColumnRef(name=second, table=first)
        return ast.ColumnRef(name=first)

    def _parse_function_call(self, name: str) -> ast.FunctionCall:
        self._expect_punct("(")
        if self._at_operator("*"):
            self._advance()
            self._expect_punct(")")
            return ast.FunctionCall(name=name, args=[], star=True)
        if self._accept_punct(")"):
            return ast.FunctionCall(name=name, args=[])
        distinct = bool(self._accept_keyword("DISTINCT"))
        args = [self._parse_expression()]
        while self._accept_punct(","):
            args.append(self._parse_expression())
        self._expect_punct(")")
        return ast.FunctionCall(name=name, args=args, distinct=distinct)

    def _parse_cast(self) -> ast.CastExpr:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._parse_expression()
        self._expect_keyword("AS")
        type_name, type_args = self._parse_type()
        self._expect_punct(")")
        return ast.CastExpr(operand=operand, type_name=type_name, type_args=type_args)

    def _parse_case(self) -> ast.CaseExpr:
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self._parse_expression()
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            when = self._parse_expression()
            self._expect_keyword("THEN")
            then = self._parse_expression()
            branches.append((when, then))
        if not branches:
            token = self._peek()
            raise ParseError(f"CASE without WHEN at line {token.line}")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        return ast.CaseExpr(operand=operand, branches=branches, else_result=else_result)

    # -- types -------------------------------------------------------------

    def _parse_type(self) -> tuple[str, tuple[Optional[int], Optional[int]]]:
        words = [self._identifier("type name").upper()]
        # Multi-word type names: DOUBLE PRECISION, CHARACTER VARYING, ...
        while self._peek().kind is TokenKind.IDENTIFIER and words[-1] in (
            "DOUBLE",
            "CHARACTER",
            "CHAR",
            "LONG",
        ):
            follower = self._peek().value.upper()
            if follower in ("PRECISION", "VARYING"):
                self._advance()
                words.append(follower)
            else:
                break
        name = " ".join(words)
        args: tuple[Optional[int], Optional[int]] = (None, None)
        if self._accept_punct("("):
            first = self._peek()
            if first.kind is not TokenKind.NUMBER:
                raise ParseError(f"expected type length at line {first.line}")
            self._advance()
            second = None
            if self._accept_punct(","):
                tok = self._peek()
                if tok.kind is not TokenKind.NUMBER:
                    raise ParseError(f"expected type scale at line {tok.line}")
                self._advance()
                second = int(tok.value)
            self._expect_punct(")")
            args = (int(first.value), second)
        return name, args

    # -- DDL ---------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        unique = bool(self._accept_keyword("UNIQUE"))
        clustered = False
        token = self._peek()
        if token.kind is TokenKind.IDENTIFIER and token.value.upper() in (
            "CLUSTERED",
            "NONCLUSTERED",
        ):
            clustered = token.value.upper() == "CLUSTERED"
            self._advance()
        if self._accept_keyword("INDEX"):
            return self._parse_create_index(unique=unique, clustered=clustered)
        if unique or clustered:
            raise ParseError("UNIQUE/CLUSTERED only apply to CREATE INDEX")
        if self._accept_keyword("TABLE"):
            return self._parse_create_table()
        if self._accept_keyword("VIEW"):
            return self._parse_create_view()
        token = self._peek()
        raise ParseError(f"unsupported CREATE {token.value!r} at line {token.line}")

    def _parse_create_index(self, unique: bool, clustered: bool) -> ast.CreateIndex:
        name = self._identifier("index name")
        self._expect_keyword("ON")
        table = self._identifier("table name")
        self._expect_punct("(")
        columns = [self._identifier("column name")]
        while self._accept_punct(","):
            columns.append(self._identifier("column name"))
        self._expect_punct(")")
        return ast.CreateIndex(
            name=name, table=table, columns=columns, unique=unique, clustered=clustered
        )

    def _parse_create_table(self) -> ast.CreateTable:
        name = self._identifier("table name")
        self._expect_punct("(")
        columns: list[ast.ColumnSpec] = []
        constraints: list[ast.TableConstraint] = []
        while True:
            if self._at_keyword("PRIMARY", "UNIQUE", "CHECK", "CONSTRAINT") or self._at_keyword(
                "FOREIGN"
            ):
                constraints.append(self._parse_table_constraint())
            else:
                columns.append(self._parse_column_spec())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return ast.CreateTable(name=name, columns=columns, constraints=constraints)

    def _parse_table_constraint(self) -> ast.TableConstraint:
        name = None
        if self._accept_keyword("CONSTRAINT"):
            name = self._identifier("constraint name")
        if self._accept_keyword("PRIMARY"):
            self._expect_keyword("KEY")
            return ast.TableConstraint(
                kind="PRIMARY KEY", columns=self._parse_column_name_list(), name=name
            )
        if self._accept_keyword("UNIQUE"):
            return ast.TableConstraint(
                kind="UNIQUE", columns=self._parse_column_name_list(), name=name
            )
        if self._accept_keyword("CHECK"):
            self._expect_punct("(")
            expr = self._parse_expression()
            self._expect_punct(")")
            return ast.TableConstraint(kind="CHECK", check=expr, name=name)
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.value == "FOREIGN":
            raise ParseError("FOREIGN KEY table constraints are not supported")
        raise ParseError(f"unsupported table constraint at line {token.line}")

    def _parse_column_name_list(self) -> list[str]:
        self._expect_punct("(")
        columns = [self._identifier("column name")]
        while self._accept_punct(","):
            columns.append(self._identifier("column name"))
        self._expect_punct(")")
        return columns

    def _parse_column_spec(self) -> ast.ColumnSpec:
        name = self._identifier("column name")
        type_name, type_args = self._parse_type()
        spec = ast.ColumnSpec(name=name, type_name=type_name, type_args=type_args)
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                spec.not_null = True
            elif self._accept_keyword("NULL"):
                pass
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                spec.primary_key = True
                spec.not_null = True
            elif self._accept_keyword("UNIQUE"):
                spec.unique = True
            elif self._accept_keyword("DEFAULT"):
                spec.default = self._parse_unary()
            elif self._accept_keyword("CHECK"):
                self._expect_punct("(")
                spec.check = self._parse_expression()
                self._expect_punct(")")
            elif self._accept_keyword("REFERENCES"):
                table = self._identifier("referenced table")
                column = None
                if self._accept_punct("("):
                    column = self._identifier("referenced column")
                    self._expect_punct(")")
                spec.references = (table, column)
            else:
                return spec

    def _parse_create_view(self) -> ast.CreateView:
        name = self._identifier("view name")
        column_names = None
        if self._at_punct("("):
            column_names = self._parse_column_name_list()
        self._expect_keyword("AS")
        query = self._parse_select()
        return ast.CreateView(name=name, query=query, column_names=column_names)

    def _parse_drop(self) -> ast.Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            return ast.DropTable(name=self._identifier("table name"))
        if self._accept_keyword("VIEW"):
            return ast.DropView(name=self._identifier("view name"))
        if self._accept_keyword("INDEX"):
            return ast.DropIndex(name=self._identifier("index name"))
        token = self._peek()
        raise ParseError(f"unsupported DROP {token.value!r} at line {token.line}")

    def _parse_alter(self) -> ast.Statement:
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        table = self._identifier("table name")
        self._expect_keyword("ADD")
        self._accept_keyword("COLUMN")
        column = self._parse_column_spec()
        return ast.AlterTableAddColumn(table=table, column=column)

    # -- DML ---------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._identifier("table name")
        columns = None
        if self._at_punct("("):
            columns = self._parse_column_name_list()
        if self._accept_keyword("VALUES"):
            rows = [self._parse_values_row()]
            while self._accept_punct(","):
                rows.append(self._parse_values_row())
            return ast.Insert(table=table, columns=columns, rows=rows)
        if self._at_keyword("SELECT") or self._at_punct("("):
            return ast.Insert(table=table, columns=columns, query=self._parse_select())
        token = self._peek()
        raise ParseError(f"expected VALUES or SELECT at line {token.line}")

    def _parse_values_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        row = [self._parse_expression()]
        while self._accept_punct(","):
            row.append(self._parse_expression())
        self._expect_punct(")")
        return row

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> tuple[str, ast.Expression]:
        column = self._identifier("column name")
        token = self._peek()
        if not (token.kind is TokenKind.OPERATOR and token.value == "="):
            raise ParseError(f"expected '=' at line {token.line}")
        self._advance()
        return column, self._parse_expression()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._identifier("table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.Delete(table=table, where=where)


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement (trailing semicolon allowed)."""
    parser = Parser(text)
    statement = parser.parse_statement()
    while parser._accept_punct(";"):
        pass
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {token.value!r} at line {token.line}")
    return statement


def parse_prepared(text: str) -> tuple[ast.Statement, int]:
    """Parse exactly one statement, returning it with its ``?`` count."""
    parser = Parser(text)
    statement = parser.parse_statement()
    while parser._accept_punct(";"):
        pass
    token = parser._peek()
    if token.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {token.value!r} at line {token.line}")
    return statement, parser.parameter_count


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a semicolon-separated script."""
    return Parser(text).parse_script()
