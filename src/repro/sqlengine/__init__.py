"""A from-scratch, in-memory SQL engine.

This package is the substrate the reproduction runs on: the four diverse
"server products" in :mod:`repro.servers` are instances of this engine
configured with different dialect descriptors and fault catalogs.

The public surface is:

* :class:`repro.sqlengine.engine.Engine` — one database instance; accepts
  SQL text and returns :class:`repro.sqlengine.engine.Result`.
* :class:`repro.sqlengine.engine.Connection` — a DB-API-flavoured session
  with transaction state.
* :func:`repro.sqlengine.parser.parse_script` /
  :func:`repro.sqlengine.parser.parse_statement` — standalone parsing, used
  by the dialect translator and feature extractor.
"""

from repro.sqlengine.engine import Connection, Engine, EnginePrepared, Result
from repro.sqlengine.params import count_placeholders, render_param, substitute_params

__all__ = [
    "Connection",
    "Engine",
    "EnginePrepared",
    "Result",
    "count_placeholders",
    "render_param",
    "substitute_params",
]
