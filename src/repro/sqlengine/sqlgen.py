"""AST -> SQL rendering and NULL-rich predicate generation.

Turns statement/expression trees back into executable SQL text.  Used
by the query-rephrasing wrapper (which transforms ASTs and needs to run
the result) and by tests that check transform round-trips.

The generation half (:class:`PredicateGenerator`) produces the hunt
campaign's workload: a fixed two-table schema whose rows are seeded
with a high NULL rate, plus deterministic random WHERE/CASE predicates
biased towards three-valued-logic traps (NULL-able comparisons, IN
lists containing NULL, composite NULL tests, CASE arms falling through
to NULL).  Everything is built as an AST and rendered through the
functions above, so generated text always reparses.
"""

from __future__ import annotations

import random
from decimal import Decimal
from typing import Any, Optional, Union

from repro.errors import ReproError
from repro.sqlengine import ast_nodes as ast


def render_statement(stmt: ast.Statement) -> str:
    """Render any supported statement back to SQL."""
    if isinstance(stmt, ast.SelectStatement):
        return render_select(stmt)
    if isinstance(stmt, ast.Insert):
        return _render_insert(stmt)
    if isinstance(stmt, ast.Update):
        return _render_update(stmt)
    if isinstance(stmt, ast.Delete):
        where = f" WHERE {render_expression(stmt.where)}" if stmt.where else ""
        return f"DELETE FROM {stmt.table}{where}"
    if isinstance(stmt, ast.CreateView):
        columns = f" ({', '.join(stmt.column_names)})" if stmt.column_names else ""
        return f"CREATE VIEW {stmt.name}{columns} AS {render_select(stmt.query)}"
    if isinstance(stmt, ast.DropTable):
        return f"DROP TABLE {stmt.name}"
    if isinstance(stmt, ast.DropView):
        return f"DROP VIEW {stmt.name}"
    if isinstance(stmt, ast.DropIndex):
        return f"DROP INDEX {stmt.name}"
    if isinstance(stmt, ast.BeginTransaction):
        return "BEGIN"
    if isinstance(stmt, ast.Commit):
        return "COMMIT"
    if isinstance(stmt, ast.Rollback):
        return f"ROLLBACK TO SAVEPOINT {stmt.savepoint}" if stmt.savepoint else "ROLLBACK"
    if isinstance(stmt, ast.Savepoint):
        return f"SAVEPOINT {stmt.name}"
    if isinstance(stmt, ast.CreateIndex):
        unique = "UNIQUE " if stmt.unique else ""
        clustered = "CLUSTERED " if stmt.clustered else ""
        return (
            f"CREATE {unique}{clustered}INDEX {stmt.name} ON {stmt.table} "
            f"({', '.join(stmt.columns)})"
        )
    if isinstance(stmt, ast.CreateTable):
        items = [_render_column_spec(column) for column in stmt.columns]
        items.extend(_render_table_constraint(c) for c in stmt.constraints)
        return f"CREATE TABLE {stmt.name} ({', '.join(items)})"
    if isinstance(stmt, ast.AlterTableAddColumn):
        return (
            f"ALTER TABLE {stmt.table} ADD COLUMN "
            f"{_render_column_spec(stmt.column)}"
        )
    raise ReproError(f"cannot render {type(stmt).__name__}")


def _render_type(type_name: str, type_args: tuple) -> str:
    first, second = type_args
    if first is not None and second is not None:
        return f"{type_name}({first},{second})"
    if first is not None:
        return f"{type_name}({first})"
    return type_name


def _render_column_spec(column: ast.ColumnSpec) -> str:
    parts = [column.name, _render_type(column.type_name, column.type_args)]
    if column.not_null:
        parts.append("NOT NULL")
    if column.primary_key:
        parts.append("PRIMARY KEY")
    if column.unique:
        parts.append("UNIQUE")
    if column.default is not None:
        parts.append(f"DEFAULT {render_expression(column.default)}")
    if column.check is not None:
        parts.append(f"CHECK ({render_expression(column.check)})")
    if column.references is not None:
        table, ref_column = column.references
        target = f"{table} ({ref_column})" if ref_column else table
        parts.append(f"REFERENCES {target}")
    return " ".join(parts)


def _render_table_constraint(constraint: ast.TableConstraint) -> str:
    prefix = f"CONSTRAINT {constraint.name} " if constraint.name else ""
    if constraint.kind == "CHECK":
        return f"{prefix}CHECK ({render_expression(constraint.check)})"
    text = f"{prefix}{constraint.kind} ({', '.join(constraint.columns)})"
    if constraint.kind == "FOREIGN KEY" and constraint.references is not None:
        table, columns = constraint.references
        target = f"{table} ({', '.join(columns)})" if columns else table
        text += f" REFERENCES {target}"
    return text


def _render_insert(stmt: ast.Insert) -> str:
    columns = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
    if stmt.rows is not None:
        rows = ", ".join(
            "(" + ", ".join(render_expression(value) for value in row) + ")"
            for row in stmt.rows
        )
        return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"
    return f"INSERT INTO {stmt.table}{columns} {render_select(stmt.query)}"


def _render_update(stmt: ast.Update) -> str:
    assignments = ", ".join(
        f"{column} = {render_expression(value)}" for column, value in stmt.assignments
    )
    where = f" WHERE {render_expression(stmt.where)}" if stmt.where else ""
    return f"UPDATE {stmt.table} SET {assignments}{where}"


def render_select(stmt: ast.SelectStatement) -> str:
    text = _render_body(stmt.body)
    if stmt.order_by:
        items = ", ".join(
            render_expression(item.expression) + (" DESC" if item.descending else "")
            for item in stmt.order_by
        )
        text += f" ORDER BY {items}"
    if stmt.limit is not None:
        text += f" LIMIT {stmt.limit}"
    return text


def _render_body(body: Union[ast.SelectCore, ast.SetOperation]) -> str:
    if isinstance(body, ast.SetOperation):
        op = body.op + (" ALL" if body.all else "")
        return f"({_render_body(body.left)}) {op} ({_render_body(body.right)})"
    return _render_core(body)


def _render_core(core: ast.SelectCore) -> str:
    parts = ["SELECT"]
    if core.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in core.items))
    if core.from_items:
        parts.append("FROM " + ", ".join(_render_from_item(item) for item in core.from_items))
    if core.where is not None:
        parts.append("WHERE " + render_expression(core.where))
    if core.group_by:
        parts.append("GROUP BY " + ", ".join(render_expression(e) for e in core.group_by))
    if core.having is not None:
        parts.append("HAVING " + render_expression(core.having))
    return " ".join(parts)


def _render_select_item(item: ast.SelectItem) -> str:
    if isinstance(item.expression, ast.Star):
        return f"{item.expression.table}.*" if item.expression.table else "*"
    text = render_expression(item.expression)
    return f"{text} AS {item.alias}" if item.alias else text


def _render_from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.TableRef):
        return f"{item.name} {item.alias}" if item.alias else item.name
    if isinstance(item, ast.SubqueryRef):
        return f"({render_select(item.subquery)}) {item.alias}"
    if isinstance(item, ast.Join):
        left = _render_from_item(item.left)
        right = _render_from_item(item.right)
        if item.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = {"INNER": "JOIN", "LEFT": "LEFT OUTER JOIN",
                   "RIGHT": "RIGHT OUTER JOIN", "FULL": "FULL OUTER JOIN"}[item.kind]
        return f"{left} {keyword} {right} ON {render_expression(item.condition)}"
    raise ReproError(f"cannot render from-item {type(item).__name__}")


def render_expression(expr: ast.Expression) -> str:
    if isinstance(expr, ast.Literal):
        return _render_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return expr.qualified
    if isinstance(expr, ast.Star):
        return "*"
    if isinstance(expr, ast.Parameter):
        return "?"
    if isinstance(expr, ast.BinaryOp):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {render_expression(expr.operand)})"
        return f"({expr.op}{render_expression(expr.operand)})"
    if isinstance(expr, ast.FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        distinct = "DISTINCT " if expr.distinct else ""
        args = ", ".join(render_expression(arg) for arg in expr.args)
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.CastExpr):
        first, second = expr.type_args
        if first is not None and second is not None:
            type_text = f"{expr.type_name}({first},{second})"
        elif first is not None:
            type_text = f"{expr.type_name}({first})"
        else:
            type_text = expr.type_name
        return f"CAST({render_expression(expr.operand)} AS {type_text})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expression(expr.operand))
        for when, then in expr.branches:
            parts.append(f"WHEN {render_expression(when)} THEN {render_expression(then)}")
        if expr.else_result is not None:
            parts.append(f"ELSE {render_expression(expr.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.IsNullPredicate):
        negation = " NOT" if expr.negated else ""
        return f"({render_expression(expr.operand)} IS{negation} NULL)"
    if isinstance(expr, ast.BetweenPredicate):
        negation = "NOT " if expr.negated else ""
        return (
            f"({render_expression(expr.operand)} {negation}BETWEEN "
            f"{render_expression(expr.low)} AND {render_expression(expr.high)})"
        )
    if isinstance(expr, ast.LikePredicate):
        negation = "NOT " if expr.negated else ""
        escape = f" ESCAPE {render_expression(expr.escape)}" if expr.escape else ""
        return (
            f"({render_expression(expr.operand)} {negation}LIKE "
            f"{render_expression(expr.pattern)}{escape})"
        )
    if isinstance(expr, ast.InPredicate):
        negation = "NOT " if expr.negated else ""
        if expr.subquery is not None:
            inner = render_select(expr.subquery)
        else:
            inner = ", ".join(render_expression(value) for value in expr.values)
        return f"({render_expression(expr.operand)} {negation}IN ({inner}))"
    if isinstance(expr, ast.ExistsPredicate):
        negation = "NOT " if expr.negated else ""
        return f"({negation}EXISTS ({render_select(expr.subquery)}))"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({render_select(expr.subquery)})"
    raise ReproError(f"cannot render expression {type(expr).__name__}")


def _render_literal(value) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, (int, Decimal)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    raise ReproError(f"cannot render literal {value!r}")

# -- NULL-rich predicate generation ------------------------------------------

#: The hunt schema: ``hunt`` is the table predicates range over (three
#: nullable columns, one NOT NULL); ``decoy`` exists so static
#: minimization has something to drop from repro scripts.
HUNT_TABLE = (
    "CREATE TABLE hunt (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, "
    "c VARCHAR(8), d INTEGER NOT NULL)"
)
DECOY_TABLE = "CREATE TABLE decoy (k INTEGER PRIMARY KEY, note VARCHAR(8))"

_NUMERIC_COLUMNS = ("a", "b", "d")
_STRING_VALUES = ("a", "b", "ab", "abc", "x", "")
_LIKE_PATTERNS = ("a%", "%b", "%a%", "ab", "_b%")


class PredicateGenerator:
    """Deterministic NULL-rich query generation for the hunt campaign.

    One instance owns a private :class:`random.Random` stream, the
    generated row set (for PQS-style pivot picking), and the schema
    script.  Generated predicates stay inside the universally-portable
    SQL subset except for CASE (gated off Interbase) — callers filter
    per product with the static portability verdict.
    """

    def __init__(self, *, seed: int = 0, rows: int = 24, null_rate: float = 0.3) -> None:
        self._rng = random.Random(seed)
        self.null_rate = null_rate
        self.rows: list[dict[str, Any]] = []
        for index in range(1, rows + 1):
            self.rows.append(
                {
                    "id": index,
                    "a": self._maybe_null(self._small_int),
                    "b": self._maybe_null(self._small_int),
                    "c": self._maybe_null(
                        lambda: self._rng.choice(_STRING_VALUES)
                    ),
                    "d": self._rng.randint(0, 9),
                }
            )

    def _maybe_null(self, make):
        return None if self._rng.random() < self.null_rate else make()

    def _small_int(self) -> int:
        return self._rng.randint(-5, 9)

    # -- schema ------------------------------------------------------------

    def schema_statements(self) -> list[str]:
        """DDL plus NULL-rich INSERTs (and decoy traffic) for the hunt."""
        statements = [HUNT_TABLE, DECOY_TABLE]
        for row in self.rows:
            values = ", ".join(
                _render_literal(row[column]) for column in ("id", "a", "b", "c", "d")
            )
            statements.append(
                f"INSERT INTO hunt (id, a, b, c, d) VALUES ({values})"
            )
        for index in range(1, 5):
            statements.append(
                f"INSERT INTO decoy (k, note) VALUES ({index}, 'n{index}')"
            )
        return statements

    # -- predicate grammar -------------------------------------------------

    def _numeric_term(self, depth: int) -> ast.Expression:
        roll = self._rng.random()
        if depth <= 0 or roll < 0.45:
            return ast.ColumnRef(self._rng.choice(_NUMERIC_COLUMNS))
        if roll < 0.7:
            return ast.Literal(self._small_int())
        if roll < 0.8:
            return ast.Literal(None)
        op = self._rng.choice(("+", "-", "*"))
        return ast.BinaryOp(
            op, self._numeric_term(depth - 1), self._numeric_term(depth - 1)
        )

    def _comparison(self, depth: int) -> ast.Expression:
        op = self._rng.choice(("=", "<>", "<", "<=", ">", ">="))
        if self._rng.random() < 0.2:
            left: ast.Expression = ast.ColumnRef("c")
            right: ast.Expression = ast.Literal(
                None
                if self._rng.random() < 0.2
                else self._rng.choice(_STRING_VALUES)
            )
        else:
            left = self._numeric_term(depth)
            right = self._numeric_term(depth)
        return ast.BinaryOp(op, left, right)

    def _leaf(self, depth: int, *, allow_case: bool) -> ast.Expression:
        roll = self._rng.random()
        if roll < 0.45:
            return self._comparison(depth)
        if roll < 0.6:
            operand: ast.Expression = (
                self._numeric_term(depth)
                if self._rng.random() < 0.6
                else ast.ColumnRef(self._rng.choice(("a", "b", "c")))
            )
            return ast.IsNullPredicate(operand, negated=self._rng.random() < 0.3)
        if roll < 0.72:
            return ast.BetweenPredicate(
                self._numeric_term(depth),
                ast.Literal(self._small_int()),
                ast.Literal(self._small_int()),
                negated=self._rng.random() < 0.3,
            )
        if roll < 0.86:
            values: list[ast.Expression] = [
                ast.Literal(self._small_int())
                for _ in range(self._rng.randint(1, 3))
            ]
            if self._rng.random() < 0.5:
                values.append(ast.Literal(None))
            return ast.InPredicate(
                ast.ColumnRef(self._rng.choice(_NUMERIC_COLUMNS)),
                values=values,
                negated=self._rng.random() < 0.4,
            )
        if roll < 0.94 or not allow_case:
            return ast.LikePredicate(
                ast.ColumnRef("c"),
                ast.Literal(self._rng.choice(_LIKE_PATTERNS)),
                negated=self._rng.random() < 0.3,
            )
        # Searched CASE used as a predicate, arms falling through to
        # NULL or answering UNKNOWN outright.
        branches = [
            (self._comparison(depth), ast.Literal(True)),
            (
                ast.IsNullPredicate(
                    ast.ColumnRef(self._rng.choice(("a", "b", "c")))
                ),
                ast.Literal(self._rng.choice((None, False))),
            ),
        ]
        else_result = self._rng.choice(
            (ast.Literal(False), ast.Literal(None), None)
        )
        return ast.CaseExpr(None, branches, else_result)

    def predicate(self, depth: int = 2, *, allow_case: bool = True) -> ast.Expression:
        """One random NULL-rich boolean expression."""
        if depth <= 0:
            return self._leaf(0, allow_case=allow_case)
        roll = self._rng.random()
        if roll < 0.35:
            return ast.BinaryOp(
                self._rng.choice(("AND", "OR")),
                self.predicate(depth - 1, allow_case=allow_case),
                self.predicate(depth - 1, allow_case=allow_case),
            )
        if roll < 0.5:
            return ast.UnaryOp(
                "NOT", self.predicate(depth - 1, allow_case=allow_case)
            )
        return self._leaf(depth, allow_case=allow_case)

    # -- statement generation ------------------------------------------------

    def select_statement(self, *, allow_case: bool = True) -> str:
        """A hunt SELECT with a fresh random WHERE predicate."""
        where = self.predicate(2, allow_case=allow_case)
        stmt = ast.SelectStatement(
            body=ast.SelectCore(
                items=[
                    ast.SelectItem(ast.ColumnRef(name))
                    for name in ("id", "a", "b", "c", "d")
                ],
                from_items=[ast.TableRef("hunt")],
                where=where,
            )
        )
        return render_statement(stmt)

    def pivot_case(self) -> tuple[str, int]:
        """A PQS-style pivot query: ``(sql, pivot id)``.

        The predicate is constructed to be TRUE on the chosen pivot row
        (per-column equality, with ``IS NULL`` standing in for NULL
        cells), so the pivot row must appear in the result on every
        correct product.
        """
        pivot = self._rng.choice(self.rows)
        columns = list(self._rng.sample(("a", "b", "c", "d"), self._rng.randint(2, 3)))
        conjuncts: list[ast.Expression] = []
        for column in columns:
            value = pivot[column]
            if value is None:
                conjuncts.append(ast.IsNullPredicate(ast.ColumnRef(column)))
            else:
                conjuncts.append(
                    ast.BinaryOp("=", ast.ColumnRef(column), ast.Literal(value))
                )
        where: ast.Expression = conjuncts[0]
        for conjunct in conjuncts[1:]:
            where = ast.BinaryOp("AND", where, conjunct)
        if self._rng.random() < 0.3:
            # OR-ing noise keeps the pivot row selected.
            where = ast.BinaryOp(
                "OR", where, self.predicate(1, allow_case=False)
            )
        stmt = ast.SelectStatement(
            body=ast.SelectCore(
                items=[ast.SelectItem(ast.ColumnRef("id"))],
                from_items=[ast.TableRef("hunt")],
                where=where,
            )
        )
        return render_statement(stmt), pivot["id"]
