"""Resolution of dialect type-name spellings to engine types.

The superset of the four products' spellings resolves here; which
spellings a given *server* accepts is a dialect concern
(:mod:`repro.dialects`), applied before execution.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TypeMismatch
from repro.sqlengine.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    SqlType,
    TIMESTAMP,
    char,
    numeric,
    varchar,
)

_INTEGER_NAMES = {"INTEGER", "INT", "INT4"}
_SMALLINT_NAMES = {"SMALLINT", "INT2"}
_BIGINT_NAMES = {"BIGINT", "INT8"}
_DECIMAL_NAMES = {"NUMERIC", "DECIMAL", "DEC", "NUMBER"}
_FLOAT_NAMES = {"FLOAT", "REAL", "DOUBLE PRECISION"}
_CHAR_NAMES = {"CHAR", "CHARACTER", "NCHAR"}
_VARCHAR_NAMES = {"VARCHAR", "CHARACTER VARYING", "VARCHAR2", "NVARCHAR", "TEXT"}
_DATE_NAMES = {"DATE"}
_TIMESTAMP_NAMES = {"TIMESTAMP", "DATETIME"}
_BOOLEAN_NAMES = {"BOOLEAN", "BOOL"}

ALL_TYPE_NAMES = frozenset(
    _INTEGER_NAMES
    | _SMALLINT_NAMES
    | _BIGINT_NAMES
    | _DECIMAL_NAMES
    | _FLOAT_NAMES
    | _CHAR_NAMES
    | _VARCHAR_NAMES
    | _DATE_NAMES
    | _TIMESTAMP_NAMES
    | _BOOLEAN_NAMES
)


def resolve_type(
    name: str, args: tuple[Optional[int], Optional[int]] = (None, None)
) -> SqlType:
    """Resolve a type spelling plus optional (length|precision, scale)."""
    upper = name.upper()
    first, second = args
    if upper in _INTEGER_NAMES:
        return INTEGER
    if upper in _SMALLINT_NAMES:
        return SMALLINT
    if upper in _BIGINT_NAMES:
        return BIGINT
    if upper in _DECIMAL_NAMES:
        precision = first if first is not None else 18
        scale = second if second is not None else 0
        return numeric(precision, scale, name=upper)
    if upper in _FLOAT_NAMES:
        return FLOAT if upper == "FLOAT" else DOUBLE
    if upper in _CHAR_NAMES:
        return char(first if first is not None else 1, name=upper)
    if upper in _VARCHAR_NAMES:
        if upper == "TEXT":
            return varchar(65535, name="TEXT")
        return varchar(first if first is not None else 255, name=upper)
    if upper in _DATE_NAMES:
        return DATE
    if upper in _TIMESTAMP_NAMES:
        return TIMESTAMP
    if upper in _BOOLEAN_NAMES:
        return BOOLEAN
    raise TypeMismatch(f"unknown type name {name!r}")
