"""Expression evaluation over row environments.

The evaluator is shared by WHERE/HAVING filters, select-list projection,
GROUP BY keys, CHECK constraints, and DEFAULT expressions.  Correlated
subqueries work through an :class:`Environment` chain; the executor
injects a ``subquery_runner`` callback so this module stays free of a
circular import on the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import BindError, TypeMismatch
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.functions import AGGREGATE_NAMES, lookup_scalar
from repro.sqlengine.types import SqlType, cast_value
from repro.sqlengine.values import (
    distinct_key,
    like_match,
    sql_add,
    sql_compare,
    sql_concat,
    sql_div,
    sql_mul,
    sql_neg,
    sql_sub,
    tri_and,
    tri_not,
    tri_or,
)


@dataclass(frozen=True)
class ColumnBinding:
    """One addressable column of a relation: ``label.name``."""

    label: str  # table alias / table name / derived-table alias ('' if none)
    name: str

    def matches(self, name: str, table: Optional[str]) -> bool:
        if self.name.lower() != name.lower():
            return False
        if table is None:
            return True
        return self.label.lower() == table.lower()


#: Sentinel stored in a resolution map for references matching more than
#: one column (looking them up is an error, not a miss).
_AMBIGUOUS = -1

#: Resolution maps keyed on the identity of a column-binding list.  The
#: executor builds one binding list per scanned relation and then one
#: Environment per row, so resolving each (name, table) reference against
#: the bindings once per relation — instead of once per row per reference
#: — takes the scan's predicate evaluation from O(rows x width) lookups
#: to O(rows).  Entries hold a strong reference to the binding list so
#: the id key cannot be reused while the entry is alive; the cache is
#: bounded by eviction in insertion order.
_RESOLUTIONS: dict[int, tuple[Sequence["ColumnBinding"], dict]] = {}
_RESOLUTION_CACHE_SIZE = 256


def _resolution_map(columns: Sequence["ColumnBinding"]) -> dict:
    cached = _RESOLUTIONS.get(id(columns))
    if cached is not None and cached[0] is columns:
        return cached[1]
    resolution: dict = {}
    for index, column in enumerate(columns):
        for key in (
            (column.name.lower(), None),
            (column.name.lower(), column.label.lower()),
        ):
            if key in resolution and resolution[key] != index:
                resolution[key] = _AMBIGUOUS
            else:
                resolution[key] = index
    if len(_RESOLUTIONS) >= _RESOLUTION_CACHE_SIZE:
        _RESOLUTIONS.pop(next(iter(_RESOLUTIONS)))
    _RESOLUTIONS[id(columns)] = (columns, resolution)
    return resolution


class Environment:
    """Column values visible while evaluating one row.

    ``aggregates`` maps ``id(FunctionCall node) -> value`` for aggregate
    calls pre-computed by the executor for the current group.
    """

    def __init__(
        self,
        columns: Sequence[ColumnBinding],
        row: Sequence[Any],
        outer: Optional["Environment"] = None,
        aggregates: Optional[dict[int, Any]] = None,
    ) -> None:
        self.columns = columns
        self.row = row
        self.outer = outer
        self.aggregates = aggregates or {}
        self._resolution: Optional[dict] = None

    def lookup(self, name: str, table: Optional[str]) -> Any:
        resolution = self._resolution
        if resolution is None:
            resolution = self._resolution = _resolution_map(self.columns)
        index = resolution.get((name.lower(), table.lower() if table else None))
        if index is not None:
            if index == _AMBIGUOUS:
                raise BindError(f"ambiguous column reference {name!r}")
            return self.row[index]
        if self.outer is not None:
            return self.outer.lookup(name, table)
        qualified = f"{table}.{name}" if table else name
        raise BindError(f"unknown column {qualified!r}")

    def lookup_ref(self, ref: ast.ColumnRef) -> Any:
        """:meth:`lookup` against a ColumnRef's pre-folded key."""
        resolution = self._resolution
        if resolution is None:
            resolution = self._resolution = _resolution_map(self.columns)
        index = resolution.get(ref.key)
        if index is not None:
            if index == _AMBIGUOUS:
                raise BindError(f"ambiguous column reference {ref.name!r}")
            return self.row[index]
        if self.outer is not None:
            return self.outer.lookup_ref(ref)
        raise BindError(f"unknown column {ref.qualified!r}")

    def aggregate_value(self, node: ast.FunctionCall) -> Any:
        try:
            return self.aggregates[id(node)]
        except KeyError:
            if self.outer is not None:
                return self.outer.aggregate_value(node)
            raise BindError(
                f"aggregate {node.name} used outside an aggregating query"
            ) from None


#: Runs a (possibly correlated) subquery, returning (column names, rows).
SubqueryRunner = Callable[[ast.SelectStatement, Optional[Environment]], "SubqueryResult"]


@dataclass
class SubqueryResult:
    columns: list[str]
    rows: list[tuple]


class Evaluator:
    """Evaluates expressions; stateless apart from its context handles."""

    def __init__(self, ctx, subquery_runner: Optional[SubqueryRunner] = None) -> None:
        self._ctx = ctx
        self._run_subquery = subquery_runner
        self._dispatch: dict[type, Any] = {}

    # -- public ------------------------------------------------------------

    def evaluate(self, expr: ast.Expression, env: Optional[Environment]) -> Any:
        node_type = type(expr)
        # Leaf fast paths: column references and literals are the vast
        # majority of nodes, and every predicate touches them once per
        # row — skip the dispatch indirection for them.
        if node_type is ast.ColumnRef:
            if env is None:
                raise BindError(
                    f"column {expr.qualified!r} used where no row is available"
                )
            return env.lookup_ref(expr)
        if node_type is ast.Literal:
            return expr.value
        method = self._dispatch.get(node_type)
        if method is None:
            method = getattr(self, f"_eval_{node_type.__name__.lower()}", None)
            if method is None:
                raise BindError(f"cannot evaluate {node_type.__name__}")
            self._dispatch[node_type] = method
        return method(expr, env)

    def truthy(self, expr: ast.Expression, env: Optional[Environment]) -> bool:
        """Evaluate a predicate; UNKNOWN filters the row out (SQL WHERE)."""
        return self.evaluate(expr, env) is True

    # -- node handlers -------------------------------------------------------

    def _eval_literal(self, expr: ast.Literal, env) -> Any:
        return expr.value

    def _eval_parameter(self, expr: ast.Parameter, env) -> Any:
        params = getattr(self._ctx, "params", ())
        if expr.index >= len(params):
            raise BindError(
                f"statement parameter {expr.index + 1} is not bound "
                f"({len(params)} value(s) supplied)"
            )
        return params[expr.index]

    def _eval_columnref(self, expr: ast.ColumnRef, env: Optional[Environment]) -> Any:
        if env is None:
            raise BindError(f"column {expr.qualified!r} used where no row is available")
        return env.lookup(expr.name, expr.table)

    def _eval_star(self, expr: ast.Star, env) -> Any:
        raise BindError("'*' is not a value expression here")

    def _eval_binaryop(self, expr: ast.BinaryOp, env) -> Any:
        op = expr.op
        if op == "AND":
            return tri_and(
                self._as_tribool(expr.left, env), self._as_tribool(expr.right, env)
            )
        if op == "OR":
            return tri_or(
                self._as_tribool(expr.left, env), self._as_tribool(expr.right, env)
            )
        # Operands are almost always column references or literals;
        # fetch those directly instead of recursing through evaluate().
        node = expr.left
        node_type = type(node)
        if node_type is ast.ColumnRef and env is not None:
            left = env.lookup_ref(node)
        elif node_type is ast.Literal:
            left = node.value
        else:
            left = self.evaluate(node, env)
        node = expr.right
        node_type = type(node)
        if node_type is ast.ColumnRef and env is not None:
            right = env.lookup_ref(node)
        elif node_type is ast.Literal:
            right = node.value
        else:
            right = self.evaluate(node, env)
        if op == "+":
            return sql_add(left, right)
        if op == "-":
            return sql_sub(left, right)
        if op == "*":
            return sql_mul(left, right)
        if op == "/":
            return sql_div(left, right)
        if op == "%":
            from repro.sqlengine.functions import fn_mod

            return fn_mod(self._ctx, left, right)
        if op == "||":
            return sql_concat(left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            cmp = sql_compare(left, right)
            if cmp is None:
                return None
            if op == "=":
                return cmp == 0
            if op == "<>":
                return cmp != 0
            if op == "<":
                return cmp < 0
            if op == "<=":
                return cmp <= 0
            if op == ">":
                return cmp > 0
            return cmp >= 0
        raise BindError(f"unknown operator {op!r}")  # pragma: no cover

    def _as_tribool(self, expr: ast.Expression, env) -> Optional[bool]:
        value = self.evaluate(expr, env)
        if value is None or isinstance(value, bool):
            return value
        raise TypeMismatch(f"expected a boolean condition, got {value!r}")

    def _flag(self, name: str) -> bool:
        """Behaviour flag from the owning engine's fault injector (False
        when evaluating outside an execution context)."""
        flag = getattr(self._ctx, "flag", None)
        return bool(flag is not None and flag(name))

    def _eval_unaryop(self, expr: ast.UnaryOp, env) -> Any:
        if expr.op == "NOT":
            value = self._as_tribool(expr.operand, env)
            if value is None and self._flag("fold_not_unknown_true"):
                return True
            return tri_not(value)
        if expr.op == "-":
            return sql_neg(self.evaluate(expr.operand, env))
        return self.evaluate(expr.operand, env)

    def _eval_functioncall(self, expr: ast.FunctionCall, env: Optional[Environment]) -> Any:
        if expr.name in AGGREGATE_NAMES:
            if env is None:
                raise BindError(f"aggregate {expr.name} needs a query context")
            return env.aggregate_value(expr)
        function = lookup_scalar(expr.name)
        args = [self.evaluate(arg, env) for arg in expr.args]
        return function(self._ctx, *args)

    def _eval_castexpr(self, expr: ast.CastExpr, env) -> Any:
        value = self.evaluate(expr.operand, env)
        target = self._resolve_type(expr.type_name, expr.type_args)
        return cast_value(value, target)

    def _resolve_type(self, name: str, args) -> SqlType:
        from repro.sqlengine.typenames import resolve_type

        return resolve_type(name, args)

    def _eval_caseexpr(self, expr: ast.CaseExpr, env) -> Any:
        if expr.operand is not None:
            subject = self.evaluate(expr.operand, env)
            for when, then in expr.branches:
                candidate = self.evaluate(when, env)
                if (
                    subject is not None
                    and candidate is not None
                    and sql_compare(subject, candidate) == 0
                ):
                    return self.evaluate(then, env)
        else:
            for when, then in expr.branches:
                if self._as_tribool(when, env) is True:
                    return self.evaluate(then, env)
        if expr.else_result is not None:
            return self.evaluate(expr.else_result, env)
        return None

    def _eval_isnullpredicate(self, expr: ast.IsNullPredicate, env) -> bool:
        value = self.evaluate(expr.operand, env)
        result = value is None
        if (
            result
            and not isinstance(
                expr.operand, (ast.ColumnRef, ast.Literal, ast.Parameter)
            )
            and self._flag("isnull_composite_false")
        ):
            result = False
        return not result if expr.negated else result

    def _eval_betweenpredicate(self, expr: ast.BetweenPredicate, env) -> Optional[bool]:
        value = self.evaluate(expr.operand, env)
        low = self.evaluate(expr.low, env)
        high = self.evaluate(expr.high, env)
        low_cmp = sql_compare(value, low) if (value is not None and low is not None) else None
        high_cmp = sql_compare(value, high) if (value is not None and high is not None) else None
        ge_low = None if low_cmp is None else low_cmp >= 0
        le_high = None if high_cmp is None else high_cmp <= 0
        result = tri_and(ge_low, le_high)
        return tri_not(result) if expr.negated else result

    def _eval_likepredicate(self, expr: ast.LikePredicate, env) -> Optional[bool]:
        value = self.evaluate(expr.operand, env)
        pattern = self.evaluate(expr.pattern, env)
        escape = self.evaluate(expr.escape, env) if expr.escape is not None else None
        result = like_match(value, pattern, escape)
        return tri_not(result) if expr.negated else result

    def _eval_inpredicate(self, expr: ast.InPredicate, env) -> Optional[bool]:
        value = self.evaluate(expr.operand, env)
        if expr.values is not None:
            candidates = [self.evaluate(item, env) for item in expr.values]
        else:
            result = self._subquery(expr.subquery, env)
            if result.rows and len(result.rows[0]) != 1:
                raise TypeMismatch("IN subquery must return exactly one column")
            candidates = [row[0] for row in result.rows]
        return self._in_semantics(value, candidates, expr.negated)

    @staticmethod
    def _in_semantics(value: Any, candidates: list[Any], negated: bool) -> Optional[bool]:
        if value is None:
            return None
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if distinct_key(candidate) == distinct_key(value) or sql_compare(value, candidate) == 0:
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False

    def _eval_existspredicate(self, expr: ast.ExistsPredicate, env) -> bool:
        result = self._subquery(expr.subquery, env)
        found = bool(result.rows)
        return not found if expr.negated else found

    def _eval_scalarsubquery(self, expr: ast.ScalarSubquery, env) -> Any:
        result = self._subquery(expr.subquery, env)
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise TypeMismatch("scalar subquery returned more than one row")
        if len(result.rows[0]) != 1:
            raise TypeMismatch("scalar subquery must return exactly one column")
        return result.rows[0][0]

    def _subquery(self, stmt: ast.SelectStatement, env: Optional[Environment]) -> SubqueryResult:
        if self._run_subquery is None:
            raise BindError("subqueries are not available in this context")
        return self._run_subquery(stmt, env)


def collect_aggregates(expr: ast.Expression) -> list[ast.FunctionCall]:
    """All aggregate FunctionCall nodes in ``expr`` (subqueries excluded)."""
    return [
        node
        for node in ast.walk_expressions(expr)
        if isinstance(node, ast.FunctionCall) and node.name in AGGREGATE_NAMES
    ]


def contains_aggregate(expr: ast.Expression) -> bool:
    return bool(collect_aggregates(expr))
