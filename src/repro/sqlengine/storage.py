"""Row storage with transactional undo.

One :class:`TableData` per base table: rows are mutable lists so that
updates can patch in place and the undo journal can restore prior
values.  The journal lives in :mod:`repro.sqlengine.transactions`; this
module only provides primitive mutations that report what they did.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional


class TableData:
    """Heap of rows for one table."""

    def __init__(self, name: str, column_count: int) -> None:
        self.name = name
        self.column_count = column_count
        self._rows: list[list[Any]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> list[list[Any]]:
        """The live row list (callers must not mutate the list itself)."""
        return self._rows

    def snapshot(self) -> list[tuple[Any, ...]]:
        """An immutable copy of all rows (for resync / comparison)."""
        return [tuple(row) for row in self._rows]

    def insert(self, values: Iterable[Any]) -> list[Any]:
        row = list(values)
        if len(row) != self.column_count:
            raise ValueError(
                f"row width {len(row)} != table width {self.column_count}"
            )
        self._rows.append(row)
        return row

    def delete_rows(self, predicate: Callable[[list[Any]], bool]) -> list[tuple[int, list[Any]]]:
        """Delete matching rows; return (position, row) pairs for undo."""
        removed: list[tuple[int, list[Any]]] = []
        kept: list[list[Any]] = []
        for position, row in enumerate(self._rows):
            if predicate(row):
                removed.append((position, row))
            else:
                kept.append(row)
        self._rows = kept
        return removed

    def remove_row(self, row: list[Any]) -> None:
        """Remove one row object (identity match), for undo of insert."""
        for index, candidate in enumerate(self._rows):
            if candidate is row:
                del self._rows[index]
                return
        raise ValueError("row not present")  # pragma: no cover - undo invariant

    def restore_rows(self, removed: list[tuple[int, list[Any]]]) -> None:
        """Reinsert rows deleted by :meth:`delete_rows` at their positions."""
        for position, row in sorted(removed, key=lambda item: item[0]):
            self._rows.insert(min(position, len(self._rows)), row)

    def add_column(self, default_value: Any) -> None:
        """Widen every row for ALTER TABLE ADD COLUMN."""
        self.column_count += 1
        for row in self._rows:
            row.append(default_value)

    def clear(self) -> list[list[Any]]:
        """Remove all rows, returning them for undo."""
        rows, self._rows = self._rows, []
        return rows


class Storage:
    """All table heaps of one database instance."""

    def __init__(self) -> None:
        self._tables: dict[str, TableData] = {}

    def create(self, name: str, column_count: int) -> TableData:
        key = name.lower()
        if key in self._tables:
            raise ValueError(f"storage for {name!r} already exists")
        data = TableData(name, column_count)
        self._tables[key] = data
        return data

    def get(self, name: str) -> TableData:
        return self._tables[name.lower()]

    def get_optional(self, name: str) -> Optional[TableData]:
        return self._tables.get(name.lower())

    def drop(self, name: str) -> Optional[TableData]:
        return self._tables.pop(name.lower(), None)

    def clear(self) -> None:
        self._tables.clear()
