"""Row storage with transactional undo.

One :class:`TableData` per base table: rows are mutable lists so that
updates can patch in place and the undo journal can restore prior
values.  The journal lives in :mod:`repro.sqlengine.transactions`; this
module only provides primitive mutations that report what they did.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.sqlengine.values import distinct_key


class UniqueIndex:
    """Hash map from a key-column tuple to the single row holding it.

    Keys are tuples of :func:`distinct_key` components, so key equality
    coincides with SQL comparison equality within a kind.  Rows with a
    NULL key component are not indexed (SQL unique constraints admit
    them).  The index *poisons* itself — and stays unusable until the
    heap is rebuilt — when it meets a duplicate key or an unkeyable
    value; readers fall back to scanning.
    """

    __slots__ = ("map", "kinds", "poisoned")

    def __init__(self, width: int) -> None:
        self.map: dict[tuple, list[Any]] = {}
        #: Comparison-kind tags seen per key column, for planner probes
        #: that must bail out on heterogeneous stored kinds.
        self.kinds: list[set] = [set() for _ in range(width)]
        self.poisoned = False


class TableData:
    """Heap of rows for one table."""

    def __init__(self, name: str, column_count: int) -> None:
        self.name = name
        self.column_count = column_count
        self._rows: list[list[Any]] = []
        #: Bumped on every mutation; callers that patch row lists in
        #: place (the UPDATE path) must call :meth:`touch`.  Caches
        #: keyed on (table, version) use it for invalidation.
        self.version = 0
        #: Maintained unique indexes, keyed by their column-index tuple.
        self._indexes: dict[tuple[int, ...], UniqueIndex] = {}

    def touch(self) -> None:
        """Record an in-place row mutation made outside these methods."""
        self.version += 1
        # The mutation may have changed indexed values under us.
        self._indexes.clear()

    # -- unique indexes ------------------------------------------------------

    def unique_index(self, indices: tuple[int, ...]) -> Optional[UniqueIndex]:
        """The maintained unique index over these column positions,
        building it on first use; None when the current rows cannot be
        uniquely indexed (duplicates or unkeyable values)."""
        index = self._indexes.get(indices)
        if index is None:
            index = UniqueIndex(len(indices))
            for row in self._rows:
                self._index_add(index, indices, row)
            self._indexes[indices] = index
        return None if index.poisoned else index

    @staticmethod
    def _index_key(indices: tuple[int, ...], row: list[Any]) -> Optional[tuple]:
        parts = []
        for position in indices:
            value = row[position]
            if value is None:
                return None
            parts.append(distinct_key(value))
        return tuple(parts)

    def _index_add(self, index: UniqueIndex, indices: tuple[int, ...], row) -> None:
        if index.poisoned:
            return
        try:
            key = self._index_key(indices, row)
        except Exception:
            index.poisoned = True
            index.map.clear()
            return
        if key is None:
            return
        if key in index.map:
            index.poisoned = True
            index.map.clear()
            return
        index.map[key] = row
        for slot, part in zip(index.kinds, key):
            slot.add(part[0])

    def _index_remove(self, index: UniqueIndex, indices: tuple[int, ...], row) -> None:
        if index.poisoned:
            return
        try:
            key = self._index_key(indices, row)
        except Exception:  # pragma: no cover - add() would have poisoned
            index.poisoned = True
            index.map.clear()
            return
        if key is None:
            return
        if index.map.get(key) is row:
            del index.map[key]

    def _indexes_add(self, row: list[Any]) -> None:
        for indices, index in self._indexes.items():
            self._index_add(index, indices, row)

    def _indexes_remove(self, row: list[Any]) -> None:
        for indices, index in self._indexes.items():
            self._index_remove(index, indices, row)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> list[list[Any]]:
        """The live row list (callers must not mutate the list itself)."""
        return self._rows

    def snapshot(self) -> list[tuple[Any, ...]]:
        """An immutable copy of all rows (for resync / comparison)."""
        return [tuple(row) for row in self._rows]

    def clone(self) -> "TableData":
        """A deep, independent copy.  Row values are immutable scalars
        (numbers, strings, dates, NULL), so copying the two list levels
        is as deep as a copy can meaningfully go."""
        data = TableData(self.name, self.column_count)
        data._rows = [list(row) for row in self._rows]
        return data

    def insert(self, values: Iterable[Any]) -> list[Any]:
        row = list(values)
        if len(row) != self.column_count:
            raise ValueError(
                f"row width {len(row)} != table width {self.column_count}"
            )
        self._rows.append(row)
        self.version += 1
        if self._indexes:
            self._indexes_add(row)
        return row

    def update_row(self, row: list[Any], changes: dict[int, Any]) -> None:
        """Patch ``row`` (a live member of this heap) in place, keeping
        maintained indexes consistent.  ``changes`` maps column position
        to new value; passing the previous values back undoes the call."""
        affected = [
            (indices, index)
            for indices, index in self._indexes.items()
            if any(position in changes for position in indices)
        ]
        for indices, index in affected:
            self._index_remove(index, indices, row)
        for position, value in changes.items():
            row[position] = value
        for indices, index in affected:
            self._index_add(index, indices, row)
        self.version += 1

    def delete_rows(self, predicate: Callable[[list[Any]], bool]) -> list[tuple[int, list[Any]]]:
        """Delete matching rows; return (position, row) pairs for undo."""
        removed: list[tuple[int, list[Any]]] = []
        kept: list[list[Any]] = []
        for position, row in enumerate(self._rows):
            if predicate(row):
                removed.append((position, row))
            else:
                kept.append(row)
        self._rows = kept
        self.version += 1
        if self._indexes:
            for _, row in removed:
                self._indexes_remove(row)
        return removed

    def remove_row(self, row: list[Any]) -> None:
        """Remove one row object (identity match), for undo of insert."""
        for index, candidate in enumerate(self._rows):
            if candidate is row:
                del self._rows[index]
                self.version += 1
                if self._indexes:
                    self._indexes_remove(row)
                return
        raise ValueError("row not present")  # pragma: no cover - undo invariant

    def restore_rows(self, removed: list[tuple[int, list[Any]]]) -> None:
        """Reinsert rows deleted by :meth:`delete_rows` at their positions."""
        for position, row in sorted(removed, key=lambda item: item[0]):
            self._rows.insert(min(position, len(self._rows)), row)
            if self._indexes:
                self._indexes_add(row)
        self.version += 1

    def replace_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        """Bulk-load the heap from a snapshot (checkpoint restore).

        Replaces all current rows; every row must match the table
        width.  Used by the durability subsystem when re-seeding an
        engine from a durable checkpoint or a donor snapshot — one
        call instead of per-row INSERT replay.
        """
        loaded = [list(row) for row in rows]
        for row in loaded:
            if len(row) != self.column_count:
                raise ValueError(
                    f"row width {len(row)} != table width {self.column_count}"
                )
        self._rows = loaded
        self.version += 1
        self._indexes.clear()

    def add_column(self, default_value: Any) -> None:
        """Widen every row for ALTER TABLE ADD COLUMN."""
        self.column_count += 1
        for row in self._rows:
            row.append(default_value)
        self.version += 1
        self._indexes.clear()

    def clear(self) -> list[list[Any]]:
        """Remove all rows, returning them for undo."""
        rows, self._rows = self._rows, []
        self.version += 1
        self._indexes.clear()
        return rows


class Storage:
    """All table heaps of one database instance."""

    def __init__(self) -> None:
        self._tables: dict[str, TableData] = {}

    def create(self, name: str, column_count: int) -> TableData:
        key = name.lower()
        if key in self._tables:
            raise ValueError(f"storage for {name!r} already exists")
        data = TableData(name, column_count)
        self._tables[key] = data
        return data

    def get(self, name: str) -> TableData:
        return self._tables[name.lower()]

    def get_optional(self, name: str) -> Optional[TableData]:
        return self._tables.get(name.lower())

    def drop(self, name: str) -> Optional[TableData]:
        return self._tables.pop(name.lower(), None)

    def tables(self) -> list[TableData]:
        """Every table heap (stable order; durability dump path)."""
        return [self._tables[key] for key in sorted(self._tables)]

    def row_count(self) -> int:
        """Total rows across all heaps (rebuild seeding cost model)."""
        return sum(len(data) for data in self._tables.values())

    def clone(self) -> "Storage":
        """An independent copy of every table heap (see
        :meth:`TableData.clone`); much cheaper than ``copy.deepcopy``
        on the checkpoint path."""
        copied = Storage()
        copied._tables = {key: data.clone() for key, data in self._tables.items()}
        return copied

    def clear(self) -> None:
        self._tables.clear()
