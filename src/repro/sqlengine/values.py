"""SQL value semantics: three-valued logic, comparison, arithmetic.

All row values are plain Python objects; ``None`` is SQL NULL.  Boolean
expressions evaluate to ``True``, ``False``, or ``None`` (UNKNOWN).
"""

from __future__ import annotations

import datetime
import re
from decimal import Decimal
from typing import Any, Optional

from repro.errors import DivisionByZero, TypeMismatch

Tribool = Optional[bool]


def tri_and(left: Tribool, right: Tribool) -> Tribool:
    """SQL three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def tri_or(left: Tribool, right: Tribool) -> Tribool:
    """SQL three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def tri_not(value: Tribool) -> Tribool:
    """SQL three-valued NOT."""
    if value is None:
        return None
    return not value


def _comparable(value: Any) -> Any:
    """Normalise a value for cross-type comparison."""
    # Exact-type fast paths (bool, an int subclass, stays below): ints
    # and Decimals need no conversion — Python guarantees equal numerics
    # hash and compare equal across int/Decimal.
    if type(value) is int or type(value) is Decimal:
        return ("n", value)
    if type(value) is str:
        return ("s", value.rstrip())
    if isinstance(value, bool):
        return ("b", int(value))
    if isinstance(value, (int, float, Decimal)):
        return ("n", Decimal(str(value)) if isinstance(value, float) else Decimal(value))
    if isinstance(value, str):
        # CHAR padding is insignificant in comparisons (SQL PAD SPACE).
        return ("s", value.rstrip())
    if isinstance(value, datetime.datetime):
        return ("d", value)
    if isinstance(value, datetime.date):
        return ("d", datetime.datetime(value.year, value.month, value.day))
    raise TypeMismatch(f"value {value!r} is not comparable")


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Compare two SQL values: -1/0/1, or None when either is NULL.

    Numeric values compare numerically across int/float/Decimal; strings
    compare with trailing-space insensitivity; a string compared with a
    number is parsed as a number when possible (the permissive coercion
    the study's bug scripts rely on, e.g. ``PRICE >= '9.00'``).
    """
    if left is None or right is None:
        return None
    # Same-type fast paths for the overwhelmingly common cases; the
    # exact-type checks keep bool (an int subclass) on the slow path so
    # its distinct comparison kind is preserved.
    if type(left) is type(right):
        if type(left) is int or type(left) is Decimal:
            if left < right:
                return -1
            return 1 if left > right else 0
        if type(left) is str:
            lval = left.rstrip()
            rval = right.rstrip()
            if lval < rval:
                return -1
            return 1 if lval > rval else 0
    lkind, lval = _comparable(left)
    rkind, rval = _comparable(right)
    if lkind != rkind:
        lkind, lval, rkind, rval = _reconcile(lkind, lval, rkind, rval)
    if lval < rval:
        return -1
    if lval > rval:
        return 1
    return 0


def _reconcile(lkind: str, lval: Any, rkind: str, rval: Any) -> tuple:
    """Coerce mismatched comparison operands to a common kind."""
    kinds = {lkind, rkind}
    if kinds == {"n", "s"}:
        # Try string -> number first, then number -> string.
        try:
            if lkind == "s":
                return "n", Decimal(lval.strip()), "n", rval
            return "n", lval, "n", Decimal(rval.strip())
        except Exception:
            raise TypeMismatch("cannot compare string with number") from None
    if kinds == {"d", "s"}:
        from repro.sqlengine.types import parse_timestamp

        if lkind == "s":
            return "d", parse_timestamp(lval), "d", rval
        return "d", lval, "d", parse_timestamp(rval)
    if kinds == {"n", "b"}:
        if lkind == "b":
            return "n", Decimal(lval), "n", rval
        return "n", lval, "n", Decimal(rval)
    raise TypeMismatch(f"cannot compare {lkind} with {rkind}")


def sql_equal(left: Any, right: Any) -> Tribool:
    """Three-valued equality."""
    cmp = sql_compare(left, right)
    if cmp is None:
        return None
    return cmp == 0


def distinct_key(value: Any) -> Any:
    """A hashable key under which SQL-equal values collide.

    Used by DISTINCT, GROUP BY, UNION, and IN-list hashing.  NULLs are
    grouped together (SQL GROUP BY semantics).
    """
    if value is None:
        return ("null",)
    return _comparable(value)


def row_key(row: tuple) -> tuple:
    """Hashable key for a whole row."""
    return tuple(distinct_key(value) for value in row)


def sql_add(left: Any, right: Any) -> Any:
    return _arith(left, right, "+")


def sql_sub(left: Any, right: Any) -> Any:
    return _arith(left, right, "-")


def sql_mul(left: Any, right: Any) -> Any:
    return _arith(left, right, "*")


def sql_div(left: Any, right: Any) -> Any:
    return _arith(left, right, "/")


def _numeric_operand(value: Any, op: str) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, Decimal)):
        return value
    if isinstance(value, str):
        try:
            text = value.strip()
            return Decimal(text)
        except Exception:
            raise TypeMismatch(
                f"operand {value!r} of {op!r} is not numeric"
            ) from None
    raise TypeMismatch(f"operand {value!r} of {op!r} is not numeric")


def _arith(left: Any, right: Any, op: str) -> Any:
    """Arithmetic with NULL propagation and mixed-type promotion."""
    if left is None or right is None:
        return None
    lval = _numeric_operand(left, op)
    rval = _numeric_operand(right, op)
    uses_float = isinstance(lval, float) or isinstance(rval, float)
    if isinstance(lval, Decimal) or isinstance(rval, Decimal):
        if uses_float:
            lval, rval = float(lval), float(rval)
        else:
            lval, rval = Decimal(lval), Decimal(rval)
    if op == "+":
        return lval + rval
    if op == "-":
        return lval - rval
    if op == "*":
        return lval * rval
    if op == "/":
        if rval == 0:
            raise DivisionByZero("division by zero")
        if isinstance(lval, int) and isinstance(rval, int):
            # SQL integer division truncates toward zero.
            quotient = abs(lval) // abs(rval)
            return quotient if (lval >= 0) == (rval >= 0) else -quotient
        return lval / rval
    raise TypeMismatch(f"unknown arithmetic operator {op!r}")  # pragma: no cover


def sql_neg(value: Any) -> Any:
    if value is None:
        return None
    return -_numeric_operand(value, "-")


def sql_concat(left: Any, right: Any) -> Any:
    """String concatenation (``||``) with NULL propagation."""
    if left is None or right is None:
        return None
    from repro.sqlengine.types import format_numeric

    def text(value: Any) -> str:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, Decimal)):
            return format_numeric(value)
        return str(value)

    return text(left) + text(right)


def like_match(value: Any, pattern: Any, escape: Optional[str] = None) -> Tribool:
    """SQL LIKE with ``%``/``_`` wildcards and optional ESCAPE char."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise TypeMismatch("LIKE requires string operands")
    regex = _like_regex(pattern, escape)
    return bool(regex.fullmatch(value))


def _like_regex(pattern: str, escape: Optional[str]) -> "re.Pattern[str]":
    parts: list[str] = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if escape and char == escape and index + 1 < len(pattern):
            parts.append(re.escape(pattern[index + 1]))
            index += 2
            continue
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
        index += 1
    return re.compile("".join(parts), re.DOTALL)
