"""Rule-based logical-plan rewrites.

Every rule must preserve the tree-walker's observable semantics
*exactly*: the same rows in the same order, and — harder — the same
errors.  The walker evaluates the whole WHERE clause on every candidate
row (three-valued AND evaluates both operands), so any rewrite that
changes *which rows* an expression is evaluated on is only sound when
that expression is **total**: provably unable to raise for any row.
Totality is decided statically from declared column kinds, with
parameter kinds deferred to a cheap per-execution check
(:attr:`LogicalPlan.param_checks`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import _AMBIGUOUS, _resolution_map
from repro.sqlengine.plan import logical
from repro.sqlengine.plan.logical import (
    Aggregate,
    CrossJoin,
    Distinct,
    Filter,
    HashJoin,
    IndexLookup,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    kind_of_value,
    kinds_compatible,
)
from repro.sqlengine.values import (
    sql_add,
    sql_compare,
    sql_concat,
    sql_div,
    sql_mul,
    sql_neg,
    sql_sub,
    tri_and,
    tri_not,
    tri_or,
)

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_ARITHMETIC = {"+": sql_add, "-": sql_sub, "*": sql_mul, "/": sql_div}


# -- shared analysis ---------------------------------------------------------


class _NotTotal(Exception):
    """Internal: the analyzed expression may raise for some row."""


class _Analyzer:
    """Static totality/shape analysis against a plan's combined bindings."""

    def __init__(self, plan: LogicalPlan) -> None:
        self._plan = plan
        self._resolution = _resolution_map(plan.bindings)
        #: Combined-column offset ranges per scan position.
        self._ranges = [
            (scan.offset, scan.offset + scan.width) for scan in plan.scans
        ]

    def resolve(self, ref: ast.ColumnRef) -> Optional[int]:
        """Combined column index, or None for unknown/ambiguous refs."""
        index = self._resolution.get(ref.key)
        if index is None or index == _AMBIGUOUS:
            return None
        return index

    def scan_of(self, column_index: int) -> int:
        for position, (low, high) in enumerate(self._ranges):
            if low <= column_index < high:
                return position
        raise AssertionError("column index outside all scans")

    def scans_used(self, expr: ast.Expression) -> Optional[set[int]]:
        """Scan positions referenced by ``expr``; None when a reference
        does not resolve (unknown or ambiguous column)."""
        used: set[int] = set()
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.ColumnRef):
                index = self.resolve(node)
                if index is None:
                    return None
                used.add(self.scan_of(index))
        return used

    # -- totality ----------------------------------------------------------

    def operand_kind(self, expr: ast.Expression, checks: list) -> Any:
        """Comparison kind of a simple operand: a kind tag, the marker
        ``("param", i)``, or :class:`_NotTotal`."""
        if isinstance(expr, ast.Literal):
            kind = kind_of_value(expr.value)
            if kind is None:
                raise _NotTotal
            return kind
        if isinstance(expr, ast.ColumnRef):
            index = self.resolve(expr)
            if index is None:
                raise _NotTotal
            kind = self._plan.kinds[index]
            if kind is None or kind == "b":
                # Boolean columns are rare and their numeric reconcile
                # rules are asymmetric; keep them on the walker.
                raise _NotTotal
            return kind
        if isinstance(expr, ast.Parameter):
            return ("param", expr.index)
        raise _NotTotal

    def _pair_total(self, left: Any, right: Any, checks: list) -> None:
        """Require that comparing operands of these kinds never raises,
        deferring parameter kinds to runtime checks."""
        if isinstance(left, tuple) and isinstance(right, tuple):
            raise _NotTotal  # parameter-vs-parameter: kind unknowable
        if isinstance(left, tuple):
            left, right = right, left
        if isinstance(right, tuple):
            if left == "null":
                return
            checks.append((right[1], left))
            return
        if not kinds_compatible(left, right):
            raise _NotTotal

    def total_boolean(self, expr: ast.Expression, checks: list) -> None:
        """Raise :class:`_NotTotal` unless ``expr`` is a boolean-valued
        expression that can never raise, whatever row it sees."""
        if isinstance(expr, ast.Literal):
            if expr.value is None or isinstance(expr.value, bool):
                return
            raise _NotTotal
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("AND", "OR"):
                self.total_boolean(expr.left, checks)
                self.total_boolean(expr.right, checks)
                return
            if expr.op in _COMPARISONS:
                left = self.operand_kind(expr.left, checks)
                right = self.operand_kind(expr.right, checks)
                self._pair_total(left, right, checks)
                return
            raise _NotTotal
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            self.total_boolean(expr.operand, checks)
            return
        if isinstance(expr, ast.IsNullPredicate):
            self.operand_kind(expr.operand, checks)
            return
        if isinstance(expr, ast.BetweenPredicate):
            value = self.operand_kind(expr.operand, checks)
            self._pair_total(value, self.operand_kind(expr.low, checks), checks)
            self._pair_total(value, self.operand_kind(expr.high, checks), checks)
            return
        if isinstance(expr, ast.InPredicate):
            if expr.values is None:
                raise _NotTotal
            value = self.operand_kind(expr.operand, checks)
            for item in expr.values:
                self._pair_total(value, self.operand_kind(item, checks), checks)
            return
        raise _NotTotal

    def is_total(self, expr: ast.Expression, checks: list) -> bool:
        probe: list = []
        try:
            self.total_boolean(expr, probe)
        except _NotTotal:
            return False
        checks.extend(probe)
        return True


def split_conjuncts(expr: ast.Expression) -> list[ast.Expression]:
    """Flatten a tree of ANDs into its conjuncts, in evaluation order."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


# -- tree plumbing -----------------------------------------------------------


def _projection(plan: LogicalPlan):
    """The Project/Aggregate node of the canonical pipeline chain."""
    node = plan.root
    while isinstance(node, (Limit, Sort, Distinct)):
        node = node.child
    return node


# -- rules -------------------------------------------------------------------


def constant_folding(plan: LogicalPlan) -> None:
    """Evaluate literal-only subexpressions at plan time.

    Folding happens in a *copy* of the expression tree — the original
    AST is shared with the tree-walker path and prepared-statement
    caches, so it is never mutated.  Subexpressions whose evaluation
    raises (``1/0``) are left unfolded: the error must keep surfacing
    per-row at runtime, exactly as the walker raises it.
    """
    folded_any = [False]

    def fold(expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.BinaryOp):
            left, right = fold(expr.left), fold(expr.right)
            if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
                result = _fold_binary(expr.op, left.value, right.value)
                if result is not _NO_FOLD:
                    folded_any[0] = True
                    return ast.Literal(result)
            if left is not expr.left or right is not expr.right:
                return ast.BinaryOp(expr.op, left, right)
            return expr
        if isinstance(expr, ast.UnaryOp):
            operand = fold(expr.operand)
            if isinstance(operand, ast.Literal):
                result = _fold_unary(expr.op, operand.value)
                if result is not _NO_FOLD:
                    folded_any[0] = True
                    return ast.Literal(result)
            if operand is not expr.operand:
                return ast.UnaryOp(expr.op, operand)
            return expr
        if isinstance(expr, ast.FunctionCall):
            args = [fold(arg) for arg in expr.args]
            if any(new is not old for new, old in zip(args, expr.args)):
                return ast.FunctionCall(expr.name, args, expr.distinct, expr.star)
            return expr
        if isinstance(expr, ast.CastExpr):
            operand = fold(expr.operand)
            if operand is not expr.operand:
                return ast.CastExpr(operand, expr.type_name, expr.type_args)
            return expr
        if isinstance(expr, ast.IsNullPredicate):
            operand = fold(expr.operand)
            if operand is not expr.operand:
                return ast.IsNullPredicate(operand, expr.negated)
            return expr
        if isinstance(expr, ast.BetweenPredicate):
            operand, low, high = fold(expr.operand), fold(expr.low), fold(expr.high)
            if (operand, low, high) != (expr.operand, expr.low, expr.high):
                return ast.BetweenPredicate(operand, low, high, expr.negated)
            return expr
        if isinstance(expr, ast.InPredicate) and expr.values is not None:
            operand = fold(expr.operand)
            values = [fold(item) for item in expr.values]
            if operand is not expr.operand or any(
                new is not old for new, old in zip(values, expr.values)
            ):
                return ast.InPredicate(operand, values=values, negated=expr.negated)
            return expr
        return expr

    def fold_node(node: Any) -> None:
        if isinstance(node, (Limit, Sort, Distinct)):
            if isinstance(node, Sort):
                node.order_by = [
                    ast.OrderItem(fold(item.expression), item.descending)
                    for item in node.order_by
                ]
            fold_node(node.child)
            return
        if isinstance(node, (Project, Aggregate)):
            node.items = [
                item
                if isinstance(item.expression, ast.Star)
                else ast.SelectItem(fold(item.expression), item.alias)
                for item in node.items
            ]
            if isinstance(node, Aggregate):
                node.group_by = [fold(expr) for expr in node.group_by]
                if node.having is not None:
                    node.having = fold(node.having)
            fold_node(node.child)
            return
        if isinstance(node, Filter):
            node.conjuncts = [fold(conjunct) for conjunct in node.conjuncts]
            fold_node(node.child)
            return
        if isinstance(node, (CrossJoin, HashJoin)):
            fold_node(node.left)
            fold_node(node.right)

    fold_node(plan.root)
    if folded_any[0]:
        plan.applied_rules.append("constant_folding")


_NO_FOLD = object()


def _fold_binary(op: str, left: Any, right: Any) -> Any:
    try:
        if op in _ARITHMETIC:
            return _ARITHMETIC[op](left, right)
        if op == "||":
            return sql_concat(left, right)
        if op in _COMPARISONS:
            cmp = sql_compare(left, right)
            if cmp is None:
                return None
            return {
                "=": cmp == 0, "<>": cmp != 0, "<": cmp < 0,
                "<=": cmp <= 0, ">": cmp > 0, ">=": cmp >= 0,
            }[op]
        if op in ("AND", "OR"):
            for value in (left, right):
                if not (value is None or isinstance(value, bool)):
                    return _NO_FOLD
            return tri_and(left, right) if op == "AND" else tri_or(left, right)
    except Exception:
        return _NO_FOLD
    return _NO_FOLD


def _fold_unary(op: str, value: Any) -> Any:
    try:
        if op == "-":
            return sql_neg(value)
        if op == "+":
            return value
        if op == "NOT":
            if value is None or isinstance(value, bool):
                return tri_not(value)
    except Exception:
        return _NO_FOLD
    return _NO_FOLD


def predicate_pushdown(plan: LogicalPlan) -> None:
    """Split a total WHERE over a cross join into per-scan filters and
    hash equi-joins.

    Only fires when *every* conjunct is total: pushing conjunct B below
    conjunct A means B is no longer evaluated on rows A rejected, which
    is observable whenever B can raise.
    """
    if len(plan.scans) < 2:
        return
    projection = _projection(plan)
    node = projection.child
    if not isinstance(node, Filter) or not isinstance(node.child, CrossJoin):
        return
    analyzer = _Analyzer(plan)
    conjuncts: list[ast.Expression] = []
    for predicate in node.conjuncts:
        conjuncts.extend(split_conjuncts(predicate))
    checks: list[tuple[int, str]] = []
    if not all(analyzer.is_total(conjunct, checks) for conjunct in conjuncts):
        return

    per_scan: dict[int, list[ast.Expression]] = {}
    equi_pairs: list[tuple[int, int, ast.BinaryOp]] = []  # (scan, scan, a=b)
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        used = analyzer.scans_used(conjunct)
        if used is None:
            return  # unresolvable reference despite totality: be safe
        if len(used) <= 1:
            target = next(iter(used)) if used else 0
            per_scan.setdefault(target, []).append(conjunct)
            continue
        if (
            len(used) == 2
            and isinstance(conjunct, ast.BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            left_scan = analyzer.scan_of(analyzer.resolve(conjunct.left))
            right_scan = analyzer.scan_of(analyzer.resolve(conjunct.right))
            equi_pairs.append((left_scan, right_scan, conjunct))
            continue
        residual.append(conjunct)

    pushed_any = bool(per_scan) or bool(equi_pairs)
    if not pushed_any:
        return

    def source(position: int) -> Any:
        scan = plan.scans[position]
        filters = per_scan.get(position)
        if filters:
            return Filter(list(filters), scan, pushed=True)
        return scan

    joined = {0}
    tree = source(0)
    used_pairs: set[int] = set()
    for position in range(1, len(plan.scans)):
        join_pair = None
        for pair_index, (a, b, conjunct) in enumerate(equi_pairs):
            if pair_index in used_pairs:
                continue
            if (a in joined and b == position) or (b in joined and a == position):
                join_pair = (pair_index, conjunct, a in joined)
                break
        right = source(position)
        if join_pair is None:
            tree = CrossJoin(tree, right)
        else:
            pair_index, conjunct, left_first = join_pair
            used_pairs.add(pair_index)
            left_key = conjunct.left if left_first else conjunct.right
            right_key = conjunct.right if left_first else conjunct.left
            key_kind = plan.kinds[analyzer.resolve(left_key)]
            if key_kind == "b":
                key_kind = "n"
            tree = HashJoin(tree, right, left_key, right_key, key_kind)
        joined.add(position)
    # Equi pairs that were not consumed as join keys stay as residual
    # predicates, in their original conjunct order relative to `residual`.
    leftover = [
        conjunct
        for pair_index, (_, _, conjunct) in enumerate(equi_pairs)
        if pair_index not in used_pairs
    ]
    post = leftover + residual
    projection.child = Filter(post, tree) if post else tree
    plan.param_checks.extend(checks)
    plan.applied_rules.append("predicate_pushdown")


def index_selection(plan: LogicalPlan) -> None:
    """Replace a filtered scan with a unique-key point lookup when a
    total conjunct set pins every column of a uniqueness constraint to a
    row-independent value."""
    analyzer = _Analyzer(plan)
    applied = [False]

    def try_scan(filter_node: Filter, scan: Scan) -> None:
        conjuncts: list[ast.Expression] = []
        for predicate in filter_node.conjuncts:
            conjuncts.extend(split_conjuncts(predicate))
        checks: list[tuple[int, str]] = []
        if not all(analyzer.is_total(conjunct, checks) for conjunct in conjuncts):
            return
        position = plan.scans.index(scan)
        pinned: dict[int, ast.Expression] = {}  # table-local index -> expr
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for column, value in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(column, ast.ColumnRef):
                    continue
                if not isinstance(value, (ast.Literal, ast.Parameter)):
                    continue
                index = analyzer.resolve(column)
                if index is None or analyzer.scan_of(index) != position:
                    continue
                local = index - scan.offset
                pinned.setdefault(local, value)
        if not pinned:
            return
        for name, columns, indices in plan.unique_sets[position]:
            if all(local in pinned for local in indices):
                kinds = [plan.kinds[scan.offset + local] for local in indices]
                if any(kind is None for kind in kinds):
                    continue
                filter_node.child = IndexLookup(
                    scan=scan,
                    index_name=name,
                    key_columns=columns,
                    key_indices=list(indices),
                    key_exprs=[pinned[local] for local in indices],
                    key_kinds=kinds,
                )
                plan.param_checks.extend(checks)
                applied[0] = True
                return

    def walk(node: Any) -> None:
        if isinstance(node, (Limit, Sort, Distinct, Project, Aggregate)):
            walk(node.child)
        elif isinstance(node, Filter):
            if isinstance(node.child, Scan):
                try_scan(node, node.child)
            else:
                walk(node.child)
        elif isinstance(node, (CrossJoin, HashJoin)):
            walk(node.left)
            walk(node.right)

    walk(plan.root)
    if applied[0]:
        plan.applied_rules.append("index_selection")


def projection_pruning(plan: LogicalPlan) -> None:
    """Annotate scans with the columns the statement actually uses.

    Annotation-only: physical scans keep full-width rows so compiled
    column offsets stay valid, but EXPLAIN shows what a columnar
    executor could skip, and the rule keeps the rewrite registry honest
    about which statements would benefit.
    """
    if not plan.scans or plan.incomplete:
        return
    analyzer = _Analyzer(plan)
    needed: list[set[int]] = [set() for _ in plan.scans]
    fully: list[bool] = [False] * len(plan.scans)

    projection = _projection(plan)
    for item in projection.items:
        if isinstance(item.expression, ast.Star):
            table = item.expression.table
            for position, scan in enumerate(plan.scans):
                if table is None or scan.label.lower() == table.lower():
                    fully[position] = True

    def note(expr: ast.Expression) -> None:
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.ColumnRef):
                index = analyzer.resolve(node)
                if index is None:
                    # Unknown or ambiguous: every candidate column with a
                    # matching name stays live (the reference will raise
                    # at runtime, but pruning must not assume that).
                    for candidate, binding in enumerate(plan.bindings):
                        if binding.name.lower() == node.name.lower():
                            position = analyzer.scan_of(candidate)
                            needed[position].add(candidate - plan.scans[position].offset)
                    continue
                position = analyzer.scan_of(index)
                needed[position].add(index - plan.scans[position].offset)

    core, stmt = plan.core, plan.statement
    for item in projection.items:
        if not isinstance(item.expression, ast.Star):
            note(item.expression)
    if core.where is not None:
        note(core.where)
    for expr in core.group_by:
        note(expr)
    if core.having is not None:
        note(core.having)
    for order in stmt.order_by:
        note(order.expression)

    pruned_any = False
    for position, scan in enumerate(plan.scans):
        if fully[position] or scan.width == 0:
            continue
        if len(needed[position]) < scan.width:
            offset = scan.offset
            scan.needed = [
                plan.bindings[offset + local].name
                for local in sorted(needed[position])
            ]
            pruned_any = True
    if pruned_any:
        plan.applied_rules.append("projection_pruning")


#: Registered rewrite rules, in application order.  The lint layer
#: cross-checks that every rule here is exercised by at least one corpus
#: or sqlgen script (dead-rewrite detection).
REWRITE_RULES = {
    "constant_folding": constant_folding,
    "predicate_pushdown": predicate_pushdown,
    "index_selection": index_selection,
    "projection_pruning": projection_pruning,
}


#: Witness scripts for the registry above: replayed by the lint's
#: dead-rewrite check (alongside the bug corpus and the generated TPC-C
#: mix), which warns when a registered rule fires on none of them.
#: That catches both a rule that regressed into never applying and a
#: new rule registered without a live witness — add one here when
#: adding a rule.
PROBE_SCRIPTS = (
    "CREATE TABLE probe_a (id INTEGER PRIMARY KEY, val INTEGER)",
    "CREATE TABLE probe_b (id INTEGER PRIMARY KEY, ref INTEGER)",
    "INSERT INTO probe_a (id, val) VALUES (1, 10)",
    "INSERT INTO probe_b (id, ref) VALUES (1, 1)",
    # constant_folding (and projection_pruning):
    "SELECT val FROM probe_a WHERE val > 1 + 1",
    # predicate_pushdown:
    "SELECT probe_a.val FROM probe_a, probe_b "
    "WHERE probe_a.id = probe_b.ref AND probe_a.val > 0",
    # index_selection:
    "SELECT val FROM probe_a WHERE id = 1",
)


def apply_rewrites(plan: LogicalPlan) -> LogicalPlan:
    """Apply every registered rule to ``plan``, in order."""
    for rule in REWRITE_RULES.values():
        rule(plan)
    return plan
