"""Logical plan nodes and AST lowering.

A logical plan is a small operator tree over base-table scans:

    Limit(Sort(Distinct(Project|Aggregate(<join tree>))))

where the join tree is built from ``Scan`` / ``IndexLookup`` leaves
combined by ``CrossJoin`` / ``HashJoin`` with ``Filter`` nodes holding
conjunct lists.  Lowering is deliberately narrow: anything the compiled
operators cannot reproduce *exactly* (set operations, views, derived
tables, explicit JOIN syntax, subqueries) raises
:class:`PlanUnsupported` and the caller keeps the tree-walker.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from decimal import Decimal
from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import ColumnBinding
from repro.sqlengine.types import TypeFamily


class PlanUnsupported(Exception):
    """Statement shape the planner does not handle; use the walker."""


class PlanRuntimeFallback(Exception):
    """A compiled plan's runtime precondition failed for this execution
    (unbound or kind-incompatible parameter, poisoned index); the caller
    re-executes through the tree-walker."""


# -- node types --------------------------------------------------------------


@dataclass(eq=False)
class Scan:
    """One base-table scan."""

    table: str          # name as written in the statement
    label: str          # binding name (alias or table name)
    width: int          # column count at plan time
    offset: int = 0     # column offset in the combined FROM row
    #: Column names actually referenced by the statement, set by the
    #: projection-pruning rewrite (annotation only: the physical scan
    #: keeps full rows so column offsets stay stable).
    needed: Optional[list[str]] = None


@dataclass(eq=False)
class DualScan:
    """FROM-less SELECT: a single empty row."""


@dataclass(eq=False)
class IndexLookup:
    """Unique-key point lookup replacing a scan + equality filter."""

    scan: Scan
    index_name: str                 # 'PRIMARY KEY', 'UNIQUE', or index name
    key_columns: list[str]          # column names, schema order of the key
    key_indices: list[int]          # column positions within the table
    key_exprs: list[ast.Expression]  # row-independent probe expressions
    key_kinds: list[str]            # declared comparison kind per column


@dataclass(eq=False)
class Filter:
    """Keep rows for which every conjunct evaluates to SQL TRUE."""

    conjuncts: list[ast.Expression]
    child: Any
    pushed: bool = False  # produced by predicate pushdown


@dataclass(eq=False)
class CrossJoin:
    left: Any
    right: Any


@dataclass(eq=False)
class HashJoin:
    """Equi-join: build a hash table on the right, probe with the left."""

    left: Any
    right: Any
    left_key: ast.ColumnRef
    right_key: ast.ColumnRef
    key_kind: str  # common declared comparison kind of both sides


@dataclass(eq=False)
class Project:
    items: list[ast.SelectItem]
    child: Any


@dataclass(eq=False)
class Aggregate:
    items: list[ast.SelectItem]
    group_by: list[ast.Expression]
    having: Optional[ast.Expression]
    child: Any


@dataclass(eq=False)
class Distinct:
    child: Any


@dataclass(eq=False)
class Sort:
    order_by: list[ast.OrderItem]
    child: Any


@dataclass(eq=False)
class Limit:
    count: int
    child: Any


@dataclass(eq=False)
class LogicalPlan:
    """A lowered SELECT plus the bookkeeping rewrites need."""

    statement: ast.SelectStatement
    core: ast.SelectCore
    root: Any
    scans: list[Scan]
    #: Combined FROM-row bindings, concatenated in scan order.
    bindings: list[ColumnBinding]
    #: Declared comparison kind per combined column ('n'/'s'/'d'/'b'),
    #: or None when unknown (lenient lowering of a missing table).
    kinds: list[Optional[str]]
    #: Uniqueness constraints per scan position: (display name, column
    #: names, column indices within the table).
    unique_sets: list[list[tuple[str, list[str], list[int]]]] = field(default_factory=list)
    applied_rules: list[str] = field(default_factory=list)
    #: (parameter index, expected comparison kind) pairs that must hold
    #: at execute time for the rewritten structure to be total; checked
    #: by the physical plan, which falls back to the walker otherwise.
    param_checks: list[tuple[int, str]] = field(default_factory=list)
    #: True when a scan's table was missing from the catalog (lenient
    #: mode, for EXPLAIN only — such plans are not compilable).
    incomplete: bool = False


# -- kind classification -----------------------------------------------------

_FAMILY_KINDS = {
    TypeFamily.INTEGER: "n",
    TypeFamily.DECIMAL: "n",
    TypeFamily.FLOAT: "n",
    TypeFamily.CHARACTER: "s",
    TypeFamily.DATE: "d",
    TypeFamily.TIMESTAMP: "d",
    TypeFamily.BOOLEAN: "b",
}


def kind_of_type(sql_type) -> Optional[str]:
    """Comparison kind (:func:`repro.sqlengine.values._comparable` tag)
    of values stored in a column of the given declared type."""
    return _FAMILY_KINDS.get(sql_type.family)


def kind_of_value(value: Any) -> Optional[str]:
    """Comparison kind of a concrete value; ``None`` for SQL NULL is
    reported as ``"null"`` (comparisons with it never raise)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float, Decimal)):
        return "n"
    if isinstance(value, str):
        return "s"
    if isinstance(value, (datetime.datetime, datetime.date)):
        return "d"
    return None


def kinds_compatible(left: Optional[str], right: Optional[str]) -> bool:
    """True when comparing values of these kinds can never raise.

    Same-kind comparisons are total; ``{'n', 'b'}`` reconciles
    numerically without parsing.  Everything else (number/string,
    date/string...) can raise :class:`TypeMismatch` depending on the
    values, so rewrites must not change how often it is evaluated.
    """
    if left == "null" or right == "null":
        return True
    if left is None or right is None:
        return False
    if left == right:
        return True
    return {left, right} == {"n", "b"}


# -- lowering ----------------------------------------------------------------


def _reject_subqueries(expr: ast.Expression) -> None:
    for node in ast.walk_expressions(expr):
        if isinstance(node, (ast.ExistsPredicate, ast.ScalarSubquery)):
            raise PlanUnsupported("subquery expression")
        if isinstance(node, ast.InPredicate) and node.subquery is not None:
            raise PlanUnsupported("IN subquery")


def _core_expressions(core: ast.SelectCore, stmt: ast.SelectStatement):
    for item in core.items:
        if not isinstance(item.expression, ast.Star):
            yield item.expression
    if core.where is not None:
        yield core.where
    for expr in core.group_by:
        yield expr
    if core.having is not None:
        yield core.having
    for order in stmt.order_by:
        yield order.expression


def lower_select(
    stmt: ast.SelectStatement, catalog, *, lenient: bool = False
) -> LogicalPlan:
    """Lower a SELECT statement into a :class:`LogicalPlan`.

    ``lenient`` keeps lowering alive when a referenced table is missing
    from the catalog (EXPLAIN against an empty schema); the resulting
    plan is marked ``incomplete`` and cannot be compiled.
    """
    if not isinstance(stmt.body, ast.SelectCore):
        raise PlanUnsupported("set operation")
    core = stmt.body

    for expr in _core_expressions(core, stmt):
        _reject_subqueries(expr)

    scans: list[Scan] = []
    bindings: list[ColumnBinding] = []
    kinds: list[Optional[str]] = []
    unique_sets: list[list[tuple[str, list[str], list[int]]]] = []
    incomplete = False

    for item in core.from_items:
        if not isinstance(item, ast.TableRef):
            raise PlanUnsupported(f"FROM item {type(item).__name__}")
        if catalog is not None and catalog.has_table(item.name):
            schema = catalog.table(item.name)
            label = item.binding_name
            scan = Scan(
                table=item.name,
                label=label,
                width=len(schema.columns),
                offset=len(bindings),
            )
            for column in schema.columns:
                bindings.append(ColumnBinding(label, column.name))
                kinds.append(kind_of_type(column.sql_type))
            unique_sets.append(_table_unique_sets(catalog, schema))
        elif catalog is not None and catalog.has_view(item.name):
            raise PlanUnsupported(f"view {item.name!r}")
        elif lenient:
            scan = Scan(item.name, item.binding_name, width=0, offset=len(bindings))
            unique_sets.append([])
            incomplete = True
        else:
            raise PlanUnsupported(f"unknown relation {item.name!r}")
        scans.append(scan)

    root: Any
    if not scans:
        root = DualScan()
    else:
        root = scans[0]
        for scan in scans[1:]:
            root = CrossJoin(root, scan)
    if core.where is not None:
        root = Filter([core.where], root)

    from repro.sqlengine.expressions import collect_aggregates

    has_aggregates = any(
        collect_aggregates(item.expression)
        for item in core.items
        if not isinstance(item.expression, ast.Star)
    ) or (core.having is not None and collect_aggregates(core.having))
    if core.group_by or has_aggregates:
        root = Aggregate(core.items, core.group_by, core.having, root)
    else:
        root = Project(core.items, root)
    if core.distinct:
        root = Distinct(root)
    if stmt.order_by:
        root = Sort(stmt.order_by, root)
    if stmt.limit is not None:
        root = Limit(stmt.limit, root)

    return LogicalPlan(
        statement=stmt,
        core=core,
        root=root,
        scans=scans,
        bindings=bindings,
        kinds=kinds,
        unique_sets=unique_sets,
        incomplete=incomplete,
    )


def _table_unique_sets(catalog, schema) -> list[tuple[str, list[str], list[int]]]:
    """Uniqueness constraints of one table, primary key first — the
    same structure (and order) :meth:`Engine._unique_column_sets` uses."""
    sets: list[tuple[str, list[str], list[int]]] = []
    if schema.primary_key:
        names = list(schema.primary_key)
        sets.append(("PRIMARY KEY", names, [schema.column_index(c) for c in names]))
    for unique in schema.unique_sets:
        names = list(unique)
        sets.append(("UNIQUE", names, [schema.column_index(c) for c in names]))
    for index_def in catalog.indexes_on(schema.name):
        if index_def.unique:
            names = list(index_def.columns)
            sets.append(
                (index_def.name, names, [schema.column_index(c) for c in names])
            )
    return sets
