"""Compiled DML: planned INSERT / UPDATE / DELETE execution.

DML planning reuses the expression compiler and, for UPDATE, the same
unique-key point-lookup machinery as SELECT plans.  Each planned
statement mirrors the engine's interpreted path exactly — evaluation
order, cast points, constraint checks, undo records — by delegating the
shared mutation tail back to the engine
(:meth:`Engine._insert_rows` / :meth:`Engine.apply_row_update`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import ColumnBinding
from repro.sqlengine.plan.compiler import Scope, compile_expression
from repro.sqlengine.plan.logical import (
    LogicalPlan,
    PlanRuntimeFallback,
    PlanUnsupported,
    Scan,
    _table_unique_sets,
    kind_of_type,
    kind_of_value,
    kinds_compatible,
)
from repro.sqlengine.plan.physical import _join_key
from repro.sqlengine.types import cast_value


def _reject_subqueries(expr: ast.Expression) -> None:
    for node in ast.walk_expressions(expr):
        if isinstance(node, (ast.ExistsPredicate, ast.ScalarSubquery)):
            raise PlanUnsupported("subquery expression")
        if isinstance(node, ast.InPredicate) and node.subquery is not None:
            raise PlanUnsupported("IN subquery")


def _table_plan(stmt: ast.Statement, engine, schema) -> LogicalPlan:
    """A single-scan pseudo-plan so DML can reuse the SELECT analyzer
    (the walker binds DML rows under the schema's declared name)."""
    scan = Scan(table=schema.name, label=schema.name, width=len(schema.columns))
    bindings = [ColumnBinding(schema.name, column.name) for column in schema.columns]
    kinds = [kind_of_type(column.sql_type) for column in schema.columns]
    return LogicalPlan(
        statement=stmt,
        core=None,
        root=None,
        scans=[scan],
        bindings=bindings,
        kinds=kinds,
        unique_sets=[_table_unique_sets(engine.catalog, schema)],
    )


class PlannedInsert:
    """INSERT ... VALUES with pre-compiled value closures."""

    def __init__(self, stmt: ast.Insert, engine) -> None:
        if stmt.rows is None:
            raise PlanUnsupported("INSERT ... SELECT")
        self._engine = engine
        self._table = stmt.table
        schema = engine.catalog.table(stmt.table)
        if stmt.columns is not None:
            target = [schema.column_index(name) for name in stmt.columns]
            if len(set(target)) != len(target):
                raise PlanUnsupported("duplicate INSERT column")
        else:
            target = list(range(len(schema.columns)))
        self._target_indices = target
        scope = Scope((), no_row=True)
        rows = []
        for row in stmt.rows:
            for expr in row:
                _reject_subqueries(expr)
            if len(row) != len(target):
                raise PlanUnsupported("INSERT width mismatch")
            rows.append([compile_expression(expr, scope) for expr in row])
        self._rows = rows

    def execute(self, ctx) -> Any:
        engine = self._engine
        schema = engine.catalog.table(self._table)
        data = engine.storage.get(self._table)
        source_rows = [
            tuple(closure(None, None, ctx) for closure in row) for row in self._rows
        ]
        return engine._insert_rows(
            schema, data, self._target_indices, source_rows, ctx
        )


class PlannedUpdate:
    """UPDATE with a compiled predicate and, when the WHERE clause is
    total and pins a unique key, an index point lookup instead of a
    heap scan."""

    def __init__(self, stmt: ast.Update, engine) -> None:
        self._engine = engine
        self._table = stmt.table
        schema = engine.catalog.table(stmt.table)
        plan = _table_plan(stmt, engine, schema)
        scope = Scope(plan.bindings)
        if stmt.where is not None:
            _reject_subqueries(stmt.where)
        for _, expr in stmt.assignments:
            _reject_subqueries(expr)
        self._where = (
            compile_expression(stmt.where, scope) if stmt.where is not None else None
        )
        self._assignments = []
        for name, expr in stmt.assignments:
            index = schema.column_index(name)
            self._assignments.append(
                (index, schema.columns[index].sql_type, compile_expression(expr, scope))
            )
        self._probe = self._compile_probe(stmt.where, plan, scope)
        self._param_checks = tuple(plan.param_checks)

    def _compile_probe(self, where, plan: LogicalPlan, scope: Scope):
        """(key indices, key getters, key kinds) when the WHERE clause is
        total and pins every column of a uniqueness constraint."""
        if where is None:
            return None
        from repro.sqlengine.plan.rewrites import _Analyzer, split_conjuncts

        analyzer = _Analyzer(plan)
        conjuncts = split_conjuncts(where)
        checks: list = []
        if not all(analyzer.is_total(conjunct, checks) for conjunct in conjuncts):
            return None
        pinned: dict[int, ast.Expression] = {}
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for column, value in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(column, ast.ColumnRef):
                    continue
                if not isinstance(value, (ast.Literal, ast.Parameter)):
                    continue
                index = analyzer.resolve(column)
                if index is not None:
                    pinned.setdefault(index, value)
        if not pinned:
            return None
        for _, _, indices in plan.unique_sets[0]:
            if all(local in pinned for local in indices):
                kinds = [plan.kinds[local] for local in indices]
                if any(kind is None for kind in kinds):
                    continue
                getters = [
                    compile_expression(pinned[local], scope) for local in indices
                ]
                plan.param_checks.extend(checks)
                return (tuple(indices), getters, kinds)
        return None

    def execute(self, ctx) -> Any:
        params = ctx.params
        for index, expected in self._param_checks:
            if index >= len(params):
                raise PlanRuntimeFallback("unbound parameter")
            if not kinds_compatible(kind_of_value(params[index]), expected):
                raise PlanRuntimeFallback("parameter kind mismatch")
        engine = self._engine
        schema = engine.catalog.table(self._table)
        data = engine.storage.get(self._table)
        candidates = self._candidate_rows(data, ctx)
        where = self._where
        updated = 0
        for row in candidates:
            if where is not None and where(row, None, ctx) is not True:
                continue
            new_values: dict[int, Any] = {}
            for index, sql_type, closure in self._assignments:
                value = closure(row, None, ctx)
                new_values[index] = cast_value(value, sql_type, implicit=True)
            engine.apply_row_update(schema, data, row, new_values, ctx)
            updated += 1
        from repro.sqlengine.engine import Result

        return Result(kind="dml", rowcount=updated)

    def _candidate_rows(self, data, ctx) -> list:
        if self._probe is None:
            return data.rows()
        indices, getters, kinds = self._probe
        index = data.unique_index(indices)
        if index is None:
            raise PlanRuntimeFallback("unique index unavailable")
        for position, stored_kinds in enumerate(index.kinds):
            if stored_kinds - {kinds[position]}:
                raise PlanRuntimeFallback("heterogeneous stored key kinds")
        key = []
        for getter, expected in zip(getters, kinds):
            value = getter(None, None, ctx)
            if value is None:
                return []  # `col = NULL` matches nothing
            part = _join_key(value, expected)
            if part is None:
                raise PlanRuntimeFallback("probe value kind mismatch")
            key.append(part)
        row = index.map.get(tuple(key))
        return [row] if row is not None else []


class PlannedDelete:
    """DELETE with a compiled predicate over the heap scan."""

    def __init__(self, stmt: ast.Delete, engine) -> None:
        self._engine = engine
        self._table = stmt.table
        schema = engine.catalog.table(stmt.table)
        if stmt.where is not None:
            _reject_subqueries(stmt.where)
            plan = _table_plan(stmt, engine, schema)
            self._where = compile_expression(stmt.where, Scope(plan.bindings))
        else:
            self._where = None

    def execute(self, ctx) -> Any:
        engine = self._engine
        engine.catalog.table(self._table)  # raises if dropped (defensive)
        data = engine.storage.get(self._table)
        where = self._where
        if where is None:
            removed = data.delete_rows(lambda row: True)
        else:
            removed = data.delete_rows(lambda row: where(row, None, ctx) is True)
        engine.transactions.record(lambda r=removed, d=data: d.restore_rows(r))
        from repro.sqlengine.engine import Result

        return Result(kind="dml", rowcount=len(removed))


def compile_statement(stmt: ast.Statement, engine) -> Optional[Any]:
    """Compile any plannable statement; None for kinds with no planner."""
    from repro.sqlengine.plan.physical import compile_select

    if isinstance(stmt, ast.SelectStatement):
        return compile_select(stmt, engine)
    if isinstance(stmt, ast.Insert):
        return PlannedInsert(stmt, engine)
    if isinstance(stmt, ast.Update):
        return PlannedUpdate(stmt, engine)
    if isinstance(stmt, ast.Delete):
        return PlannedDelete(stmt, engine)
    return None
