"""Planned query execution: logical plans, rewrites, compiled operators.

The planner lowers a parsed SELECT into a logical operator tree
(:mod:`.logical`), improves it with rule-based rewrites
(:mod:`.rewrites` — predicate pushdown, constant folding, projection
pruning, index selection over the catalog's unique-key sets), and
compiles the result into Python closures over row batches
(:mod:`.physical`), replacing the per-row AST walk of
:mod:`repro.sqlengine.executor` on the hot path.

Statement shapes outside the supported subset raise
:class:`PlanUnsupported` at compile time and runtime preconditions that
cannot be proven (parameter kinds, mixed-kind join keys) raise
:class:`PlanRuntimeFallback` at execute time; both fall back to the
tree-walker, whose semantics are the reference the compiled path must
reproduce bit-for-bit.
"""

from repro.sqlengine.plan.logical import (
    LogicalPlan,
    PlanRuntimeFallback,
    PlanUnsupported,
    lower_select,
)
from repro.sqlengine.plan.rewrites import PROBE_SCRIPTS, REWRITE_RULES, apply_rewrites
from repro.sqlengine.plan.physical import PhysicalSelect, compile_select
from repro.sqlengine.plan.explain import explain_plan, explain_statement

__all__ = [
    "LogicalPlan",
    "PlanRuntimeFallback",
    "PlanUnsupported",
    "lower_select",
    "PROBE_SCRIPTS",
    "REWRITE_RULES",
    "apply_rewrites",
    "PhysicalSelect",
    "compile_select",
    "explain_plan",
    "explain_statement",
]
