"""Physical plan compilation: logical operators to batch closures.

``compile_select`` turns a lowered + rewritten :class:`LogicalPlan`
into a :class:`PhysicalSelect` whose ``execute(ctx)`` produces the same
:class:`~repro.sqlengine.executor.QueryResult` as the tree-walker —
same rows, same order, same column names, same errors — while running
compiled closures over row batches instead of per-row AST recursion.

Runtime preconditions the optimiser could not prove statically
(parameter kinds, clean unique indexes, homogeneous join-key kinds) are
checked per execution; when one fails, :class:`PlanRuntimeFallback`
tells the engine to re-run the statement through the walker.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import BindError, TypeMismatch
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.executor import QueryResult, SelectExecutor, _sort_key
from repro.sqlengine.functions import Accumulator
from repro.sqlengine.plan.compiler import Scope, compile_expression
from repro.sqlengine.plan.logical import (
    Aggregate,
    CrossJoin,
    Distinct,
    DualScan,
    Filter,
    HashJoin,
    IndexLookup,
    Limit,
    LogicalPlan,
    PlanRuntimeFallback,
    PlanUnsupported,
    Scan,
    Sort,
    kind_of_value,
    kinds_compatible,
    lower_select,
)
from repro.sqlengine.values import distinct_key, row_key

Source = Callable[[Any], list]


def _join_key(value: Any, expected: str):
    """Hash key for a join/index probe: ``distinct_key`` with booleans
    bridged onto the numeric kind (matching ``sql_compare``'s
    bool/number reconciliation).  Returns None when the value's kind is
    not ``expected`` — hashing it would diverge from the walker."""
    if isinstance(value, bool):
        return ("n", int(value)) if expected == "n" else None
    key = distinct_key(value)
    return key if key[0] == expected else None


def compile_select(stmt: ast.SelectStatement, engine) -> "PhysicalSelect":
    """Lower, rewrite, and compile a SELECT for ``engine``.

    Raises :class:`PlanUnsupported` when the statement is outside the
    planner's subset; the caller keeps using the tree-walker.
    """
    from repro.sqlengine.plan.rewrites import apply_rewrites

    plan = lower_select(stmt, engine.catalog)
    apply_rewrites(plan)
    if plan.incomplete:
        raise PlanUnsupported("plan references a missing table")
    return PhysicalSelect(plan, engine)


class PhysicalSelect:
    """A compiled SELECT plan bound to one engine's catalog snapshot.

    Valid only while the catalog generation it was compiled against is
    current; the engine's plan cache enforces that.
    """

    def __init__(self, plan: LogicalPlan, engine) -> None:
        self.plan = plan
        self._engine = engine
        stmt = plan.statement
        core = plan.core

        root = plan.root
        self._limit = None
        if isinstance(root, Limit):
            self._limit = root.count
            root = root.child
        self._has_sort = False
        if isinstance(root, Sort):
            self._has_sort = True
            sort_items = root.order_by
            root = root.child
        self._distinct = False
        if isinstance(root, Distinct):
            self._distinct = True
            root = root.child

        bindings = plan.bindings
        self._width = len(bindings)
        row_scope = Scope(bindings)

        if isinstance(root, Aggregate):
            self._grouped = True
            agg_nodes = SelectExecutor._collect_core_aggregates(core)
            slots = {id(node): position for position, node in enumerate(agg_nodes)}
            out_scope = Scope(bindings, agg_slots=slots)
            self._agg_specs = [
                (node.name, node.distinct, node.star, self._agg_arg(node, row_scope))
                for node in agg_nodes
            ]
            self._group_keys = [
                compile_expression(expr, row_scope) for expr in root.group_by
            ]
            self._having = (
                compile_expression(root.having, out_scope)
                if root.having is not None
                else None
            )
        else:
            self._grouped = False
            out_scope = row_scope
        items = root.items

        self._name_parts = self._compile_names(items, bindings)
        self._project = self._compile_projection(items, bindings, out_scope)
        self._order_spec = (
            self._compile_order(sort_items, out_scope) if self._has_sort else None
        )
        self._source = self._compile_source(root.child, plan)
        self._param_checks = tuple(plan.param_checks)

    # -- compilation ---------------------------------------------------------

    @staticmethod
    def _agg_arg(node: ast.FunctionCall, row_scope: Scope):
        """Per-row accumulator feed for one aggregate call: None for
        ``COUNT(*)``, an arg closure, or a raising marker for wrong
        arity (the walker raises per accumulated row)."""
        if node.star:
            return None
        if len(node.args) != 1:
            name = node.name

            def bad_arity(row: Any, aggs: Any, ctx: Any) -> Any:
                raise TypeMismatch(f"aggregate {name} takes exactly one argument")

            return bad_arity
        return compile_expression(node.args[0], row_scope)

    def _compile_names(self, items, bindings):
        """Output-name recipe mirroring ``SelectExecutor._output_names``:
        literal strings, per-execution flag consults for unaliased
        AVG/SUM (Interbase 222476), and a raising part for a qualified
        ``*`` that matches no table."""
        parts: list[tuple] = []
        for item in items:
            expr = item.expression
            if isinstance(expr, ast.Star):
                matched = False
                for binding in bindings:
                    if expr.table is None or binding.label.lower() == expr.table.lower():
                        parts.append(("name", binding.name))
                        matched = True
                if expr.table is not None and not matched:
                    table = expr.table
                    parts.append(("error", f"unknown table {table!r} in select list"))
                continue
            if item.alias:
                parts.append(("name", item.alias))
            elif isinstance(expr, ast.ColumnRef):
                parts.append(("name", expr.name))
            elif isinstance(expr, ast.FunctionCall):
                if expr.name in ("AVG", "SUM"):
                    parts.append(("flag", expr.name))
                else:
                    parts.append(("name", expr.name))
            else:
                parts.append(("name", "EXPR"))
        return parts

    def _names(self, ctx) -> list[str]:
        names: list[str] = []
        for kind, payload in self._name_parts:
            if kind == "name":
                names.append(payload)
            elif kind == "flag":
                names.append("" if ctx.flag("empty_agg_field_names") else payload)
            else:
                raise BindError(payload)
        return names

    def _compile_projection(self, items, bindings, scope: Scope):
        """Row projector ``(row, aggs, ctx) -> tuple``; ``*`` expands to
        direct column fetches at compile time."""
        parts: list[tuple] = []  # ("col", index) | ("fn", closure)
        for item in items:
            expr = item.expression
            if isinstance(expr, ast.Star):
                for index, binding in enumerate(bindings):
                    if expr.table is None or binding.label.lower() == expr.table.lower():
                        parts.append(("col", index))
                continue
            parts.append(("fn", compile_expression(expr, scope)))

        if all(kind == "col" for kind, _ in parts):
            indices = [payload for _, payload in parts]
            return lambda row, aggs, ctx: tuple(row[i] for i in indices)

        def project(row: Any, aggs: Any, ctx: Any) -> tuple:
            values = []
            for kind, payload in parts:
                if kind == "col":
                    values.append(row[payload])
                else:
                    values.append(payload(row, aggs, ctx))
            return tuple(values)

        return project

    def _compile_order(self, order_by, scope: Scope):
        """ORDER BY recipe; the walker resolves unqualified column names
        against *output* names first, which can vary per execution
        (flag-dependent aggregate names), so name resolution happens at
        execute time against the computed name list."""
        spec: list[tuple] = []
        for item in order_by:
            expr = item.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                spec.append(("ordinal", expr.value, item.descending))
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                fallback = compile_expression(expr, scope)
                spec.append(("byname", (expr.name.lower(), fallback), item.descending))
                continue
            spec.append(("expr", compile_expression(expr, scope), item.descending))
        return spec

    # -- source tree ---------------------------------------------------------

    def _compile_source(self, node: Any, plan: LogicalPlan) -> Source:
        engine = self._engine
        if isinstance(node, DualScan):
            return lambda ctx: [()]
        if isinstance(node, Scan):
            storage = engine.storage
            table = node.table
            return lambda ctx: storage.get(table).rows()
        if isinstance(node, IndexLookup):
            return self._compile_lookup(node, plan)
        if isinstance(node, Filter):
            child = self._compile_source(node.child, plan)
            shift = self._subtree_shift(node.child)
            scope = Scope(plan.bindings, shift=shift)
            predicates = [compile_expression(c, scope) for c in node.conjuncts]
            if len(predicates) == 1:
                predicate = predicates[0]
                return lambda ctx: [
                    row for row in child(ctx) if predicate(row, None, ctx) is True
                ]

            def filter_rows(ctx: Any) -> list:
                kept = []
                for row in child(ctx):
                    for predicate in predicates:
                        # Early exit is sound: multi-conjunct filters only
                        # come from rewrites, which require totality.
                        if predicate(row, None, ctx) is not True:
                            break
                    else:
                        kept.append(row)
                return kept

            return filter_rows
        if isinstance(node, CrossJoin):
            left = self._compile_source(node.left, plan)
            right = self._compile_source(node.right, plan)

            def cross(ctx: Any) -> list:
                left_rows = left(ctx)
                right_rows = right(ctx)
                return [lrow + rrow for lrow in left_rows for rrow in right_rows]

            return cross
        if isinstance(node, HashJoin):
            return self._compile_hash_join(node, plan)
        raise PlanUnsupported(f"no physical operator for {type(node).__name__}")

    @staticmethod
    def _subtree_shift(node: Any) -> int:
        """Row coordinates of a source subtree: scan-local below joins
        (shift by the scan's combined-row offset), combined above."""
        while isinstance(node, Filter):
            node = node.child
        if isinstance(node, Scan):
            return node.offset
        if isinstance(node, IndexLookup):
            return node.scan.offset
        return 0

    def _compile_lookup(self, node: IndexLookup, plan: LogicalPlan) -> Source:
        engine = self._engine
        table = node.scan.table
        indices = tuple(node.key_indices)
        kinds = tuple(node.key_kinds)
        probe_scope = Scope(plan.bindings)
        getters = [compile_expression(expr, probe_scope) for expr in node.key_exprs]

        def lookup(ctx: Any) -> list:
            data = engine.storage.get(table)
            index = data.unique_index(indices)
            if index is None:
                raise PlanRuntimeFallback("unique index unavailable")
            for position, stored_kinds in enumerate(index.kinds):
                if stored_kinds - {kinds[position]}:
                    raise PlanRuntimeFallback("heterogeneous stored key kinds")
            key = []
            for getter, expected in zip(getters, kinds):
                value = getter(None, None, ctx)
                if value is None:
                    # `col = NULL` is never TRUE; the walker keeps no rows.
                    return []
                part = _join_key(value, expected)
                if part is None:
                    raise PlanRuntimeFallback("probe value kind mismatch")
                key.append(part)
            row = index.map.get(tuple(key))
            return [row] if row is not None else []

        return lookup

    def _compile_hash_join(self, node: HashJoin, plan: LogicalPlan) -> Source:
        left = self._compile_source(node.left, plan)
        right = self._compile_source(node.right, plan)
        scope = Scope(plan.bindings)
        analyzer_resolve = Scope(plan.bindings)
        left_index = analyzer_resolve.resolve(node.left_key)
        right_shift = self._subtree_shift(node.right)
        right_index = analyzer_resolve.resolve(node.right_key) - right_shift
        expected = node.key_kind
        # Exact-semantics fallback for rows/batches whose key values the
        # hash cannot represent faithfully: evaluate the original
        # equality predicate over the cross product, as the walker does.
        equality = compile_expression(
            ast.BinaryOp("=", node.left_key, node.right_key), scope
        )

        def join(ctx: Any) -> list:
            left_rows = left(ctx)
            right_rows = right(ctx)
            if not left_rows or not right_rows:
                return []
            build: dict = {}
            clean = True
            for rrow in right_rows:
                value = rrow[right_index]
                if value is None:
                    continue  # NULL keys never compare TRUE
                try:
                    key = _join_key(value, expected)
                except TypeMismatch:
                    key = None
                if key is None:
                    clean = False
                    break
                build.setdefault(key, []).append(rrow)
            if not clean:
                return [
                    lrow + rrow
                    for lrow in left_rows
                    for rrow in right_rows
                    if equality(lrow + rrow, None, ctx) is True
                ]
            out = []
            for lrow in left_rows:
                value = lrow[left_index]
                if value is None:
                    continue
                try:
                    key = _join_key(value, expected)
                except TypeMismatch:
                    key = None
                if key is None:
                    # Odd probe value: nested-loop this row only, keeping
                    # the walker's per-comparison raise behaviour.
                    for rrow in right_rows:
                        combined = lrow + rrow
                        if equality(combined, None, ctx) is True:
                            out.append(combined)
                    continue
                hits = build.get(key)
                if hits:
                    for rrow in hits:
                        out.append(lrow + rrow)
            return out

        return join

    # -- execution -----------------------------------------------------------

    def execute(self, ctx) -> QueryResult:
        params = ctx.params
        for index, expected in self._param_checks:
            if index >= len(params):
                raise PlanRuntimeFallback("unbound parameter")
            kind = kind_of_value(params[index])
            if not kinds_compatible(kind, expected):
                raise PlanRuntimeFallback("parameter kind mismatch")

        rows = self._source(ctx)
        if rows and ctx.flag("plan_filter_truncates"):
            # Injected planner fault (dual-plan oracle target): the
            # compiled filter stage drops the final row of the batch.
            rows = rows[:-1]

        if self._grouped:
            names, out_rows, ctx_rows, ctx_aggs = self._run_grouped(rows, ctx)
        else:
            names = self._names(ctx)
            project = self._project
            out_rows = [project(row, None, ctx) for row in rows]
            ctx_rows = rows
            ctx_aggs = None

        if self._distinct:
            seen: set = set()
            kept_rows = []
            kept_ctx_rows = []
            kept_ctx_aggs = [] if ctx_aggs is not None else None
            for index, row in enumerate(out_rows):
                key = row_key(row)
                if key in seen:
                    continue
                seen.add(key)
                kept_rows.append(row)
                kept_ctx_rows.append(ctx_rows[index])
                if kept_ctx_aggs is not None:
                    kept_ctx_aggs.append(ctx_aggs[index])
            out_rows = kept_rows
            ctx_rows = kept_ctx_rows
            ctx_aggs = kept_ctx_aggs

        if self._order_spec is not None:
            out_rows = self._sorted(names, out_rows, ctx_rows, ctx_aggs, ctx)
        if self._limit is not None:
            out_rows = out_rows[: self._limit]
        return QueryResult(names, out_rows)

    def _run_grouped(self, rows: list, ctx):
        group_keys = self._group_keys
        if group_keys:
            groups: dict = {}
            order: list = []
            for row in rows:
                key = tuple(
                    distinct_key(closure(row, None, ctx)) for closure in group_keys
                )
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = bucket = []
                    order.append(key)
                bucket.append(row)
            group_items = [groups[key] for key in order]
        else:
            group_items = [rows]

        names = self._names(ctx)
        having = self._having
        project = self._project
        specs = self._agg_specs
        null_row = (None,) * self._width
        out_rows = []
        ctx_rows = []
        ctx_aggs = []
        for group_rows in group_items:
            accumulators = [
                Accumulator(name, distinct, star) for name, distinct, star, _ in specs
            ]
            for row in group_rows:
                for accumulator, (_, _, star, arg) in zip(accumulators, specs):
                    if star:
                        accumulator.add(None)
                    else:
                        accumulator.add(arg(row, None, ctx))
            aggs = tuple(accumulator.result() for accumulator in accumulators)
            representative = group_rows[0] if group_rows else null_row
            if having is not None and having(representative, aggs, ctx) is not True:
                continue
            out_rows.append(project(representative, aggs, ctx))
            ctx_rows.append(representative)
            ctx_aggs.append(aggs)
        return names, out_rows, ctx_rows, ctx_aggs

    def _sorted(self, names, out_rows, ctx_rows, ctx_aggs, ctx):
        resolved: list[tuple] = []
        for kind, payload, descending in self._order_spec:
            if kind == "byname":
                target, fallback = payload
                match = None
                for index, name in enumerate(names):
                    if name.lower() == target:
                        match = index
                        break
                if match is not None:
                    resolved.append(("output", match, descending))
                else:
                    resolved.append(("expr", fallback, descending))
            else:
                resolved.append((kind, payload, descending))

        decorated = []
        for index, row in enumerate(out_rows):
            keys = []
            for kind, payload, descending in resolved:
                if kind == "ordinal":
                    if not 1 <= payload <= len(row):
                        raise BindError(
                            f"ORDER BY position {payload} is out of range"
                        )
                    value = row[payload - 1]
                elif kind == "output":
                    value = row[payload]
                else:
                    value = payload(
                        ctx_rows[index],
                        ctx_aggs[index] if ctx_aggs is not None else None,
                        ctx,
                    )
                keys.append(_sort_key(value, descending))
            decorated.append((tuple(keys), index, row))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        return [entry[2] for entry in decorated]
