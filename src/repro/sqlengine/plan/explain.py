"""EXPLAIN rendering for logical plans.

``explain_plan`` pretty-prints a lowered (and usually rewritten)
:class:`~repro.sqlengine.plan.logical.LogicalPlan`; ``explain_statement``
is the one-stop entry the servers and the CLI use: parse, lower, rewrite,
render — falling back to a short "unplanned" note for statement shapes
the planner leaves to the tree-walker.
"""

from __future__ import annotations

from typing import Any

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.plan.logical import (
    Aggregate,
    CrossJoin,
    Distinct,
    DualScan,
    Filter,
    HashJoin,
    IndexLookup,
    Limit,
    LogicalPlan,
    PlanUnsupported,
    Project,
    Scan,
    Sort,
    lower_select,
)
from repro.sqlengine.sqlgen import render_expression


def explain_plan(plan: LogicalPlan) -> str:
    """Render a logical plan as an indented operator tree."""
    lines: list[str] = []
    _render_node(plan.root, lines, 0)
    if plan.applied_rules:
        lines.append(f"rewrites: {', '.join(plan.applied_rules)}")
    else:
        lines.append("rewrites: (none)")
    if plan.param_checks:
        checks = ", ".join(f"?{index + 1}:{kind}" for index, kind in plan.param_checks)
        lines.append(f"runtime checks: {checks}")
    return "\n".join(lines)


def _render_node(node: Any, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    if isinstance(node, Limit):
        lines.append(f"{pad}Limit {node.count}")
        _render_node(node.child, lines, depth + 1)
    elif isinstance(node, Sort):
        keys = ", ".join(
            render_expression(item.expression) + (" DESC" if item.descending else "")
            for item in node.order_by
        )
        lines.append(f"{pad}Sort {keys}")
        _render_node(node.child, lines, depth + 1)
    elif isinstance(node, Distinct):
        lines.append(f"{pad}Distinct")
        _render_node(node.child, lines, depth + 1)
    elif isinstance(node, Project):
        lines.append(f"{pad}Project {_render_items(node.items)}")
        _render_node(node.child, lines, depth + 1)
    elif isinstance(node, Aggregate):
        text = f"{pad}Aggregate {_render_items(node.items)}"
        if node.group_by:
            text += " group by " + ", ".join(
                render_expression(expr) for expr in node.group_by
            )
        if node.having is not None:
            text += f" having {render_expression(node.having)}"
        lines.append(text)
        _render_node(node.child, lines, depth + 1)
    elif isinstance(node, Filter):
        conjuncts = " AND ".join(render_expression(c) for c in node.conjuncts)
        suffix = " [pushed]" if node.pushed else ""
        lines.append(f"{pad}Filter {conjuncts}{suffix}")
        _render_node(node.child, lines, depth + 1)
    elif isinstance(node, HashJoin):
        lines.append(
            f"{pad}HashJoin {render_expression(node.left_key)} = "
            f"{render_expression(node.right_key)}"
        )
        _render_node(node.left, lines, depth + 1)
        _render_node(node.right, lines, depth + 1)
    elif isinstance(node, CrossJoin):
        lines.append(f"{pad}CrossJoin")
        _render_node(node.left, lines, depth + 1)
        _render_node(node.right, lines, depth + 1)
    elif isinstance(node, IndexLookup):
        keys = ", ".join(
            f"{column} = {render_expression(expr)}"
            for column, expr in zip(node.key_columns, node.key_exprs)
        )
        lines.append(
            f"{pad}IndexLookup {node.scan.table} via {node.index_name} ({keys})"
        )
    elif isinstance(node, Scan):
        label = f" as {node.label}" if node.label != node.table else ""
        if node.needed is not None:
            columns = f" [{', '.join(node.needed)}]"
        else:
            columns = ""
        lines.append(f"{pad}Scan {node.table}{label}{columns}")
    elif isinstance(node, DualScan):
        lines.append(f"{pad}DualScan")
    else:  # pragma: no cover - every logical node is handled above
        lines.append(f"{pad}{type(node).__name__}")


def _render_items(items: list[ast.SelectItem]) -> str:
    parts = []
    for item in items:
        if isinstance(item.expression, ast.Star):
            table = item.expression.table
            parts.append(f"{table}.*" if table else "*")
            continue
        text = render_expression(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        parts.append(text)
    return ", ".join(parts)


def explain_statement(sql: str, catalog=None, *, lenient: bool = True) -> str:
    """Parse one SELECT and render its (rewritten) plan.

    Non-SELECT statements and shapes outside the planner's subset get a
    one-line note naming the executor that will run them instead.
    """
    from repro.sqlengine.parser import parse_script
    from repro.sqlengine.plan.rewrites import apply_rewrites

    statements = parse_script(sql)
    if len(statements) != 1:
        raise ValueError("explain takes exactly one statement")
    stmt = statements[0]
    if not isinstance(stmt, ast.SelectStatement):
        return f"{type(stmt).__name__}: executed directly by the engine (no plan)"
    try:
        plan = lower_select(stmt, catalog, lenient=lenient)
    except PlanUnsupported as exc:
        return f"unplanned ({exc}): executed by the tree-walker"
    apply_rewrites(plan)
    header = "plan (incomplete: missing tables)" if plan.incomplete else "plan"
    return f"{header}:\n{explain_plan(plan)}"
