"""Expression-to-closure compilation.

Compiles AST expressions into Python closures ``f(row, aggs, ctx)``
that reproduce :class:`repro.sqlengine.expressions.Evaluator` exactly:
the same values, the same evaluation order of subexpressions, and the
same errors with the same messages.  Name-resolution failures compile
into closures that *raise when called* — the walker raises per row, so
a query over zero rows must stay silent on the compiled path too.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import BindError, TypeMismatch
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.expressions import _AMBIGUOUS, ColumnBinding, _resolution_map
from repro.sqlengine.functions import AGGREGATE_NAMES, fn_mod, lookup_scalar
from repro.sqlengine.plan.logical import PlanUnsupported
from repro.sqlengine.types import cast_value
from repro.sqlengine.values import (
    distinct_key,
    like_match,
    sql_add,
    sql_compare,
    sql_concat,
    sql_div,
    sql_mul,
    sql_neg,
    sql_sub,
    tri_and,
    tri_not,
    tri_or,
)

Closure = Callable[[Any, Any, Any], Any]


class Scope:
    """Compile-time resolution context.

    ``bindings`` are the visible columns; ``shift`` translates global
    binding indices into the local row coordinates of the operator the
    closure will run in (per-scan filters see table-local rows).
    ``agg_slots`` maps ``id(FunctionCall)`` to a position in the
    per-group aggregate value tuple; ``None`` means a non-aggregating
    row context (aggregate references raise, as the walker's do).
    """

    def __init__(
        self,
        bindings: Sequence[ColumnBinding],
        *,
        shift: int = 0,
        agg_slots: Optional[dict[int, int]] = None,
        no_row: bool = False,
    ) -> None:
        self.bindings = bindings
        self.shift = shift
        self.agg_slots = agg_slots
        self.no_row = no_row
        self._resolution = _resolution_map(bindings) if bindings or not no_row else {}

    def resolve(self, ref: ast.ColumnRef):
        """Local row index, ``_AMBIGUOUS``, or None for unknown."""
        index = self._resolution.get(ref.key)
        if index is None or index == _AMBIGUOUS:
            return index
        return index - self.shift


def _raiser(make_error: Callable[[], Exception]) -> Closure:
    def raise_it(row: Any, aggs: Any, ctx: Any) -> Any:
        raise make_error()

    return raise_it


def _tribool(value: Any) -> Optional[bool]:
    if value is None or isinstance(value, bool):
        return value
    raise TypeMismatch(f"expected a boolean condition, got {value!r}")


_CMP_TESTS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}

_ARITH_FNS = {"+": sql_add, "-": sql_sub, "*": sql_mul, "/": sql_div, "||": sql_concat}


def compile_expression(expr: ast.Expression, scope: Scope) -> Closure:
    node_type = type(expr)

    if node_type is ast.Literal:
        value = expr.value
        return lambda row, aggs, ctx: value

    if node_type is ast.ColumnRef:
        return _compile_column(expr, scope)

    if node_type is ast.Parameter:
        return _compile_parameter(expr.index)

    if node_type is ast.BinaryOp:
        return _compile_binary(expr, scope)

    if node_type is ast.UnaryOp:
        operand = compile_expression(expr.operand, scope)
        if expr.op == "NOT":

            def _not(row, aggs, ctx):
                value = _tribool(operand(row, aggs, ctx))
                if value is None and ctx is not None and ctx.flag(
                    "fold_not_unknown_true"
                ):
                    return True
                return tri_not(value)

            return _not
        if expr.op == "-":
            return lambda row, aggs, ctx: sql_neg(operand(row, aggs, ctx))
        return operand

    if node_type is ast.FunctionCall:
        return _compile_function(expr, scope)

    if node_type is ast.CastExpr:
        return _compile_cast(expr, scope)

    if node_type is ast.CaseExpr:
        return _compile_case(expr, scope)

    if node_type is ast.IsNullPredicate:
        operand = compile_expression(expr.operand, scope)
        composite = not isinstance(
            expr.operand, (ast.ColumnRef, ast.Literal, ast.Parameter)
        )
        negated = expr.negated

        def _is_null(row, aggs, ctx):
            result = operand(row, aggs, ctx) is None
            if result and composite and ctx is not None and ctx.flag(
                "isnull_composite_false"
            ):
                result = False
            return not result if negated else result

        return _is_null

    if node_type is ast.BetweenPredicate:
        return _compile_between(expr, scope)

    if node_type is ast.LikePredicate:
        return _compile_like(expr, scope)

    if node_type is ast.InPredicate:
        return _compile_in(expr, scope)

    if node_type is ast.Star:
        return _raiser(lambda: BindError("'*' is not a value expression here"))

    # Exists / ScalarSubquery / anything new: lowering rejects these
    # before compilation is attempted; reaching here is a planner bug
    # guard, not a user error.
    raise PlanUnsupported(f"cannot compile {node_type.__name__}")


# -- leaves ------------------------------------------------------------------


def _compile_column(expr: ast.ColumnRef, scope: Scope) -> Closure:
    if scope.no_row:
        qualified = expr.qualified
        return _raiser(
            lambda: BindError(f"column {qualified!r} used where no row is available")
        )
    index = scope.resolve(expr)
    if index == _AMBIGUOUS:
        name = expr.name
        return _raiser(lambda: BindError(f"ambiguous column reference {name!r}"))
    if index is None:
        qualified = expr.qualified
        return _raiser(lambda: BindError(f"unknown column {qualified!r}"))
    return lambda row, aggs, ctx: row[index]


def _compile_parameter(index: int) -> Closure:
    def fetch(row: Any, aggs: Any, ctx: Any) -> Any:
        params = ctx.params
        if index >= len(params):
            raise BindError(
                f"statement parameter {index + 1} is not bound "
                f"({len(params)} value(s) supplied)"
            )
        return params[index]

    return fetch


# -- operators ---------------------------------------------------------------


def _compile_binary(expr: ast.BinaryOp, scope: Scope) -> Closure:
    op = expr.op
    if op == "AND":
        left = compile_expression(expr.left, scope)
        right = compile_expression(expr.right, scope)
        return lambda row, aggs, ctx: tri_and(
            _tribool(left(row, aggs, ctx)), _tribool(right(row, aggs, ctx))
        )
    if op == "OR":
        left = compile_expression(expr.left, scope)
        right = compile_expression(expr.right, scope)
        return lambda row, aggs, ctx: tri_or(
            _tribool(left(row, aggs, ctx)), _tribool(right(row, aggs, ctx))
        )

    test = _CMP_TESTS.get(op)
    if test is not None:
        fused = _fuse_comparison(expr, test, scope)
        if fused is not None:
            return fused
        left = compile_expression(expr.left, scope)
        right = compile_expression(expr.right, scope)

        def compare(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
            cmp = sql_compare(left(row, aggs, ctx), right(row, aggs, ctx))
            if cmp is None:
                return None
            return test(cmp)

        return compare

    if op == "%":
        left = compile_expression(expr.left, scope)
        right = compile_expression(expr.right, scope)
        return lambda row, aggs, ctx: fn_mod(
            ctx, left(row, aggs, ctx), right(row, aggs, ctx)
        )

    arith = _ARITH_FNS.get(op)
    if arith is not None:
        left = compile_expression(expr.left, scope)
        right = compile_expression(expr.right, scope)
        return lambda row, aggs, ctx: arith(left(row, aggs, ctx), right(row, aggs, ctx))

    return _raiser(lambda: BindError(f"unknown operator {op!r}"))


def _fuse_comparison(expr: ast.BinaryOp, test, scope: Scope) -> Optional[Closure]:
    """Single-closure fast paths for the dominant predicate shapes:
    ``col <op> param``, ``col <op> literal``, and ``col <op> col``."""
    left, right = expr.left, expr.right
    if scope.no_row or type(left) is not ast.ColumnRef:
        return None
    lindex = scope.resolve(left)
    if lindex is None or lindex == _AMBIGUOUS:
        return None
    if type(right) is ast.Parameter:
        pindex = right.index

        def col_param(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
            params = ctx.params
            if pindex >= len(params):
                raise BindError(
                    f"statement parameter {pindex + 1} is not bound "
                    f"({len(params)} value(s) supplied)"
                )
            cmp = sql_compare(row[lindex], params[pindex])
            if cmp is None:
                return None
            return test(cmp)

        return col_param
    if type(right) is ast.Literal:
        value = right.value

        def col_literal(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
            cmp = sql_compare(row[lindex], value)
            if cmp is None:
                return None
            return test(cmp)

        return col_literal
    if type(right) is ast.ColumnRef:
        rindex = scope.resolve(right)
        if rindex is None or rindex == _AMBIGUOUS:
            return None

        def col_col(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
            cmp = sql_compare(row[lindex], row[rindex])
            if cmp is None:
                return None
            return test(cmp)

        return col_col
    return None


def _compile_function(expr: ast.FunctionCall, scope: Scope) -> Closure:
    if expr.name in AGGREGATE_NAMES:
        name = expr.name
        if scope.no_row:
            return _raiser(lambda: BindError(f"aggregate {name} needs a query context"))
        slots = scope.agg_slots
        slot = slots.get(id(expr)) if slots is not None else None
        if slot is None:
            return _raiser(
                lambda: BindError(
                    f"aggregate {name} used outside an aggregating query"
                )
            )
        return lambda row, aggs, ctx: aggs[slot]
    try:
        function = lookup_scalar(expr.name)
    except BindError:
        name = expr.name
        return _raiser(lambda: BindError(f"unknown function {name!r}"))
    args = [compile_expression(arg, scope) for arg in expr.args]
    if len(args) == 1:
        arg0 = args[0]
        return lambda row, aggs, ctx: function(ctx, arg0(row, aggs, ctx))
    if len(args) == 2:
        arg0, arg1 = args
        return lambda row, aggs, ctx: function(
            ctx, arg0(row, aggs, ctx), arg1(row, aggs, ctx)
        )
    return lambda row, aggs, ctx: function(
        ctx, *[arg(row, aggs, ctx) for arg in args]
    )


def _compile_cast(expr: ast.CastExpr, scope: Scope) -> Closure:
    from repro.sqlengine.typenames import resolve_type

    operand = compile_expression(expr.operand, scope)
    type_name, type_args = expr.type_name, expr.type_args
    try:
        target = resolve_type(type_name, type_args)
    except Exception:
        # Unresolvable type: evaluate the operand first, then raise the
        # resolver's error — the walker's order.
        def cast_deferred(row: Any, aggs: Any, ctx: Any) -> Any:
            value = operand(row, aggs, ctx)
            return cast_value(value, resolve_type(type_name, type_args))

        return cast_deferred
    return lambda row, aggs, ctx: cast_value(operand(row, aggs, ctx), target)


def _compile_case(expr: ast.CaseExpr, scope: Scope) -> Closure:
    branches = [
        (compile_expression(when, scope), compile_expression(then, scope))
        for when, then in expr.branches
    ]
    otherwise = (
        compile_expression(expr.else_result, scope)
        if expr.else_result is not None
        else None
    )
    if expr.operand is not None:
        operand = compile_expression(expr.operand, scope)

        def case_operand(row: Any, aggs: Any, ctx: Any) -> Any:
            subject = operand(row, aggs, ctx)
            for when, then in branches:
                candidate = when(row, aggs, ctx)
                if (
                    subject is not None
                    and candidate is not None
                    and sql_compare(subject, candidate) == 0
                ):
                    return then(row, aggs, ctx)
            if otherwise is not None:
                return otherwise(row, aggs, ctx)
            return None

        return case_operand

    def case_searched(row: Any, aggs: Any, ctx: Any) -> Any:
        for when, then in branches:
            if _tribool(when(row, aggs, ctx)) is True:
                return then(row, aggs, ctx)
        if otherwise is not None:
            return otherwise(row, aggs, ctx)
        return None

    return case_searched


def _compile_between(expr: ast.BetweenPredicate, scope: Scope) -> Closure:
    operand = compile_expression(expr.operand, scope)
    low = compile_expression(expr.low, scope)
    high = compile_expression(expr.high, scope)
    negated = expr.negated

    def between(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
        value = operand(row, aggs, ctx)
        low_value = low(row, aggs, ctx)
        high_value = high(row, aggs, ctx)
        low_cmp = (
            sql_compare(value, low_value)
            if (value is not None and low_value is not None)
            else None
        )
        high_cmp = (
            sql_compare(value, high_value)
            if (value is not None and high_value is not None)
            else None
        )
        ge_low = None if low_cmp is None else low_cmp >= 0
        le_high = None if high_cmp is None else high_cmp <= 0
        result = tri_and(ge_low, le_high)
        return tri_not(result) if negated else result

    return between


def _compile_like(expr: ast.LikePredicate, scope: Scope) -> Closure:
    operand = compile_expression(expr.operand, scope)
    pattern = compile_expression(expr.pattern, scope)
    escape = (
        compile_expression(expr.escape, scope) if expr.escape is not None else None
    )
    negated = expr.negated

    def like(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
        value = operand(row, aggs, ctx)
        pattern_value = pattern(row, aggs, ctx)
        escape_value = escape(row, aggs, ctx) if escape is not None else None
        result = like_match(value, pattern_value, escape_value)
        return tri_not(result) if negated else result

    return like


def _compile_in(expr: ast.InPredicate, scope: Scope) -> Closure:
    if expr.values is None:
        raise PlanUnsupported("IN subquery")
    operand = compile_expression(expr.operand, scope)
    items = [compile_expression(item, scope) for item in expr.values]
    negated = expr.negated

    def contains(row: Any, aggs: Any, ctx: Any) -> Optional[bool]:
        value = operand(row, aggs, ctx)
        candidates = [item(row, aggs, ctx) for item in items]
        if value is None:
            return None
        saw_null = False
        for candidate in candidates:
            if candidate is None:
                saw_null = True
                continue
            if (
                distinct_key(candidate) == distinct_key(value)
                or sql_compare(value, candidate) == 0
            ):
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False

    return contains
