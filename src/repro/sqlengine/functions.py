"""Built-in scalar functions and aggregate accumulators.

Scalar functions receive already-evaluated argument values plus the
:class:`~repro.sqlengine.engine.ExecutionContext`, through which injected
behaviour faults (e.g. the MOD precision bug of Oracle report 1059835)
can distort results.
"""

from __future__ import annotations

import math
from decimal import Decimal
from typing import Any, Callable, Optional

from repro.errors import BindError, TypeMismatch
from repro.sqlengine.types import format_numeric
from repro.sqlengine.values import distinct_key, sql_compare

ScalarFunction = Callable[..., Any]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TypeMismatch(message)


def _as_number(value: Any, func: str) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float, Decimal)):
        return value
    if isinstance(value, str):
        try:
            return Decimal(value.strip())
        except Exception:
            raise TypeMismatch(f"{func} requires a numeric argument") from None
    raise TypeMismatch(f"{func} requires a numeric argument")


def _as_text(value: Any, func: str) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, Decimal)):
        return format_numeric(value)
    raise TypeMismatch(f"{func} requires a string argument")


# --------------------------------------------------------------------------
# Scalar functions
# --------------------------------------------------------------------------


def fn_abs(ctx, value):
    if value is None:
        return None
    return abs(_as_number(value, "ABS"))


def fn_mod(ctx, dividend, divisor):
    if dividend is None or divisor is None:
        return None
    lval = _as_number(dividend, "MOD")
    rval = _as_number(divisor, "MOD")
    if rval == 0:
        from repro.errors import DivisionByZero

        raise DivisionByZero("MOD by zero")
    if isinstance(lval, float) or isinstance(rval, float):
        result: Any = math.fmod(float(lval), float(rval))
    else:
        lint, rint = Decimal(lval), Decimal(rval)
        result = lint - (lint / rint).to_integral_value(rounding="ROUND_DOWN") * rint
        if isinstance(dividend, int) and isinstance(divisor, int):
            result = int(result)
    if (
        ctx is not None
        and ctx.flag("mod_precision_bug")
        and not (isinstance(dividend, int) and isinstance(divisor, int))
    ):
        # Oracle report 1059835: MOD loses precision for non-integer
        # operands, drifting the result by one ulp-scale quantum.
        return float(result) + 1e-7
    return result


def fn_round(ctx, value, digits=0):
    if value is None:
        return None
    number = _as_number(value, "ROUND")
    places = int(_as_number(digits, "ROUND")) if digits is not None else 0
    if isinstance(number, Decimal):
        quantum = Decimal(1).scaleb(-places)
        return number.quantize(quantum)
    return round(float(number), places)


def fn_floor(ctx, value):
    if value is None:
        return None
    return int(math.floor(_as_number(value, "FLOOR")))


def fn_ceil(ctx, value):
    if value is None:
        return None
    return int(math.ceil(_as_number(value, "CEILING")))


def fn_power(ctx, base, exponent):
    if base is None or exponent is None:
        return None
    return float(_as_number(base, "POWER")) ** float(_as_number(exponent, "POWER"))


def fn_sqrt(ctx, value):
    if value is None:
        return None
    number = float(_as_number(value, "SQRT"))
    _require(number >= 0, "SQRT of a negative number")
    return math.sqrt(number)


def fn_upper(ctx, value):
    if value is None:
        return None
    return _as_text(value, "UPPER").upper()


def fn_lower(ctx, value):
    if value is None:
        return None
    return _as_text(value, "LOWER").lower()


def fn_length(ctx, value):
    if value is None:
        return None
    return len(_as_text(value, "LENGTH"))


def fn_trim(ctx, value):
    if value is None:
        return None
    return _as_text(value, "TRIM").strip()


def fn_ltrim(ctx, value):
    if value is None:
        return None
    return _as_text(value, "LTRIM").lstrip()


def fn_rtrim(ctx, value):
    if value is None:
        return None
    return _as_text(value, "RTRIM").rstrip()


def fn_substring(ctx, value, start, length=None):
    if value is None or start is None:
        return None
    text = _as_text(value, "SUBSTRING")
    begin = int(_as_number(start, "SUBSTRING"))
    # SQL substring is 1-based; positions <= 0 shift the window.
    index = max(begin - 1, 0)
    if length is None:
        return text[index:]
    count = int(_as_number(length, "SUBSTRING"))
    _require(count >= 0, "SUBSTRING length must be non-negative")
    end = max(begin - 1 + count, index)
    return text[index:end]


def fn_replace(ctx, value, search, replacement):
    if value is None or search is None or replacement is None:
        return None
    return _as_text(value, "REPLACE").replace(
        _as_text(search, "REPLACE"), _as_text(replacement, "REPLACE")
    )


def fn_coalesce(ctx, *values):
    for value in values:
        if value is not None:
            return value
    return None


def fn_nullif(ctx, left, right):
    cmp = sql_compare(left, right) if (left is not None and right is not None) else None
    if cmp == 0:
        return None
    return left


# -- product-extension functions --------------------------------------------
#
# Each simulated server product exposes a few vendor extensions (the
# dialect layer controls which server accepts which).  They are
# implemented engine-wide so that any server *granted* the extension by
# its dialect descriptor executes it correctly.


def fn_gen_id(ctx, generator_name, step):
    """Interbase's GEN_ID(generator, step).

    Real generators are stateful; the simulation returns the step value
    deterministically, which preserves the syntax and typing behaviour
    bug scripts exercise without hidden cross-run state.
    """
    if step is None:
        return None
    return int(_as_number(step, "GEN_ID"))


def fn_decode(ctx, value, *pairs):
    """Oracle's DECODE(expr, search1, result1, ..., [default]).

    Unlike CASE, DECODE treats two NULLs as equal — the reason a
    mechanical CASE rewrite is not semantics-preserving.
    """
    if len(pairs) < 2:
        raise TypeMismatch("DECODE needs at least a search and a result")
    index = 0
    while index + 1 < len(pairs):
        search, result = pairs[index], pairs[index + 1]
        if value is None and search is None:
            return result
        if value is not None and search is not None and sql_compare(value, search) == 0:
            return result
        index += 2
    if index < len(pairs):  # odd trailing argument = default
        return pairs[index]
    return None


def fn_getdate(ctx):
    """MSSQL's GETDATE(), pinned to a fixed instant for determinism
    (wall-clock time would make bug-script replay non-reproducible)."""
    import datetime

    return datetime.datetime(2003, 8, 1, 12, 0, 0)


def fn_convert(ctx, value, type_text=None):
    """CONVERT(value [, 'TYPE']) — the MSSQL/Oracle conversion shim.

    The type is given as a string literal (e.g. ``'VARCHAR'``) because
    the superset grammar keeps function arguments expression-shaped.
    """
    if type_text is None:
        return value
    from repro.sqlengine.typenames import resolve_type
    from repro.sqlengine.types import cast_value

    return cast_value(value, resolve_type(_as_text(type_text, "CONVERT")))


SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    "GEN_ID": fn_gen_id,
    "DECODE": fn_decode,
    "GETDATE": fn_getdate,
    "CONVERT": fn_convert,
    "ABS": fn_abs,
    "MOD": fn_mod,
    "ROUND": fn_round,
    "FLOOR": fn_floor,
    "CEIL": fn_ceil,
    "CEILING": fn_ceil,
    "POWER": fn_power,
    "SQRT": fn_sqrt,
    "UPPER": fn_upper,
    "LOWER": fn_lower,
    "LENGTH": fn_length,
    "CHAR_LENGTH": fn_length,
    "LEN": fn_length,
    "TRIM": fn_trim,
    "LTRIM": fn_ltrim,
    "RTRIM": fn_rtrim,
    "SUBSTRING": fn_substring,
    "SUBSTR": fn_substring,
    "REPLACE": fn_replace,
    "COALESCE": fn_coalesce,
    "NVL": fn_coalesce,
    "IFNULL": fn_coalesce,
    "NULLIF": fn_nullif,
}


def lookup_scalar(name: str) -> ScalarFunction:
    try:
        return SCALAR_FUNCTIONS[name]
    except KeyError:
        raise BindError(f"unknown function {name!r}") from None


# --------------------------------------------------------------------------
# Aggregates
# --------------------------------------------------------------------------

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Accumulator:
    """One aggregate computation over a group's rows."""

    def __init__(self, name: str, distinct: bool, star: bool) -> None:
        self.name = name
        self.distinct = distinct
        self.star = star
        self._count = 0
        self._sum: Any = None
        self._min: Any = None
        self._max: Any = None
        self._seen: Optional[set] = set() if distinct else None

    def add(self, value: Any) -> None:
        if self.star:
            self._count += 1
            return
        if value is None:
            return  # aggregates skip NULLs
        if self._seen is not None:
            key = distinct_key(value)
            if key in self._seen:
                return
            self._seen.add(key)
        self._count += 1
        if self.name in ("SUM", "AVG"):
            number = _as_number(value, self.name)
            self._sum = number if self._sum is None else self._sum + number
        elif self.name == "MIN" and (
            self._min is None or sql_compare(value, self._min) < 0
        ):
            self._min = value
        elif self.name == "MAX" and (
            self._max is None or sql_compare(value, self._max) > 0
        ):
            self._max = value

    def result(self) -> Any:
        if self.name == "COUNT":
            return self._count
        if self.name == "SUM":
            return self._sum
        if self.name == "AVG":
            if self._sum is None:
                return None
            total = self._sum
            if isinstance(total, int):
                total = Decimal(total)
            return total / self._count
        if self.name == "MIN":
            return self._min
        if self.name == "MAX":
            return self._max
        raise BindError(f"unknown aggregate {self.name!r}")  # pragma: no cover
