"""Abstract syntax tree node definitions.

Dataclasses only — no behaviour beyond trivial helpers.  The parser
builds these; the binder/planner consumes them; the dialect feature
extractor walks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    def children(self) -> Sequence["Expression"]:
        """Child expressions, for generic tree walks."""
        return ()


@dataclass
class Literal(Expression):
    value: Any  # None, bool, int, Decimal, float, or str


@dataclass
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None  # qualifier, if written as t.col
    #: Case-folded (name, qualifier) — the resolution-map key.  Derived
    #: once here so per-row lookups skip the str.lower() calls.
    key: tuple = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        self.key = (self.name.lower(), self.table.lower() if self.table else None)

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass
class Parameter(Expression):
    """A ``?`` placeholder, bound to a value at execute time.

    ``index`` is the zero-based ordinal of the placeholder in statement
    text order; prepared statements bind positionally.
    """

    index: int


@dataclass
class BinaryOp(Expression):
    op: str  # '+', '-', '*', '/', '=', '<>', '<', '<=', '>', '>=', 'AND', 'OR', '||'
    left: Expression
    right: Expression

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)


@dataclass
class UnaryOp(Expression):
    op: str  # 'NOT', '-', '+'
    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass
class FunctionCall(Expression):
    name: str  # uppercased
    args: list[Expression]
    distinct: bool = False  # COUNT(DISTINCT x)
    star: bool = False      # COUNT(*)

    def children(self) -> Sequence[Expression]:
        return tuple(self.args)


@dataclass
class CastExpr(Expression):
    operand: Expression
    type_name: str
    type_args: tuple[Optional[int], Optional[int]] = (None, None)

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass
class CaseExpr(Expression):
    operand: Optional[Expression]  # CASE x WHEN ... vs searched CASE
    branches: list[tuple[Expression, Expression]]
    else_result: Optional[Expression]

    def children(self) -> Sequence[Expression]:
        kids: list[Expression] = []
        if self.operand is not None:
            kids.append(self.operand)
        for when, then in self.branches:
            kids.extend((when, then))
        if self.else_result is not None:
            kids.append(self.else_result)
        return tuple(kids)


@dataclass
class IsNullPredicate(Expression):
    operand: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,)


@dataclass
class BetweenPredicate(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.low, self.high)


@dataclass
class LikePredicate(Expression):
    operand: Expression
    pattern: Expression
    escape: Optional[Expression] = None
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        kids = [self.operand, self.pattern]
        if self.escape is not None:
            kids.append(self.escape)
        return tuple(kids)


@dataclass
class InPredicate(Expression):
    operand: Expression
    values: Optional[list[Expression]] = None      # IN (expr, ...)
    subquery: Optional["SelectStatement"] = None   # IN (SELECT ...)
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        kids = [self.operand]
        if self.values:
            kids.extend(self.values)
        return tuple(kids)


@dataclass
class ExistsPredicate(Expression):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    subquery: "SelectStatement"


# --------------------------------------------------------------------------
# Table expressions
# --------------------------------------------------------------------------


@dataclass
class TableRef:
    """A named table or view in FROM, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef:
    """A derived table: ``(SELECT ...) alias``."""

    subquery: "SelectStatement"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass
class Join:
    """A join between two table expressions."""

    kind: str  # 'INNER', 'LEFT', 'RIGHT', 'FULL', 'CROSS'
    left: "FromItem"
    right: "FromItem"
    condition: Optional[Expression] = None

    @property
    def binding_name(self) -> str:  # pragma: no cover - joins are anonymous
        return ""


FromItem = Union[TableRef, SubqueryRef, Join]


# --------------------------------------------------------------------------
# SELECT
# --------------------------------------------------------------------------


@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class SelectCore:
    """One SELECT block (no set operators)."""

    items: list[SelectItem]
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    distinct: bool = False


@dataclass
class SetOperation:
    """UNION / UNION ALL / INTERSECT / EXCEPT between two select bodies."""

    op: str  # 'UNION', 'INTERSECT', 'EXCEPT'
    all: bool
    left: Union["SetOperation", SelectCore]
    right: Union["SetOperation", SelectCore]


@dataclass
class SelectStatement:
    """A full query: body plus optional ORDER BY / LIMIT."""

    body: Union[SelectCore, SetOperation]
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None

    def cores(self) -> list[SelectCore]:
        """All SelectCore blocks in the body, left to right."""
        result: list[SelectCore] = []

        def walk(node: Union[SelectCore, SetOperation]) -> None:
            if isinstance(node, SelectCore):
                result.append(node)
            else:
                walk(node.left)
                walk(node.right)

        walk(self.body)
        return result


# --------------------------------------------------------------------------
# DDL
# --------------------------------------------------------------------------


@dataclass
class ColumnSpec:
    name: str
    type_name: str
    type_args: tuple[Optional[int], Optional[int]] = (None, None)
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expression] = None
    check: Optional[Expression] = None
    references: Optional[tuple[str, Optional[str]]] = None  # (table, column)


@dataclass
class TableConstraint:
    kind: str  # 'PRIMARY KEY', 'UNIQUE', 'CHECK', 'FOREIGN KEY'
    columns: list[str] = field(default_factory=list)
    check: Optional[Expression] = None
    references: Optional[tuple[str, list[str]]] = None
    name: Optional[str] = None


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnSpec]
    constraints: list[TableConstraint] = field(default_factory=list)


@dataclass
class CreateView:
    name: str
    query: SelectStatement
    column_names: Optional[list[str]] = None


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: list[str]
    unique: bool = False
    clustered: bool = False


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class DropView:
    name: str
    if_exists: bool = False


@dataclass
class DropIndex:
    name: str


@dataclass
class AlterTableAddColumn:
    table: str
    column: ColumnSpec


# --------------------------------------------------------------------------
# DML
# --------------------------------------------------------------------------


@dataclass
class Insert:
    table: str
    columns: Optional[list[str]]
    rows: Optional[list[list[Expression]]] = None  # VALUES rows
    query: Optional[SelectStatement] = None        # INSERT ... SELECT


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expression]]
    where: Optional[Expression] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expression] = None


# --------------------------------------------------------------------------
# Transaction control
# --------------------------------------------------------------------------


@dataclass
class BeginTransaction:
    pass


@dataclass
class Commit:
    pass


@dataclass
class Rollback:
    savepoint: Optional[str] = None


@dataclass
class Savepoint:
    name: str


Statement = Union[
    SelectStatement,
    CreateTable,
    CreateView,
    CreateIndex,
    DropTable,
    DropView,
    DropIndex,
    AlterTableAddColumn,
    Insert,
    Update,
    Delete,
    BeginTransaction,
    Commit,
    Rollback,
    Savepoint,
]


def walk_expressions(root: Expression):
    """Depth-first iterator over an expression tree (including subquery
    boundaries are *not* crossed — subqueries are separate statements)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
