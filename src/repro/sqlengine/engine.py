"""The engine facade: one database instance accepting SQL text.

An :class:`Engine` owns a catalog, row storage, and a transaction
manager.  It consults a fault *injector* at three hook points —
before execution, behaviour flags during execution, and result
transformation after execution — which is how the four simulated server
products (:mod:`repro.servers`) get their distinct fault behaviour while
sharing one correct engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import (
    CatalogError,
    ConstraintViolation,
    EngineCrash,
    SqlError,
    TypeMismatch,
)
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.analysis import StatementTraits, extract_traits
from repro.sqlengine.catalog import Catalog, ColumnDef, IndexDef, TableSchema, ViewDef
from repro.sqlengine.executor import QueryResult, SelectExecutor
from repro.sqlengine.expressions import ColumnBinding, Environment
from repro.sqlengine.parser import parse_prepared, parse_script
from repro.sqlengine.plan.dml import compile_statement
from repro.sqlengine.plan.logical import PlanRuntimeFallback
from repro.sqlengine.storage import Storage
from repro.sqlengine.transactions import TransactionManager
from repro.sqlengine.typenames import resolve_type
from repro.sqlengine.types import cast_value
from repro.sqlengine.values import row_key


@dataclass
class Result:
    """Outcome of one successfully executed statement."""

    kind: str  # 'select' | 'dml' | 'ddl' | 'txn'
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    #: Simulated execution cost (arbitrary units).  Injected performance
    #: faults inflate this; the study classifier compares it against a
    #: threshold instead of wall-clock time so benchmarks stay fast.
    virtual_cost: float = 1.0
    #: Advisory notes attached by whoever produced the result — the
    #: middleware records masked disagreements and degraded adjudication
    #: here.  Part of the unified result surface; never affects voting.
    warnings: list[str] = field(default_factory=list)

    def scalar(self) -> Any:
        """First column of the first row (convenience for tests)."""
        if not self.rows:
            return None
        return self.rows[0][0]


class ExecutionContext:
    """Everything a fault trigger may inspect about the current statement."""

    def __init__(
        self,
        engine: "Engine",
        sql: str,
        statement: ast.Statement,
        params: tuple = (),
        traits: Optional[StatementTraits] = None,
    ) -> None:
        self.engine = engine
        self.sql = sql
        self.statement = statement
        #: Positional values bound to ``?`` placeholders for this execution.
        self.params = params
        self.traits: StatementTraits = traits if traits is not None else extract_traits(statement)
        #: Tags discovered only at run time (e.g. ``view.distinct_used``
        #: when a referenced relation turned out to be a DISTINCT view).
        self.dynamic_tags: set[str] = set()

    @property
    def all_tags(self) -> set[str]:
        return self.traits.tags | self.dynamic_tags

    def flag(self, name: str) -> bool:
        """Query a behaviour flag from the engine's fault injector."""
        return self.engine.injector.flag(name, self)

    def note_view_use(self, view: ViewDef) -> None:
        self.dynamic_tags.add("view.used")
        if view.has_distinct:
            self.dynamic_tags.add("view.distinct_used")


@dataclass
class EngineSnapshot:
    """A self-contained copy of an engine's durable state.

    Used by the middleware's checkpointed recovery: restoring a snapshot
    and replaying the write-log tail past it is equivalent to replaying
    the full history, at a cost bounded by writes-since-checkpoint.
    The snapshot owns deep copies, so it stays valid however the live
    engine mutates afterwards and can be restored repeatedly.
    """

    catalog: Catalog
    storage: Storage


class NullInjector:
    """Fault injector that injects nothing (a correct server)."""

    def flag(self, name: str, ctx: Optional[ExecutionContext] = None) -> bool:
        return False

    def before_statement(self, ctx: ExecutionContext) -> None:
        return None

    def after_statement(self, ctx: ExecutionContext, result: Result) -> Result:
        return result


StatementValidator = Callable[[ast.Statement, StatementTraits], None]

#: Upper bound on memoized prepared handles per engine; evicts oldest.
_PREPARED_CACHE_SIZE = 512

#: Upper bound on cached compiled plans per engine; evicts oldest.
_PLAN_CACHE_SIZE = 512


class Engine:
    """One in-memory SQL database instance."""

    def __init__(
        self,
        name: str = "engine",
        injector: Optional[NullInjector] = None,
        statement_validator: Optional[StatementValidator] = None,
    ) -> None:
        self.name = name
        self.injector = injector or NullInjector()
        self.statement_validator = statement_validator
        self.catalog = Catalog()
        self.storage = Storage()
        self.transactions = TransactionManager()
        self.crashed = False
        self.statements_executed = 0
        #: 'serve' normally; 'recover' while the middleware replays the
        #: write log onto this engine (recovery-scoped faults key on it).
        self.phase = "serve"
        self._prepared: dict[str, EnginePrepared] = {}
        #: table key -> (schema generation, uniqueness constraint sets).
        self._unique_sets: dict[str, tuple[int, list]] = {}
        #: Compiled statement plans, keyed by AST identity (each entry
        #: holds a strong statement reference so ids cannot be
        #: recycled), guarded by the schema generation.  ``None``
        #: records "not plannable — use the tree-walker".
        self._plans: dict[int, tuple[Any, int, Any]] = {}
        #: Planner kill switch: the dual-plan oracle and benchmarks
        #: toggle this to force interpreted (tree-walker) execution.
        self.use_planner = True

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Drop all data and schema; clear crash state (fresh install)."""
        self.transactions.abort_if_open()
        self.catalog.clear()
        self.storage.clear()
        self._unique_sets.clear()
        self._plans.clear()
        self.crashed = False

    def restart(self) -> None:
        """Recover from a crash: open transactions are lost, data kept."""
        self.transactions.abort_if_open()
        self.crashed = False

    def snapshot(self) -> EngineSnapshot:
        """Capture the full durable state (schema + rows)."""
        return EngineSnapshot(
            catalog=self.catalog.clone(),
            storage=self.storage.clone(),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Replace the engine's state with a snapshot's; clears crash
        state.  The snapshot is copied, so it can be restored again."""
        self.transactions.abort_if_open()
        self.catalog = snapshot.catalog.clone()
        self.storage = snapshot.storage.clone()
        # A restore rewinds the generation counter, so generation-keyed
        # caches cannot be trusted across it.
        self._unique_sets.clear()
        self._plans.clear()
        self.crashed = False

    # -- execution -----------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Execute all statements in ``sql``; return the last result."""
        results = self.execute_script(sql)
        return results[-1] if results else Result(kind="txn")

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a semicolon-separated script, statement by statement."""
        if self.crashed:
            raise EngineCrash(self.name, "engine is down (previous crash)")
        statements = parse_script(sql)
        return [self._execute_statement(stmt, sql) for stmt in statements]

    def prepare(self, sql: str) -> "EnginePrepared":
        """Parse ``sql`` (one statement, ``?`` placeholders allowed) once
        and return a handle that executes it with bound parameters.

        Handles are memoized per statement text: preparing the same text
        twice returns the cached handle.  Parsing is schema-independent,
        so the cache never needs DDL invalidation — name binding happens
        at execute time against the live catalog.
        """
        handle = self._prepared.get(sql)
        if handle is None:
            statement, param_count = parse_prepared(sql)
            traits = extract_traits(statement)
            handle = EnginePrepared(self, sql, statement, param_count, traits)
            if len(self._prepared) >= _PREPARED_CACHE_SIZE:
                self._prepared.pop(next(iter(self._prepared)))
            self._prepared[sql] = handle
        return handle

    def _execute_statement(
        self,
        stmt: ast.Statement,
        sql: str,
        params: tuple = (),
        traits: Optional[StatementTraits] = None,
    ) -> Result:
        ctx = ExecutionContext(self, sql, stmt, params=params, traits=traits)
        if self.statement_validator is not None:
            self.statement_validator(stmt, ctx.traits)
        try:
            self.injector.before_statement(ctx)
            result = self._dispatch(stmt, ctx)
            result = self.injector.after_statement(ctx, result)
        except EngineCrash:
            self.crashed = True
            self.transactions.abort_if_open()
            raise
        self.statements_executed += 1
        return result

    def _dispatch(self, stmt: ast.Statement, ctx: ExecutionContext) -> Result:
        if isinstance(stmt, ast.SelectStatement):
            return self._execute_select(stmt, ctx)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt, ctx)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt, ctx)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt, ctx)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create_table(stmt, ctx)
        if isinstance(stmt, ast.CreateView):
            return self._execute_create_view(stmt, ctx)
        if isinstance(stmt, ast.CreateIndex):
            return self._execute_create_index(stmt, ctx)
        if isinstance(stmt, ast.DropTable):
            return self._execute_drop_table(stmt, ctx)
        if isinstance(stmt, ast.DropView):
            return self._execute_drop_view(stmt, ctx)
        if isinstance(stmt, ast.DropIndex):
            return self._execute_drop_index(stmt, ctx)
        if isinstance(stmt, ast.AlterTableAddColumn):
            return self._execute_alter_add_column(stmt, ctx)
        if isinstance(stmt, ast.BeginTransaction):
            self.transactions.begin()
            return Result(kind="txn")
        if isinstance(stmt, ast.Commit):
            self.transactions.commit()
            return Result(kind="txn")
        if isinstance(stmt, ast.Rollback):
            if stmt.savepoint:
                self.transactions.rollback_to_savepoint(stmt.savepoint)
            else:
                self.transactions.rollback()
            return Result(kind="txn")
        if isinstance(stmt, ast.Savepoint):
            self.transactions.savepoint(stmt.name)
            return Result(kind="txn")
        raise SqlError(f"unsupported statement {type(stmt).__name__}")  # pragma: no cover

    # -- planned execution -----------------------------------------------------

    def _cached_plan(self, stmt: ast.Statement) -> Any:
        """The compiled plan for this AST, or None when unplannable.

        Keyed by object identity with a strong statement reference (so
        ids cannot be recycled) — prepared statements re-execute the
        same AST object, which is what makes the cache hit.  Statement
        *text* is not a safe key: every statement of a multi-statement
        script shares one source text.
        """
        entry = self._plans.get(id(stmt))
        generation = self.catalog.generation
        if entry is not None and entry[0] is stmt and entry[1] == generation:
            return entry[2]
        try:
            plan = compile_statement(stmt, self)
        except Exception:
            # Outside the planner's subset (PlanUnsupported), or the
            # statement will fail in a way the walker must report (an
            # unknown table, say): the interpreted path is authoritative
            # for both, so record "no plan" and step aside.
            plan = None
        if len(self._plans) >= _PLAN_CACHE_SIZE:
            self._plans.pop(next(iter(self._plans)))
        self._plans[id(stmt)] = (stmt, generation, plan)
        return plan

    def _execute_select(self, stmt: ast.SelectStatement, ctx: ExecutionContext) -> Result:
        if self.use_planner:
            plan = self._cached_plan(stmt)
            if plan is not None:
                try:
                    output = plan.execute(ctx)
                except PlanRuntimeFallback:
                    output = None
                if output is not None:
                    return Result(
                        kind="select",
                        columns=output.columns,
                        rows=output.rows,
                        rowcount=len(output.rows),
                    )
        executor = SelectExecutor(self, ctx)
        output = executor.execute_select(stmt)
        return Result(
            kind="select",
            columns=output.columns,
            rows=output.rows,
            rowcount=len(output.rows),
        )

    # -- DML -------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.Insert, ctx: ExecutionContext) -> Result:
        if self.use_planner:
            planned = self._cached_plan(stmt)
            if planned is not None:
                try:
                    return planned.execute(ctx)
                except PlanRuntimeFallback:
                    pass
        schema = self.catalog.table(stmt.table)
        data = self.storage.get(stmt.table)
        executor = SelectExecutor(self, ctx)

        if stmt.columns is not None:
            target_indices = [schema.column_index(name) for name in stmt.columns]
            if len(set(target_indices)) != len(target_indices):
                raise SqlError(f"duplicate column in INSERT into {stmt.table!r}")
        else:
            target_indices = list(range(len(schema.columns)))

        if stmt.rows is not None:
            source_rows = [
                tuple(executor.evaluator.evaluate(expr, None) for expr in row)
                for row in stmt.rows
            ]
        else:
            source_rows = executor.execute_select(stmt.query).rows

        return self._insert_rows(schema, data, target_indices, source_rows, ctx)

    def _insert_rows(
        self,
        schema: TableSchema,
        data,
        target_indices: list[int],
        source_rows: list[tuple],
        ctx: ExecutionContext,
    ) -> Result:
        """Validate and store evaluated INSERT rows (shared by the
        interpreted and planned paths): all checks run against the
        pending batch before any row lands in the heap."""
        inserted: list[list[Any]] = []
        pending: list[list[Any]] = []
        for source in source_rows:
            if len(source) != len(target_indices):
                raise SqlError(
                    f"INSERT has {len(source)} values for {len(target_indices)} columns"
                )
            row = self._complete_row(schema, target_indices, source, ctx)
            self._check_row_constraints(schema, row, ctx)
            self._check_uniqueness(schema, data, row, pending=pending)
            pending.append(row)
        for row in pending:
            stored = data.insert(row)
            inserted.append(stored)
            self.transactions.record(lambda r=stored, d=data: d.remove_row(r))
        return Result(kind="dml", rowcount=len(inserted))

    def _complete_row(
        self,
        schema: TableSchema,
        target_indices: list[int],
        source: tuple,
        ctx: ExecutionContext,
    ) -> list[Any]:
        missing = object()
        row: list[Any] = [missing] * len(schema.columns)
        for index, value in zip(target_indices, source):
            column = schema.columns[index]
            row[index] = cast_value(value, column.sql_type, implicit=True)
        for index, column in enumerate(schema.columns):
            if row[index] is missing:
                row[index] = self._default_value(column, ctx)
        return row

    def _default_value(self, column: ColumnDef, ctx: ExecutionContext) -> Any:
        if column.default is None:
            return None
        executor = SelectExecutor(self, ctx)
        value = executor.evaluator.evaluate(column.default, None)
        # This cast is where a wrongly-typed DEFAULT that slipped through
        # creation (bug 217042 behaviour) finally fails — the "detected
        # with high latency" runtime error the paper describes.
        return cast_value(value, column.sql_type, implicit=True)

    def _check_row_constraints(
        self, schema: TableSchema, row: list[Any], ctx: ExecutionContext
    ) -> None:
        for index, column in enumerate(schema.columns):
            if column.not_null and row[index] is None:
                raise ConstraintViolation(
                    f"column {column.name!r} of {schema.name!r} may not be NULL"
                )
        columns = [ColumnBinding(schema.name, column.name) for column in schema.columns]
        env = Environment(columns, tuple(row))
        executor = SelectExecutor(self, ctx)
        for column in schema.columns:
            if (
                column.check is not None
                and executor.evaluator.evaluate(column.check, env) is False
            ):
                raise ConstraintViolation(
                    f"CHECK constraint on column {column.name!r} violated"
                )
        for check in schema.checks:
            if executor.evaluator.evaluate(check, env) is False:
                raise ConstraintViolation(
                    f"CHECK constraint on table {schema.name!r} violated"
                )

    def _unique_column_sets(self, schema: TableSchema) -> list[tuple[list[int], bool]]:
        """(column indices, is_primary) for each uniqueness constraint.

        Cached per table and schema generation: every inserted or
        updated row consults this, and the constraint structure only
        changes on DDL.  The cache is cleared on reset/restore because
        a restore can rewind the generation counter.
        """
        table_key = schema.name.lower()
        cached = self._unique_sets.get(table_key)
        if cached is not None and cached[0] == self.catalog.generation:
            return cached[1]
        sets: list[tuple[list[int], bool]] = []
        if schema.primary_key:
            sets.append(([schema.column_index(c) for c in schema.primary_key], True))
        for unique in schema.unique_sets:
            sets.append(([schema.column_index(c) for c in unique], False))
        for index_def in self.catalog.indexes_on(schema.name):
            if index_def.unique:
                sets.append(
                    ([schema.column_index(c) for c in index_def.columns], False)
                )
        self._unique_sets[table_key] = (self.catalog.generation, sets)
        return sets

    def _check_uniqueness(
        self,
        schema: TableSchema,
        data,
        row: list[Any],
        *,
        pending: list[list[Any]] = (),
        skip: Optional[list[Any]] = None,
    ) -> None:
        for indices, is_primary in self._unique_column_sets(schema):
            values = [row[i] for i in indices]
            if any(value is None for value in values):
                if is_primary:
                    raise ConstraintViolation(
                        f"primary key of {schema.name!r} may not be NULL"
                    )
                continue  # SQL UNIQUE ignores NULLs
            key = row_key(tuple(values))
            index = data.unique_index(tuple(indices))
            if index is not None:
                # Maintained-index probe: O(1) against the heap, then
                # just the (small) pending batch linearly.
                hit = index.map.get(key)
                if hit is not None and hit is not row and hit is not skip:
                    label = "primary key" if is_primary else "unique"
                    raise ConstraintViolation(
                        f"{label} constraint violated on {schema.name!r}"
                    )
                candidates: Any = pending
            else:
                # The heap itself cannot be uniquely indexed (duplicate
                # or unkeyable stored values): scan, as before.
                candidates = itertools.chain(data.rows(), pending)
            for existing in candidates:
                if existing is row or existing is skip:
                    continue
                if row_key(tuple(existing[i] for i in indices)) == key:
                    label = "primary key" if is_primary else "unique"
                    raise ConstraintViolation(
                        f"{label} constraint violated on {schema.name!r}"
                    )

    def _execute_update(self, stmt: ast.Update, ctx: ExecutionContext) -> Result:
        if self.use_planner:
            planned = self._cached_plan(stmt)
            if planned is not None:
                try:
                    return planned.execute(ctx)
                except PlanRuntimeFallback:
                    pass
        schema = self.catalog.table(stmt.table)
        data = self.storage.get(stmt.table)
        executor = SelectExecutor(self, ctx)
        columns = [ColumnBinding(schema.name, column.name) for column in schema.columns]
        assignment_indices = [
            (schema.column_index(name), expr) for name, expr in stmt.assignments
        ]
        updated = 0
        # One environment reused across the scan; every expression read
        # finishes before the row is patched, so the live row is safe.
        env = Environment(columns, ())
        for row in data.rows():
            env.row = row
            if stmt.where is not None and not executor.evaluator.truthy(stmt.where, env):
                continue
            new_values: dict[int, Any] = {}
            for index, expr in assignment_indices:
                column = schema.columns[index]
                value = executor.evaluator.evaluate(expr, env)
                new_values[index] = cast_value(value, column.sql_type, implicit=True)
            self.apply_row_update(schema, data, row, new_values, ctx)
            updated += 1
        return Result(kind="dml", rowcount=updated)

    def apply_row_update(
        self,
        schema: TableSchema,
        data,
        row: list[Any],
        new_values: dict[int, Any],
        ctx: ExecutionContext,
    ) -> None:
        """Validate and apply one row's UPDATE, recording undo.  Shared
        by the interpreted scan and the planned UPDATE path; goes
        through :meth:`TableData.update_row` so maintained unique
        indexes stay consistent without a rebuild."""
        old_values = {index: row[index] for index in new_values}
        candidate = list(row)
        for index, value in new_values.items():
            candidate[index] = value
        self._check_row_constraints(schema, candidate, ctx)
        self._check_uniqueness(schema, data, candidate, skip=row)
        data.update_row(row, new_values)
        self.transactions.record(
            lambda r=row, old=old_values, d=data: d.update_row(r, old)
        )

    def _execute_delete(self, stmt: ast.Delete, ctx: ExecutionContext) -> Result:
        if self.use_planner:
            planned = self._cached_plan(stmt)
            if planned is not None:
                try:
                    return planned.execute(ctx)
                except PlanRuntimeFallback:
                    pass
        schema = self.catalog.table(stmt.table)
        data = self.storage.get(stmt.table)
        executor = SelectExecutor(self, ctx)
        columns = [ColumnBinding(schema.name, column.name) for column in schema.columns]

        env = Environment(columns, ())

        def matches(row: list[Any]) -> bool:
            if stmt.where is None:
                return True
            env.row = row
            return executor.evaluator.truthy(stmt.where, env)

        removed = data.delete_rows(matches)
        self.transactions.record(lambda r=removed, d=data: d.restore_rows(r))
        return Result(kind="dml", rowcount=len(removed))

    # -- DDL -------------------------------------------------------------------

    def _execute_create_table(self, stmt: ast.CreateTable, ctx: ExecutionContext) -> Result:
        executor = SelectExecutor(self, ctx)
        columns: list[ColumnDef] = []
        primary_key: list[str] = []
        unique_sets: list[list[str]] = []
        checks: list[ast.Expression] = []
        for spec in stmt.columns:
            sql_type = resolve_type(spec.type_name, spec.type_args)
            if spec.default is not None and not ctx.flag("skip_default_type_validation"):
                # SQL-92 requires the DEFAULT to be assignable to the
                # column type at definition time.  Interbase report
                # 217042(3) shows two products skipping this check.
                value = executor.evaluator.evaluate(spec.default, None)
                try:
                    cast_value(value, sql_type, implicit=True)
                except TypeMismatch:
                    raise TypeMismatch(
                        f"DEFAULT value for column {spec.name!r} is not assignable "
                        f"to type {sql_type.render()}"
                    ) from None
            columns.append(
                ColumnDef(
                    name=spec.name,
                    sql_type=sql_type,
                    not_null=spec.not_null,
                    default=spec.default,
                    check=spec.check,
                )
            )
            if spec.primary_key:
                primary_key.append(spec.name.lower())
            if spec.unique:
                unique_sets.append([spec.name.lower()])
        for constraint in stmt.constraints:
            if constraint.kind == "PRIMARY KEY":
                if primary_key:
                    raise SqlError(f"table {stmt.name!r} has two primary keys")
                primary_key = [name.lower() for name in constraint.columns]
            elif constraint.kind == "UNIQUE":
                unique_sets.append([name.lower() for name in constraint.columns])
            elif constraint.kind == "CHECK" and constraint.check is not None:
                checks.append(constraint.check)
        schema = TableSchema(
            name=stmt.name,
            columns=columns,
            primary_key=primary_key,
            unique_sets=unique_sets,
            checks=checks,
        )
        for key in primary_key:
            schema.column_index(key)  # raises if the PK names a missing column
        self.catalog.add_table(schema)
        self.storage.create(stmt.name, len(columns))
        self.transactions.record(lambda: self._undo_create_table(stmt.name))
        return Result(kind="ddl")

    def _undo_create_table(self, name: str) -> None:
        try:
            self.catalog.drop_table(name)
        except CatalogError:  # pragma: no cover - undo best effort
            pass
        self.storage.drop(name)

    def _execute_create_view(self, stmt: ast.CreateView, ctx: ExecutionContext) -> Result:
        view = ViewDef(name=stmt.name, query=stmt.query, column_names=stmt.column_names)
        # Validate the defining query by running it once, like products
        # that bind views eagerly; surfaces missing tables/columns now.
        executor = SelectExecutor(self, ctx)
        output = executor.execute_select(stmt.query)
        if stmt.column_names is not None and len(stmt.column_names) != len(output.columns):
            raise CatalogError(
                f"view {stmt.name!r} column list does not match its query"
            )
        self.catalog.add_view(view)
        self.transactions.record(lambda: self.catalog.drop_view(stmt.name))
        return Result(kind="ddl")

    def _execute_create_index(self, stmt: ast.CreateIndex, ctx: ExecutionContext) -> Result:
        index = IndexDef(
            name=stmt.name,
            table=stmt.table,
            columns=stmt.columns,
            unique=stmt.unique,
            clustered=stmt.clustered,
        )
        schema = self.catalog.table(stmt.table)
        data = self.storage.get(stmt.table)
        if stmt.unique:
            indices = [schema.column_index(name) for name in stmt.columns]
            seen: set = set()
            for row in data.rows():
                values = tuple(row[i] for i in indices)
                if any(value is None for value in values):
                    continue
                key = row_key(values)
                if key in seen:
                    raise ConstraintViolation(
                        f"existing rows violate unique index {stmt.name!r}"
                    )
                seen.add(key)
        self.catalog.add_index(index)
        self.transactions.record(lambda: self.catalog.drop_index(stmt.name))
        return Result(kind="ddl")

    def _execute_drop_table(self, stmt: ast.DropTable, ctx: ExecutionContext) -> Result:
        allow_view = ctx.flag("allow_drop_table_on_view")
        if allow_view and self.catalog.has_view(stmt.name):
            view = self.catalog.view(stmt.name)
            self.catalog.drop_table(stmt.name, allow_view=True)
            self.transactions.record(lambda v=view: self.catalog.add_view(v))
            return Result(kind="ddl")
        schema = self.catalog.table(stmt.name)  # raises the standard error
        indexes = self.catalog.indexes_on(stmt.name)
        self.catalog.drop_table(stmt.name)
        data = self.storage.drop(stmt.name)

        def undo() -> None:
            self.catalog.add_table(schema)
            for index in indexes:
                self.catalog.add_index(index)
            if data is not None:
                self.storage._tables[schema.name.lower()] = data

        self.transactions.record(undo)
        return Result(kind="ddl")

    def _execute_drop_view(self, stmt: ast.DropView, ctx: ExecutionContext) -> Result:
        view = self.catalog.view(stmt.name)
        self.catalog.drop_view(stmt.name)
        self.transactions.record(lambda v=view: self.catalog.add_view(v))
        return Result(kind="ddl")

    def _execute_drop_index(self, stmt: ast.DropIndex, ctx: ExecutionContext) -> Result:
        index = self.catalog.index(stmt.name)
        self.catalog.drop_index(stmt.name)
        self.transactions.record(lambda ix=index: self.catalog.add_index(ix))
        return Result(kind="ddl")

    def _execute_alter_add_column(
        self, stmt: ast.AlterTableAddColumn, ctx: ExecutionContext
    ) -> Result:
        schema = self.catalog.table(stmt.table)
        data = self.storage.get(stmt.table)
        if schema.has_column(stmt.column.name):
            raise CatalogError(
                f"column {stmt.column.name!r} already exists in {stmt.table!r}"
            )
        sql_type = resolve_type(stmt.column.type_name, stmt.column.type_args)
        column = ColumnDef(
            name=stmt.column.name,
            sql_type=sql_type,
            not_null=stmt.column.not_null,
            default=stmt.column.default,
            check=stmt.column.check,
        )
        fill: Any = None
        if column.default is not None:
            fill = self._default_value(column, ctx)
        if column.not_null and fill is None and len(data) > 0:
            raise ConstraintViolation(
                f"cannot add NOT NULL column {column.name!r} without a default"
            )
        schema.columns.append(column)
        data.add_column(fill)
        self.catalog.bump()

        def undo() -> None:
            schema.columns.pop()
            data.column_count -= 1
            for row in data.rows():
                row.pop()
            self.catalog.bump()

        self.transactions.record(undo)
        return Result(kind="ddl")


class EnginePrepared:
    """A statement parsed once, executable many times with bound params.

    Obtained from :meth:`Engine.prepare`.  The parsed AST and extracted
    traits are reused across executions; parameters are bound at
    evaluation time through :attr:`ExecutionContext.params`, so the
    cached tree is never mutated.
    """

    def __init__(
        self,
        engine: Engine,
        sql: str,
        statement: ast.Statement,
        param_count: int,
        traits: StatementTraits,
    ) -> None:
        self._engine = engine
        self.sql = sql
        self.statement = statement
        self.param_count = param_count
        self.traits = traits

    def execute(self, params: tuple = ()) -> Result:
        """Execute with positional values for the ``?`` placeholders."""
        if self._engine.crashed:
            raise EngineCrash(self._engine.name, "engine is down (previous crash)")
        bound = tuple(params)
        if len(bound) != self.param_count:
            raise SqlError(
                f"statement takes {self.param_count} parameter(s), "
                f"{len(bound)} given"
            )
        return self._engine._execute_statement(
            self.statement, self.sql, params=bound, traits=self.traits
        )

    def executemany(self, rows) -> list[Result]:
        """Execute once per parameter tuple, in order."""
        return [self.execute(row) for row in rows]


class Connection:
    """DB-API-flavoured session over an :class:`Engine`.

    The middleware and the examples talk to servers through this class,
    mirroring how the paper's middleware would sit on the products'
    standard client interfaces (the "black-box" approach).
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._last: Optional[Result] = None
        self.closed = False

    @property
    def engine(self) -> Engine:
        return self._engine

    def execute(self, sql: str) -> Result:
        if self.closed:
            raise SqlError("connection is closed")
        self._last = self._engine.execute(sql)
        return self._last

    def fetchall(self) -> list[tuple]:
        if self._last is None:
            return []
        return list(self._last.rows)

    def fetchone(self) -> Optional[tuple]:
        if self._last is None or not self._last.rows:
            return None
        return self._last.rows[0]

    @property
    def description(self) -> list[tuple]:
        if self._last is None:
            return []
        return [(name,) for name in self._last.columns]

    def commit(self) -> None:
        if self._engine.transactions.in_transaction:
            self._engine.transactions.commit()

    def rollback(self) -> None:
        if self._engine.transactions.in_transaction:
            self._engine.transactions.rollback()

    def close(self) -> None:
        self.closed = True
