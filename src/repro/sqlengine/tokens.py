"""Token definitions for the SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    QUOTED_IDENTIFIER = auto()
    STRING = auto()
    NUMBER = auto()
    OPERATOR = auto()
    PUNCT = auto()
    EOF = auto()


#: Reserved words recognised by the engine.  Dialect descriptors may add
#: product-specific keywords (e.g. ``CLUSTERED`` for the MSSQL-like
#: product), so this is the common core; the lexer also accepts a set of
#: extra keywords passed at construction.
KEYWORDS = frozenset(
    {
        "ADD", "ALL", "ALTER", "AND", "AS", "ASC", "AVG", "BEGIN", "BETWEEN",
        "BY", "CASCADE", "CASE", "CAST", "CHECK", "COLUMN", "COMMIT",
        "CONSTRAINT", "COUNT", "CREATE", "CROSS", "DEFAULT", "DELETE",
        "DESC", "DISTINCT", "DROP", "ELSE", "END", "ESCAPE", "EXCEPT",
        "EXISTS", "FALSE", "FROM", "FULL", "GROUP", "HAVING", "IN", "INDEX",
        "INNER", "INSERT", "INTERSECT", "INTO", "IS", "JOIN", "KEY", "LEFT",
        "LIKE", "LIMIT", "MAX", "MIN", "NOT", "NULL", "ON", "OR", "ORDER",
        "OUTER", "PRIMARY", "REFERENCES", "RESTRICT", "RIGHT", "ROLLBACK",
        "SAVEPOINT", "SELECT", "SET", "SUM", "TABLE", "THEN", "TO",
        "TRANSACTION", "TRUE", "UNION", "UNIQUE", "UPDATE", "VALUES",
        "VIEW", "WHEN", "WHERE", "WORK",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")

SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>=")

PUNCTUATION = frozenset("(),.;?")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` holds the uppercased text for keywords, the literal text
    for identifiers and operators, and the *decoded* value for string
    literals (quote-escapes resolved).
    """

    kind: TokenKind
    value: str
    position: int
    line: int

    def is_keyword(self, *words: str) -> bool:
        """Return True if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r} @{self.line})"
